//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and `Bencher::iter` —
//! as a plain wall-clock harness: warm up, time a fixed-duration batch,
//! report ns/iter (plus elements/s when a throughput is set).
//!
//! `cargo bench -- --test` (the CI smoke mode) runs every closure once
//! and skips measurement, exactly like real criterion's test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work per iteration is scaled when reporting.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a data point by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Identify by function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Drives one benchmark closure.
pub struct Bencher<'a> {
    test_mode: bool,
    measured: &'a mut Option<Duration>,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            *self.iters = 1;
            *self.measured = Some(Duration::ZERO);
            return;
        }
        // Warm-up: let caches/allocator settle and estimate per-iter cost.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Measure a batch sized for roughly 200 ms of work.
        let target = Duration::from_millis(200).as_nanos();
        let batch = (target / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        *self.measured = Some(start.elapsed());
        *self.iters = batch;
    }
}

/// A named collection of related measurements.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by
    /// wall-clock, not sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the throughput used for the group's subsequent reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
    }

    /// Benchmark a closure with no input under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b));
    }

    /// End the group (report separator).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to every bench function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of measurements.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        f: F,
    ) {
        let mut measured = None;
        let mut iters = 0u64;
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measured: &mut measured,
            iters: &mut iters,
        };
        f(&mut bencher);
        let Some(elapsed) = measured else {
            eprintln!("{label}: no measurement (Bencher::iter never called)");
            return;
        };
        if self.test_mode {
            println!("{label}: ok (test mode)");
            return;
        }
        let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / ns_per_iter;
                println!("{label}: {ns_per_iter:.1} ns/iter ({rate:.3e} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / ns_per_iter;
                println!("{label}: {ns_per_iter:.1} ns/iter ({rate:.3e} B/s)");
            }
            None => println!("{label}: {ns_per_iter:.1} ns/iter"),
        }
    }
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2 + 2)
            })
        });
        assert_eq!(calls, 1, "test mode runs the routine exactly once");
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}
