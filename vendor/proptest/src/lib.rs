//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `name in strategy` bindings over integer/float ranges,
//!   [`any::<bool>()`](strategy::any), tuples of strategies, and
//!   `prop::collection::vec(strategy, size_range)`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design: cases are generated from a
//! seed derived deterministically from the test's module path and name
//! (reproducible across runs and machines), and failing inputs are
//! reported but **not shrunk**. Each failure message prints every bound
//! input, which for the generators in this workspace (seeds, sizes,
//! recipes) is already minimal enough to replay.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one `name in strategy` binding.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    /// Marker returned by [`any`]; the `Arbitrary` surface of this shim.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_uint!(u8, u16, u32, u64, usize);

    /// A strategy producing a constant.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Element-count specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> VecStrategy<S> {
        pub(crate) fn new(element: S, size: SizeRange) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A strategy for vectors of `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size.into())
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 48 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
        /// A `prop_assume!` rejected the inputs — draw fresh ones.
        Reject(String),
    }

    /// Deterministic SplitMix64 stream for strategy generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream determined entirely by `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a of the test path: the per-test base seed.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. See the [crate docs](crate) for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($param:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::test_runner::hash_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let case_seed = base
                    .wrapping_add(u64::from(passed))
                    .wrapping_add(u64::from(rejected).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = $crate::test_runner::TestRng::new(case_seed);
                $(let $param =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(32) + 1024,
                            "proptest `{}`: too many rejected cases ({} passed)",
                            stringify!($name),
                            passed,
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest `{}` case failed: {}\n  inputs: {}",
                            stringify!($name),
                            message,
                            format!(
                                concat!($(stringify!($param), " = {:?}; "),+),
                                $($param),+
                            ),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 2usize..=5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((2..=5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vectors(recipe in prop::collection::vec((0u8..5, any::<bool>()), 1..6)) {
            prop_assert!(!recipe.is_empty() && recipe.len() < 6);
            for &(k, _) in &recipe {
                prop_assert!(k < 5);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{hash_name, TestRng};
        let base = hash_name("some::test");
        let mut a = TestRng::new(base);
        let mut b = TestRng::new(base);
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
