//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngCore`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — *not* the same
//! stream as the real `rand::rngs::StdRng` (ChaCha12). Every consumer in
//! this workspace only requires determinism under a fixed seed, which
//! this shim provides; cross-crate stream compatibility is explicitly a
//! non-goal.

/// Low-level generator interface: raw words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type drawn from the range.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// High-level drawing interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Biased coin: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = StdRng::splitmix(&mut sm);
            }
            // All-zero state would lock xoshiro at zero forever.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`) from `rand::seq`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.next_u64() as usize % self.len();
                self.get(i)
            }
        }
    }

    // `Rng` must stay imported for the blanket impl to be in scope for
    // callers that `use rand::seq::SliceRandom` alone.
    #[allow(unused_imports)]
    use Rng as _;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn floats_are_unit_interval_and_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let heads = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
