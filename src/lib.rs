//! # krishnamurthy-tpi
//!
//! A workspace-level facade for the reproduction of
//! *B. Krishnamurthy, "A Dynamic Programming Approach to the Test Point
//! Insertion Problem", DAC 1987*.
//!
//! This crate re-exports the workspace members so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`netlist`] — circuits, `.bench` I/O, structural analysis, test-point
//!   transforms ([`tpi_netlist`]);
//! * [`sim`] — bit-parallel logic & fault simulation, LFSR/MISR
//!   ([`tpi_sim`]);
//! * [`testability`] — COP/SCOAP measures, detection probabilities
//!   ([`tpi_testability`]);
//! * [`core`] — the dynamic-programming test point inserter and its
//!   baselines ([`tpi_core`]);
//! * [`engine`] — the long-lived incremental session engine with analysis
//!   caching, dirty-cone re-simulation and batch/serve front ends
//!   ([`tpi_engine`]);
//! * [`server`] — the concurrent multi-session front end: unix/TCP
//!   line-JSON listener, admission control, graceful drain and the
//!   shared cross-session DP memo ([`tpi_server`]);
//! * [`obs`] — the zero-dependency observability layer (counters,
//!   histograms, scoped timers, snapshots) every other layer reports
//!   into ([`tpi_obs`]);
//! * [`gen`] — circuit generators and embedded benchmarks ([`tpi_gen`]).
//!
//! # Quickstart
//!
//! ```
//! use krishnamurthy_tpi::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A random-pattern-resistant circuit: a wide AND cone.
//! let circuit = krishnamurthy_tpi::gen::rpr::and_tree(8, 2)?;
//!
//! // Ask the DP for a minimum-cost plan reaching detection probability
//! // 2^-10 for every stuck-at fault.
//! let problem = TpiProblem::min_cost(&circuit, Threshold::from_log2(-10.0))?;
//! let plan = DpOptimizer::new(DpConfig::default()).solve(&problem)?;
//!
//! // Apply and verify by fault simulation.
//! let (modified, _) = apply_plan(&circuit, plan.test_points())?;
//! # let _ = modified;
//! # Ok(())
//! # }
//! ```

pub use tpi_atpg as atpg;
pub use tpi_core as core;
pub use tpi_engine as engine;
pub use tpi_gen as gen;
pub use tpi_netlist as netlist;
pub use tpi_obs as obs;
pub use tpi_server as server;
pub use tpi_sim as sim;
pub use tpi_testability as testability;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use tpi_atpg::{Podem, PodemConfig, PodemResult, TestCube};
    pub use tpi_core::{
        evaluate::PlanEvaluator, DpConfig, DpOptimizer, ExactOptimizer, GreedyConfig,
        GreedyOptimizer, Plan, RandomOptimizer, Threshold, TpiProblem,
    };
    pub use tpi_engine::{EngineConfig, OptimizeConfig, TpiEngine};
    pub use tpi_netlist::transform::apply_plan;
    pub use tpi_netlist::{
        Circuit, CircuitBuilder, GateKind, NodeId, TestPoint, TestPointKind, Topology,
    };
    pub use tpi_sim::{
        FaultSimulator, FaultUniverse, LfsrPatterns, PatternSource, RandomPatterns,
        WeightedPatterns,
    };
    pub use tpi_testability::{CopAnalysis, ScoapAnalysis, StafanAnalysis};
}
