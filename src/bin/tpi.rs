//! `tpi` — command-line front end for the krishnamurthy-tpi toolkit.
//!
//! ```text
//! tpi analyze  <file.bench>                      structural + testability report
//! tpi simulate <file.bench> [--patterns N] [--seed S] [--lfsr] [--threads N]
//!              [--block-words auto|W] [--detection cpt|explicit]
//!              [--simd-backend auto|scalar|avx2|avx512] [--metrics-out FILE]
//! tpi insert   <file.bench> [--log2-threshold E | --test-length L --confidence C]
//!              [--method dp|greedy|constructive|constructive-baseline]
//!              [--candidate-eval batched|legacy] [--score-threads N]
//!              [--threads N] [--block-words auto|W] [--detection cpt|explicit]
//!              [--simd-backend auto|scalar|avx2|avx512] [--deadline-ms MS]
//!              [--out FILE] [--verilog FILE] [--metrics-out FILE]
//! tpi atpg     <file.bench> [--patterns N]       redundancy sweep + top-off cubes
//! tpi export   <file.bench> (--verilog FILE | --dot FILE)
//! tpi batch    <manifest.json> [--out FILE] [--retries N] [--resume] [--metrics-out FILE]
//! tpi serve    [--stdio | --listen ADDR] [--max-gates N] [--max-patterns N]
//!              [--max-sessions N] [--accept-queue N] [--max-inflight N]
//!              [--shared-memo-capacity N] [--isolated-memo] [--metrics-out FILE]
//! tpi stats    <metrics.json>                    pretty-print a metrics snapshot
//! ```
//!
//! Netlists are ISCAS-85 `.bench` files; `DFF`s are treated as full-scan
//! pseudo-ports. `insert --method constructive` runs on the incremental
//! [`TpiEngine`] session; `constructive-baseline` is the from-scratch
//! loop it is benchmarked against.

use std::process::ExitCode;

use krishnamurthy_tpi::atpg::{redundancy, topoff, PodemConfig};
use krishnamurthy_tpi::core::general::{ConstructiveConfig, ConstructiveOptimizer};
use krishnamurthy_tpi::core::report::InsertionReport;
use krishnamurthy_tpi::core::{
    CandidateEval, DpOptimizer, GreedyConfig, GreedyOptimizer, Threshold, TpiProblem,
};
use krishnamurthy_tpi::engine::{
    batch, json::Json, serve, EngineConfig, OptimizeConfig, RunControl, SharedMemoConfig, TpiEngine,
};
use krishnamurthy_tpi::netlist::transform::apply_plan;
use krishnamurthy_tpi::netlist::{analysis, bench_format, dot, ffr, verilog, Circuit, Topology};
use krishnamurthy_tpi::obs::{HistogramSnapshot, MetricValue, Registry, Snapshot};
use krishnamurthy_tpi::server::{self, ListenAddr, Server, ServerConfig};
use krishnamurthy_tpi::sim::parallel::run_parallel_controlled;
use krishnamurthy_tpi::sim::{
    block_words_supported, BackendChoice, DetectionMode, FaultUniverse, LfsrPatterns,
    RandomPatterns, SimOptions, SimdBackend,
};
use krishnamurthy_tpi::testability::profile::TestabilityReport;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tpi: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "analyze" => analyze(rest),
        "simulate" => simulate(rest),
        "insert" => insert(rest),
        "atpg" => atpg(rest),
        "export" => export(rest),
        "batch" => batch_cmd(rest),
        "stats" => stats_cmd(rest),
        "serve" => serve_cmd(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `tpi help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "tpi — dynamic-programming test point insertion toolkit\n\n\
         usage:\n  \
         tpi analyze  <file.bench>\n  \
         tpi simulate <file.bench> [--patterns N] [--seed S] [--lfsr] [--threads N]\n           \
         [--block-words auto|W] [--detection cpt|explicit]\n           \
         [--simd-backend auto|scalar|avx2|avx512] [--metrics-out FILE]\n  \
         tpi insert   <file.bench> [--log2-threshold E | --test-length L --confidence C]\n           \
         [--method dp|greedy|constructive|constructive-baseline] [--threads N]\n           \
         [--candidate-eval batched|legacy] [--score-threads N]\n           \
         [--block-words auto|W] [--detection cpt|explicit]\n           \
         [--simd-backend auto|scalar|avx2|avx512] [--deadline-ms MS]\n           \
         [--out FILE] [--verilog FILE] [--metrics-out FILE]\n  \
         tpi atpg     <file.bench> [--patterns N]\n  \
         tpi export   <file.bench> (--verilog FILE | --dot FILE)\n  \
         tpi batch    <manifest.json> [--out FILE] [--retries N] [--resume]\n           \
         [--metrics-out FILE]\n  \
         tpi serve    [--stdio | --listen unix:PATH|HOST:PORT] [--max-gates N]\n           \
         [--max-patterns N] [--max-sessions N] [--accept-queue N] [--max-inflight N]\n           \
         [--shared-memo-capacity N] [--isolated-memo] [--metrics-out FILE]\n  \
         tpi stats    <metrics.json>"
    );
}

/// Tiny flag parser: optional positional file + `--key value` / boolean
/// `--key`.
struct Flags<'a> {
    file: Option<&'a str>,
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String], booleans: &[&str]) -> Result<Flags<'a>, String> {
        let mut file = None;
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(key) = a.strip_prefix("--") {
                if booleans.contains(&key) {
                    pairs.push((key, None));
                    i += 1;
                } else {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{key} needs a value"))?;
                    pairs.push((key, Some(value.as_str())));
                    i += 2;
                }
            } else if file.is_none() {
                file = Some(a);
                i += 1;
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(Flags { file, pairs })
    }

    fn file(&self) -> Result<&'a str, String> {
        self.file.ok_or_else(|| "missing input file".to_string())
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| *k == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value `{v}`")),
        }
    }

    fn opt_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key} value `{v}`")))
            .transpose()
    }
}

fn load(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    bench_format::parse_bench_with(&text, name, bench_format::ScanMode::FullScan)
        .map_err(|e| format!("{path}: {e}"))
}

fn analyze(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let circuit = load(flags.file()?)?;
    let topo = Topology::of(&circuit).map_err(|e| e.to_string())?;
    let stats = analysis::stats(&circuit, &topo);
    println!("{circuit}");
    println!(
        "depth {} | stems {} | max fanout {} | avg fanin {:.2}",
        stats.depth, stats.stems, stats.max_fanout, stats.avg_fanin
    );
    println!(
        "fanout-free: {} | reconvergent stems: {}",
        ffr::is_fanout_free(&circuit, &topo),
        ffr::reconvergent_stems(&circuit, &topo).len()
    );
    let report = TestabilityReport::analyse(&circuit, 1e-4).map_err(|e| e.to_string())?;
    println!(
        "collapsed faults {} (of {}) | min p_det {:.2e} | resistant(<1e-4) {}",
        report.faults,
        report.faults_uncollapsed,
        report.min_detection_probability,
        report.resistant_faults
    );
    println!(
        "COP-predicted coverage: {:.2}% @1k, {:.2}% @32k",
        report.expected_coverage_1k * 100.0,
        report.expected_coverage_32k * 100.0
    );
    Ok(())
}

/// `--threads` default: every available hardware thread.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `--block-words`: words per simulation block (W×64 patterns per
/// pass); `auto` (or 0, the default) selects by circuit size.
fn block_words_flag(flags: &Flags) -> Result<usize, String> {
    match flags.get("block-words") {
        None | Some("auto") => Ok(0),
        Some(s) => {
            let w: usize = s
                .parse()
                .map_err(|_| format!("bad --block-words (got {s})"))?;
            if w != 0 && !block_words_supported(w) {
                return Err(format!(
                    "--block-words must be auto, 1, 2, 4 or 8 (got {w})"
                ));
            }
            Ok(w)
        }
    }
}

/// `--simd-backend`: instruction selection for the simulation kernels
/// (results are bit-identical across backends; `auto` picks the best
/// the CPU supports). Resolved eagerly so a bad request fails with a
/// CLI error instead of a worker panic.
fn backend_flag(flags: &Flags) -> Result<BackendChoice, String> {
    let choice = match flags.get("simd-backend") {
        None => BackendChoice::Auto,
        Some(s) => BackendChoice::parse(s).map_err(|e| format!("--simd-backend: {e}"))?,
    };
    SimdBackend::resolve(choice).map_err(|e| format!("--simd-backend: {e}"))?;
    Ok(choice)
}

/// The resolved backend for a validated choice (for the `sim.backend`
/// gauge and status lines).
fn resolved_backend(choice: BackendChoice) -> SimdBackend {
    SimdBackend::resolve(choice).expect("choice validated by backend_flag")
}

/// `--metrics-out FILE`: dump a registry snapshot as one JSON object
/// (render back with `tpi stats FILE`).
fn write_metrics(path: &str, registry: &Registry) -> Result<(), String> {
    std::fs::write(path, registry.snapshot().to_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

/// `--detection`: detection-word algorithm (results are bit-identical;
/// `cpt` is the fast default).
fn detection_flag(flags: &Flags) -> Result<DetectionMode, String> {
    match flags.get("detection") {
        None | Some("cpt") => Ok(DetectionMode::CriticalPathTracing),
        Some("explicit") => Ok(DetectionMode::Explicit),
        Some(other) => Err(format!("--detection must be cpt or explicit (got {other})")),
    }
}

fn sim_options_flags(flags: &Flags) -> Result<SimOptions, String> {
    Ok(SimOptions {
        block_words: block_words_flag(flags)?,
        detection: detection_flag(flags)?,
        backend: backend_flag(flags)?,
    })
}

fn simulate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["lfsr"])?;
    let circuit = load(flags.file()?)?;
    let patterns: u64 = flags.num("patterns", 32_000)?;
    let seed: u64 = flags.num("seed", 1)?;
    let threads: usize = flags.num("threads", default_threads())?;
    let options = sim_options_flags(&flags)?;
    let universe = FaultUniverse::collapsed(&circuit).map_err(|e| e.to_string())?;
    let n_inputs = circuit.inputs().len();
    let control = RunControl::unlimited();
    let run = if flags.has("lfsr") {
        // Validate the LFSR width once up front, then fan out.
        LfsrPatterns::new(n_inputs, seed).map_err(|e| e.to_string())?;
        run_parallel_controlled(
            &circuit,
            || LfsrPatterns::new(n_inputs, seed).expect("width checked above"),
            patterns,
            universe.faults(),
            threads,
            options,
            &control,
        )
    } else {
        run_parallel_controlled(
            &circuit,
            || RandomPatterns::new(n_inputs, seed),
            patterns,
            universe.faults(),
            threads,
            options,
            &control,
        )
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("metrics-out") {
        let registry = Registry::new();
        run.counters.publish_to(&registry);
        resolved_backend(options.backend).publish_to(&registry);
        write_metrics(path, &registry)?;
    }
    let result = run.result;
    println!(
        "{}: {}/{} faults detected ({:.2}%) with {} patterns",
        circuit.name(),
        result.detected_count(),
        universe.len(),
        result.coverage() * 100.0,
        result.patterns_applied()
    );
    for point in result.coverage_curve((patterns / 8).max(1)) {
        println!("  @{:>8}: {:.2}%", point.patterns, point.coverage * 100.0);
    }
    Ok(())
}

fn insert(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let circuit = load(flags.file()?)?;
    let threshold = if let Some(e) = flags.get("log2-threshold") {
        let exp: f64 = e.parse().map_err(|_| "bad --log2-threshold")?;
        if exp > 0.0 {
            return Err("--log2-threshold must be ≤ 0".into());
        }
        Threshold::from_log2(exp)
    } else {
        let length: u64 = flags.num("test-length", 32_000)?;
        let confidence: f64 = flags.num("confidence", 0.98)?;
        Threshold::from_test_length(length, confidence).map_err(|e| e.to_string())?
    };
    let method = flags.get("method").unwrap_or("dp");
    let threads: usize = flags.num("threads", default_threads())?;
    // `--candidate-eval`: batched compile-once scoring (default) vs the
    // legacy per-candidate full re-evaluation, kept as the A/B oracle.
    // Both paths select bit-identical plans.
    let candidate_eval = match flags.get("candidate-eval").unwrap_or("batched") {
        "batched" => CandidateEval::Batched,
        "legacy" => CandidateEval::Legacy,
        other => {
            return Err(format!(
                "bad --candidate-eval `{other}` (expected batched|legacy)"
            ))
        }
    };
    let score_threads: usize = flags.num("score-threads", 1)?;
    if score_threads == 0 {
        return Err("--score-threads must be ≥ 1".into());
    }
    let options = sim_options_flags(&flags)?;
    // `--deadline-ms`: run the optimizer under a RunControl deadline; an
    // interrupted run still commits its best-so-far prefix plan
    // (reported with `"partial": true`).
    let deadline = flags
        .opt_num::<u64>("deadline-ms")?
        .map(std::time::Duration::from_millis);
    let control = RunControl::with_limits(deadline, None);
    // Collects the engine's session metrics (constructive method) and
    // the closing verification's kernel counters for `--metrics-out`.
    let registry = std::sync::Arc::new(Registry::new());
    let problem = TpiProblem::min_cost(&circuit, threshold).map_err(|e| e.to_string())?;

    let mut interrupted = None;
    let plan = match method {
        "dp" => DpOptimizer::default()
            // Bottom-up DP has no useful half-finished table: a deadline
            // here is a hard error, not an anytime result.
            .solve_region_controlled(&problem, 1.0, &control)
            .map(|(plan, _)| plan)
            .map_err(|e| {
                format!("{e}\nhint: for reconvergent circuits use --method constructive")
            })?,
        "greedy" => {
            let (plan, stopped) = GreedyOptimizer::new(GreedyConfig {
                candidate_eval,
                ..GreedyConfig::default()
            })
            .solve_controlled(&problem, &control)
            .map_err(|e| e.to_string())?;
            interrupted = stopped;
            plan
        }
        "constructive" => {
            // The incremental engine session: cached analyses, dirty-cone
            // re-measurement, memoized region DP.
            let mut engine = TpiEngine::with_registry(
                circuit.clone(),
                EngineConfig {
                    verify_incremental: false,
                    block_words: options.block_words,
                    detection: options.detection,
                    simd_backend: options.backend,
                    candidate_eval,
                    score_threads,
                    ..EngineConfig::default()
                },
                registry.clone(),
            )
            .map_err(|e| e.to_string())?;
            engine.set_control(control.clone());
            let outcome = engine
                .optimize(threshold, &OptimizeConfig::default())
                .map_err(|e| e.to_string())?;
            let stats = engine.stats();
            eprintln!(
                "engine: {} incremental re-sims ({} faults re-simulated, {} reused), \
                 {} DP memo hits",
                stats.incremental_sims,
                stats.faults_resimulated,
                stats.faults_skipped,
                stats.memo_hits
            );
            interrupted = outcome.interrupted;
            outcome.plan
        }
        "constructive-baseline" => {
            let outcome = ConstructiveOptimizer::new(ConstructiveConfig {
                candidate_eval,
                score_threads,
                ..ConstructiveConfig::default()
            })
            .solve_controlled(&circuit, threshold, &control)
            .map_err(|e| e.to_string())?;
            interrupted = outcome.interrupted;
            outcome.plan
        }
        other => return Err(format!("unknown method `{other}`")),
    };

    if let Some(reason) = interrupted {
        // Anytime result: the prefix plan committed before the deadline,
        // as one machine-readable JSON line.
        let points: Vec<Json> = plan
            .test_points()
            .iter()
            .map(|tp| {
                Json::obj([
                    ("node", Json::from(circuit.node_name(tp.node))),
                    ("kind", Json::from(tp.kind.mnemonic())),
                ])
            })
            .collect();
        let line = Json::obj([
            ("partial", Json::from(true)),
            ("stopped", Json::from(reason.to_string())),
            ("cost", Json::from(plan.cost())),
            ("points", Json::Arr(points)),
        ]);
        println!("{line}");
    }

    let report = InsertionReport::build(&problem, &plan).map_err(|e| e.to_string())?;
    print!("{}", report.to_text());

    let (modified, _) = apply_plan(&circuit, plan.test_points()).map_err(|e| e.to_string())?;
    // Measured closing check of the committed plan, fanned out over the
    // worker pool.
    let universe = FaultUniverse::collapsed(&circuit).map_err(|e| e.to_string())?;
    let n_inputs = modified.inputs().len();
    let verify_run = run_parallel_controlled(
        &modified,
        || RandomPatterns::new(n_inputs, 1),
        32_000,
        universe.faults(),
        threads,
        options,
        &RunControl::unlimited(),
    )
    .map_err(|e| e.to_string())?;
    verify_run.counters.publish_to(&registry);
    resolved_backend(options.backend).publish_to(&registry);
    let verified = verify_run.result;
    println!(
        "measured coverage after insertion: {:.2}% ({} patterns, {} threads)",
        verified.coverage() * 100.0,
        verified.patterns_applied(),
        threads
    );
    if let Some(out) = flags.get("out") {
        std::fs::write(out, bench_format::to_bench(&modified))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    if let Some(v) = flags.get("verilog") {
        std::fs::write(v, verilog::to_verilog(&modified)).map_err(|e| format!("{v}: {e}"))?;
        println!("wrote {v}");
    }
    if let Some(path) = flags.get("metrics-out") {
        write_metrics(path, &registry)?;
    }
    Ok(())
}

fn atpg(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let circuit = load(flags.file()?)?;
    let patterns: u64 = flags.num("patterns", 32_000)?;
    let universe = FaultUniverse::collapsed(&circuit).map_err(|e| e.to_string())?;
    let sweep = redundancy::sweep(&circuit, universe.faults(), PodemConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} faults — {} testable, {} redundant, {} undecided",
        circuit.name(),
        universe.len(),
        sweep.testable.len(),
        sweep.redundant.len(),
        sweep.undecided.len()
    );
    for f in &sweep.redundant {
        println!("  redundant: {}", f.describe(&circuit));
    }
    let targets = sweep.targets();
    let mut src = RandomPatterns::new(circuit.inputs().len(), 1);
    let leftovers = topoff::undetected_after(&circuit, &targets, &mut src, patterns)
        .map_err(|e| e.to_string())?;
    let top = topoff::generate(&circuit, &leftovers, PodemConfig::default(), 7)
        .map_err(|e| e.to_string())?;
    println!(
        "after {patterns} random patterns: {} faults left → {} cubes ({} merged seeds)",
        leftovers.len(),
        top.cubes.len(),
        top.seed_count()
    );
    for cube in &top.merged {
        println!("  seed: {}", cube.to_pattern_string());
    }
    Ok(())
}

fn batch_cmd(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["resume"])?;
    let path = std::path::Path::new(flags.file()?);
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let manifest = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let base_dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let (workers, specs) = batch::parse_manifest(&manifest, base_dir)?;
    let retries: usize = flags.num("retries", 0)?;
    let resume = flags.has("resume");
    let out = flags.get("out");
    if resume && out.is_none() {
        return Err("--resume needs --out FILE (the checkpoint to resume from)".into());
    }
    let registry = flags
        .get("metrics-out")
        .map(|_| std::sync::Arc::new(Registry::new()));
    let mut opts = batch::BatchOptions {
        workers,
        retries,
        registry: registry.clone(),
        ..batch::BatchOptions::default()
    };
    let summary = if let Some(out) = out {
        if resume {
            // Skip every job the existing checkpoint already completed;
            // new lines are appended, so readers keep the last line per
            // job index.
            match std::fs::read_to_string(out) {
                Ok(existing) => opts.skip = batch::completed_indices(&existing),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("{out}: {e}")),
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(resume)
            .truncate(!resume)
            .write(true)
            .open(out)
            .map_err(|e| format!("{out}: {e}"))?;
        let summary = batch::run_jobs_with(&opts, &specs, &mut file).map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
        summary
    } else {
        let mut buffer = Vec::new();
        let summary =
            batch::run_jobs_with(&opts, &specs, &mut buffer).map_err(|e| e.to_string())?;
        let mut stdout = std::io::stdout().lock();
        use std::io::Write as _;
        stdout.write_all(&buffer).map_err(|e| e.to_string())?;
        summary
    };
    // Machine-readable final summary line (per-status counts and batch
    // wall clock); goes to stdout even when the JSONL went to a file.
    println!("{}", summary.to_json());
    eprintln!(
        "batch: {} ok, {} error, {} panic, {} timeout, {} cancelled, {} skipped \
         of {} jobs in {} ms",
        summary.ok,
        summary.error,
        summary.panic,
        summary.timeout,
        summary.cancelled,
        summary.skipped,
        specs.len(),
        summary.elapsed_ms
    );
    if let (Some(path), Some(registry)) = (flags.get("metrics-out"), &registry) {
        write_metrics(path, registry)?;
    }
    Ok(())
}

/// `tpi serve` — the line-JSON session front end, in two modes:
///
/// * `--stdio` (default): one session over stdin/stdout, exactly the
///   protocol existing driver scripts speak, plus SIGINT drain and
///   `--metrics-out`.
/// * `--listen ADDR`: the concurrent multi-session server (`unix:PATH`
///   or `HOST:PORT`) with admission control (`--max-sessions`,
///   `--accept-queue`, `--max-inflight`) and a cross-session shared DP
///   memo (`--shared-memo-capacity N` entries; `--isolated-memo` gives
///   every session a private memo — the A/B baseline the soak harness
///   measures against).
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["stdio", "isolated-memo"])?;
    let limits = serve::ServeLimits {
        max_gates: flags.opt_num("max-gates")?,
        max_patterns: flags.opt_num("max-patterns")?,
    };
    let metrics_out = flags.get("metrics-out").map(std::path::PathBuf::from);
    server::signal::install();
    let Some(listen) = flags.get("listen") else {
        // Single-session stdio mode (`--stdio` is accepted for
        // explicitness but is the default).
        return server::run_stdio(limits, metrics_out.as_deref())
            .map_err(|e| format!("serve: {e}"));
    };
    if flags.has("stdio") {
        return Err("--stdio and --listen are mutually exclusive".into());
    }
    let shared_memo = if flags.has("isolated-memo") {
        None
    } else {
        Some(SharedMemoConfig {
            capacity: flags.num("shared-memo-capacity", 65_536usize)?,
            ..SharedMemoConfig::default()
        })
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        limits,
        max_sessions: flags.num("max-sessions", defaults.max_sessions)?,
        accept_queue: flags.num("accept-queue", defaults.accept_queue)?,
        max_inflight: flags.num("max-inflight", defaults.max_inflight)?,
        shared_memo,
        metrics_out,
    };
    let addr = ListenAddr::parse(listen);
    let server = Server::bind(&addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("tpi serve: listening on {}", server.local_addr());
    let report = server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "tpi serve: drained — {} sessions served, {} rejected, {} overloaded, \
         {} shared-memo hits",
        report.sessions_served,
        report.sessions_rejected,
        report.overloaded,
        report.shared_memo_hits
    );
    Ok(())
}

/// `tpi stats FILE` — render a `--metrics-out` snapshot (or a serve
/// `metrics` reply) as an aligned table with histogram summaries.
fn stats_cmd(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let path = flags.file()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    // Accept both a bare snapshot document and a serve `metrics` reply
    // that wraps one under {"ok":true,"metrics":{...}}.
    let doc = doc.get("metrics").unwrap_or(&doc);
    let snapshot = snapshot_from_json(doc).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", snapshot.to_table());
    Ok(())
}

/// Rebuild an obs [`Snapshot`] from its JSON sink rendering.
fn snapshot_from_json(doc: &Json) -> Result<Snapshot, String> {
    let Json::Obj(metrics) = doc else {
        return Err("metrics document must be a JSON object".into());
    };
    let mut snapshot = Snapshot::new();
    for (name, metric) in metrics {
        let kind = metric
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metric '{name}' has no 'type'"))?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                metric
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("counter '{name}' has no integer 'value'"))?,
            ),
            "gauge" => MetricValue::Gauge(
                metric
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("gauge '{name}' has no 'value'"))?
                    as i64,
            ),
            "histogram" => {
                let field = |key: &str| {
                    metric
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("histogram '{name}' has no integer '{key}'"))
                };
                let buckets = metric
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("histogram '{name}' has no 'buckets'"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().unwrap_or(&[]);
                        match (
                            pair.first().and_then(Json::as_u64),
                            pair.get(1).and_then(Json::as_u64),
                        ) {
                            (Some(lo), Some(n)) => Ok((lo, n)),
                            _ => Err(format!("histogram '{name}' has a malformed bucket")),
                        }
                    })
                    .collect::<Result<Vec<(u64, u64)>, String>>()?;
                MetricValue::Histogram(HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    buckets,
                })
            }
            other => return Err(format!("metric '{name}' has unknown type '{other}'")),
        };
        snapshot.insert(name.clone(), value);
    }
    Ok(snapshot)
}

fn export(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let circuit = load(flags.file()?)?;
    let mut wrote = false;
    if let Some(v) = flags.get("verilog") {
        std::fs::write(v, verilog::to_verilog(&circuit)).map_err(|e| format!("{v}: {e}"))?;
        println!("wrote {v}");
        wrote = true;
    }
    if let Some(d) = flags.get("dot") {
        std::fs::write(d, dot::to_dot(&circuit)).map_err(|e| format!("{d}: {e}"))?;
        println!("wrote {d}");
        wrote = true;
    }
    if !wrote {
        return Err("export needs --verilog FILE and/or --dot FILE".into());
    }
    Ok(())
}
