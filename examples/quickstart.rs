//! Quickstart: fix a random-pattern-resistant circuit with the DP.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use krishnamurthy_tpi::prelude::*;
use krishnamurthy_tpi::sim::FaultUniverse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-wide AND cone behind an OR tail: the classic random-pattern-
    // resistant structure (the cone output is 1 once in 2^16 patterns).
    let circuit = krishnamurthy_tpi::gen::rpr::and_tree(16, 2)?;
    println!("circuit: {circuit}");

    // How bad is it? Fault-simulate 2 000 pseudo-random patterns.
    let universe = FaultUniverse::collapsed(&circuit)?;
    let mut sim = FaultSimulator::new(&circuit)?;
    let mut patterns = RandomPatterns::new(circuit.inputs().len(), 42);
    let before = sim.run(&mut patterns, 2_000, universe.faults())?;
    println!(
        "baseline:  {:5.2}% fault coverage after {} patterns",
        before.coverage() * 100.0,
        before.patterns_applied()
    );

    // Ask the DP for a minimum-cost plan: every stuck-at fault must be
    // detectable per-pattern with probability ≥ the value implied by a
    // 2 000-pattern budget at 99% per-fault confidence.
    let threshold = Threshold::from_test_length(2_000, 0.99)?;
    let problem = TpiProblem::min_cost(&circuit, threshold)?;
    let plan = DpOptimizer::new(DpConfig::default()).solve(&problem)?;
    println!("plan:      {}", plan.describe(&circuit));

    // Apply the plan and re-measure with the same budget.
    let (modified, _) = apply_plan(&circuit, plan.test_points())?;
    let mut sim = FaultSimulator::new(&modified)?;
    let mut patterns = RandomPatterns::new(modified.inputs().len(), 42);
    let after = sim.run(&mut patterns, 2_000, universe.faults())?;
    println!(
        "after TPI: {:5.2}% fault coverage after {} patterns",
        after.coverage() * 100.0,
        after.patterns_applied()
    );

    // The analytic referee confirms the threshold is met everywhere.
    let eval = PlanEvaluator::new(&problem)?.evaluate(plan.test_points())?;
    println!(
        "verified:  min detection probability {:.2e} (threshold {:.2e}), feasible: {}",
        eval.min_probability,
        threshold.value(),
        eval.feasible
    );
    Ok(())
}
