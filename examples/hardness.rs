//! The NP-hardness corner: the Set-Cover reduction in action, plus the
//! exponential cost of exhaustive search that the DP sidesteps on trees.
//!
//! ```text
//! cargo run --release --example hardness
//! ```

use std::time::Instant;

use krishnamurthy_tpi::core::reduction::{reduce, SetCoverInstance};
use krishnamurthy_tpi::core::{DpConfig, DpOptimizer, ExactOptimizer, Threshold, TpiProblem};
use krishnamurthy_tpi::gen::trees::{random_tree, RandomTreeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: observation-point insertion *is* set cover.
    println!("-- Set-Cover ⟶ observation-point TPI --");
    let instance = SetCoverInstance::random(6, 5, 0.4, 3);
    println!(
        "universe: {} elements, sets: {:?}",
        instance.elements, instance.sets
    );
    let reduction = reduce(&instance)?;
    println!(
        "reduction circuit: {} nodes, δ = {}",
        reduction.circuit.node_count(),
        reduction.threshold
    );
    let cover = instance.min_cover_size().expect("coverable");
    let ops = reduction.min_observation_points()?.expect("feasible");
    println!("minimum set cover: {cover}  ⇔  minimum observation points: {ops}");
    assert_eq!(cover, ops);

    // Part 2: exhaustive search blows up; the DP does not.
    println!("\n-- exhaustive search vs DP on growing trees --");
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "nodes", "b&b visits", "b&b time", "dp time"
    );
    for leaves in [3usize, 4, 5, 6] {
        let circuit = random_tree(&RandomTreeConfig::with_leaves(leaves, 9).and_or_only())?;
        let problem = TpiProblem::min_cost(&circuit, Threshold::from_log2(-4.0))?;

        let t = Instant::now();
        let dp = DpOptimizer::new(DpConfig::exact()).solve(&problem)?;
        let dp_time = t.elapsed();

        let t = Instant::now();
        let (exact, stats) = ExactOptimizer::with_max_nodes(16).solve(&problem)?;
        let bb_time = t.elapsed();

        assert!((dp.cost() - exact.cost()).abs() < 1e-9);
        println!(
            "{:>7} {:>14} {:>12.1?} {:>12.1?}",
            circuit.node_count(),
            stats.nodes_visited,
            bb_time,
            dp_time
        );
    }
    println!("\nBranch-and-bound visits grow exponentially with circuit size;");
    println!("the DP stays polynomial — the paper's core complexity separation.");
    Ok(())
}
