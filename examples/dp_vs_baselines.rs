//! Head-to-head: DP vs greedy vs random on fanout-free circuits.
//!
//! ```text
//! cargo run --release --example dp_vs_baselines
//! ```

use krishnamurthy_tpi::core::evaluate::PlanEvaluator;
use krishnamurthy_tpi::core::{
    DpOptimizer, GreedyOptimizer, RandomOptimizer, Threshold, TpiProblem,
};
use krishnamurthy_tpi::gen::rpr;
use krishnamurthy_tpi::gen::trees::{random_tree, RandomTreeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threshold = Threshold::from_log2(-9.0);
    println!("threshold: δ = {threshold}\n");
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>10}",
        "circuit", "nodes", "dp", "greedy", "random"
    );

    let mut circuits = vec![
        rpr::and_tree(16, 2)?,
        rpr::and_tree(24, 4)?,
        rpr::comparator(12)?,
        rpr::parity_gated_cone(6, 14)?,
    ];
    for seed in 1..=3 {
        circuits.push(random_tree(
            &RandomTreeConfig::with_leaves(48, seed).and_or_only(),
        )?);
    }

    for circuit in &circuits {
        let problem = TpiProblem::min_cost(circuit, threshold)?;
        let evaluator = PlanEvaluator::new(&problem)?;

        let dp = DpOptimizer::default().solve(&problem)?;
        assert!(evaluator.evaluate(dp.test_points())?.feasible);

        let greedy = GreedyOptimizer::default().solve(&problem)?;
        let random = RandomOptimizer::new(11, 300).solve(&problem)?;

        let show = |plan: &krishnamurthy_tpi::core::Plan| {
            if plan.is_feasible() {
                format!("{:.1}", plan.cost())
            } else {
                format!("{:.1}*", plan.cost()) // * = did not reach δ
            }
        };
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>10}",
            circuit.name(),
            circuit.node_count(),
            show(&dp),
            show(&greedy),
            show(&random)
        );
    }
    println!("\n(*) failed to reach the threshold within its budget");
    println!("dp ≤ greedy ≤ random is the expected cost ordering; dp is optimal on these trees.");
    Ok(())
}
