//! The complete DFT flow the DAC'87-era literature describes, end to end:
//!
//! 1. redundancy sweep (ATPG) — untestable faults leave the targets;
//! 2. random-pattern baseline measurement;
//! 3. DP test point insertion against a test-length budget;
//! 4. re-measurement;
//! 5. deterministic top-off cubes for the last stragglers.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use krishnamurthy_tpi::atpg::{redundancy, topoff, PodemConfig};
use krishnamurthy_tpi::core::report::InsertionReport;
use krishnamurthy_tpi::core::{DpOptimizer, Threshold, TpiProblem};
use krishnamurthy_tpi::netlist::transform::apply_plan;
use krishnamurthy_tpi::sim::{FaultSimulator, FaultUniverse, RandomPatterns};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let test_length = 4_000u64;
    let circuit = krishnamurthy_tpi::gen::rpr::and_tree(24, 4)?;
    println!("circuit: {circuit}\n");

    // 1. Redundancy sweep.
    let universe = FaultUniverse::collapsed(&circuit)?;
    let sweep = redundancy::sweep(&circuit, universe.faults(), PodemConfig::default())?;
    println!(
        "ATPG sweep: {} testable, {} redundant, {} undecided",
        sweep.testable.len(),
        sweep.redundant.len(),
        sweep.undecided.len()
    );
    let targets = sweep.targets();

    // 2. Baseline.
    let mut sim = FaultSimulator::new(&circuit)?;
    let mut src = RandomPatterns::new(circuit.inputs().len(), 42);
    let baseline = sim.run(&mut src, test_length, &targets)?;
    println!(
        "baseline: {:.2}% of testable faults after {} patterns\n",
        baseline.coverage() * 100.0,
        test_length
    );

    // 3. Insertion (DP; this family is fanout-free).
    let threshold = Threshold::from_test_length(test_length, 0.95)?;
    let problem = TpiProblem::min_cost(&circuit, threshold)?;
    let plan = DpOptimizer::default().solve(&problem)?;
    let report = InsertionReport::build(&problem, &plan)?;
    println!("{}", report.to_markdown());

    // 4. Re-measure.
    let (modified, _) = apply_plan(&circuit, plan.test_points())?;
    let mut sim = FaultSimulator::new(&modified)?;
    let mut src = RandomPatterns::new(modified.inputs().len(), 42);
    let after = sim.run(&mut src, test_length, &targets)?;
    println!(
        "after TPI: {:.2}% after {} patterns",
        after.coverage() * 100.0,
        test_length
    );

    // 5. Top off the stragglers with stored cubes.
    let leftovers: Vec<_> = after
        .undetected_indices()
        .into_iter()
        .map(|i| targets[i])
        .collect();
    if leftovers.is_empty() {
        println!("no top-off needed — the random session covers everything");
    } else {
        let top = topoff::generate(&modified, &leftovers, PodemConfig::default(), 7)?;
        println!(
            "top-off: {} leftover faults → {} cubes, {} merged seeds",
            leftovers.len(),
            top.cubes.len(),
            top.seed_count()
        );
        for cube in &top.merged {
            println!("  seed {}", cube.to_pattern_string());
        }
    }
    Ok(())
}
