//! A complete scan-BIST session: LFSR pattern generator, fault
//! simulation, constructive test point insertion on a reconvergent
//! circuit, and MISR response compaction.
//!
//! ```text
//! cargo run --example bist_flow
//! ```

use krishnamurthy_tpi::core::general::{ConstructiveConfig, ConstructiveOptimizer};
use krishnamurthy_tpi::core::Threshold;
use krishnamurthy_tpi::gen::{dags, rpr};
use krishnamurthy_tpi::netlist::Circuit;
use krishnamurthy_tpi::sim::{
    FaultSimulator, FaultUniverse, LfsrPatterns, LogicSim, Misr, PatternSource,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let test_length = 4_096u64;

    for circuit in [
        rpr::comparator(14)?,
        dags::random_dag(&dags::RandomDagConfig::new(24, 200, 7))?,
    ] {
        println!("=== {} ===", circuit);
        bist_session(&circuit, test_length)?;
        println!();
    }
    Ok(())
}

fn bist_session(circuit: &Circuit, test_length: u64) -> Result<(), Box<dyn std::error::Error>> {
    let universe = FaultUniverse::collapsed(circuit)?;
    println!(
        "fault universe: {} collapsed / {} total",
        universe.len(),
        universe.total_uncollapsed()
    );

    // Phase 1: measure the unmodified design under the real BIST stimulus.
    let mut sim = FaultSimulator::new(circuit)?;
    let mut lfsr = LfsrPatterns::new(circuit.inputs().len(), 0xace1)?;
    let before = sim.run(&mut lfsr, test_length, universe.faults())?;
    println!(
        "baseline coverage: {:.2}% ({} of {} faults)",
        before.coverage() * 100.0,
        before.detected_count(),
        universe.len()
    );

    // Phase 2: constructive insertion (fault-sim guided, DP per region).
    let threshold = Threshold::from_test_length(test_length, 0.95)?;
    let outcome = ConstructiveOptimizer::new(ConstructiveConfig {
        patterns_per_round: test_length,
        max_rounds: 8,
        target_coverage: 0.999,
        ..ConstructiveConfig::default()
    })
    .solve(circuit, threshold)?;
    println!("inserted: {}", outcome.plan.describe(circuit));
    for round in &outcome.rounds {
        println!(
            "  round {}: coverage {:.2}% (cost so far {:.1})",
            round.round,
            round.coverage * 100.0,
            round.cost
        );
    }

    // Phase 3: sign off the modified design and compute the golden MISR
    // signature a tester would compare against.
    let modified = &outcome.modified;
    let mut sim = FaultSimulator::new(modified)?;
    let mut lfsr = LfsrPatterns::new(modified.inputs().len(), 0xace1)?;
    let after = sim.run(&mut lfsr, test_length, universe.faults())?;
    println!("final coverage:    {:.2}%", after.coverage() * 100.0);

    let logic = LogicSim::new(modified)?;
    let mut misr = Misr::new(24, 0).expect("24 is a valid MISR width");
    let mut source = LfsrPatterns::new(modified.inputs().len(), 0xace1)?;
    let mut words = vec![0u64; modified.inputs().len()];
    let mut remaining = test_length;
    while remaining > 0 {
        let n = source.fill(&mut words).min(remaining as usize);
        if n == 0 {
            break;
        }
        let values = logic.simulate(&words);
        let outputs = logic.output_words(&values);
        misr.absorb_block(&outputs, n);
        remaining -= n as u64;
    }
    println!(
        "golden MISR signature: {:#010x} after {} response vectors",
        misr.signature(),
        misr.clocks()
    );
    Ok(())
}
