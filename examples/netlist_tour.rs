//! A tour of the structural substrate: parse the embedded ISCAS-85 `c17`,
//! analyse it, insert a test point by hand, and export Graphviz.
//!
//! ```text
//! cargo run --example netlist_tour
//! ```

use krishnamurthy_tpi::gen::benchmarks;
use krishnamurthy_tpi::netlist::{analysis, bench_format, dot, ffr, TestPoint, Topology};
use krishnamurthy_tpi::testability::{CopAnalysis, ScoapAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c17 = benchmarks::c17()?;
    let topo = Topology::of(&c17)?;

    println!("{c17}");
    let stats = analysis::stats(&c17, &topo);
    println!(
        "depth {} | {} stems | max fanout {}",
        stats.depth, stats.stems, stats.max_fanout
    );

    println!("\nfanout-free regions:");
    let regions = ffr::FfrDecomposition::of(&c17, &topo);
    for &root in regions.roots() {
        let members: Vec<&str> = regions
            .members(root)
            .iter()
            .map(|&m| c17.node_name(m))
            .collect();
        println!("  root {}: {{{}}}", c17.node_name(root), members.join(", "));
    }
    let recon: Vec<&str> = ffr::reconvergent_stems(&c17, &topo)
        .iter()
        .map(|&s| c17.node_name(s))
        .collect();
    println!("reconvergent stems: {{{}}}", recon.join(", "));

    println!("\ntestability (COP c1 / observability, SCOAP cc0/cc1/co):");
    let cop = CopAnalysis::new(&c17)?;
    let scoap = ScoapAnalysis::new(&c17)?;
    for id in c17.node_ids() {
        println!(
            "  {:<4} c1={:.3} obs={:.3}   cc0={} cc1={} co={}",
            c17.node_name(id),
            cop.c1(id),
            cop.observability(id),
            scoap.cc0(id),
            scoap.cc1(id),
            scoap.co(id)
        );
    }

    // Hand-insert a control point at the famous reconvergent stem `11`.
    let stem = c17.find_node("11").expect("c17 has net 11");
    let (modified, applied) =
        krishnamurthy_tpi::netlist::transform::apply_plan(&c17, &[TestPoint::control_or(stem)])?;
    println!(
        "\ninserted {} (aux input {}, gate {})",
        applied[0].point,
        modified.node_name(applied[0].aux_input.unwrap()),
        modified.node_name(applied[0].cp_gate.unwrap()),
    );

    println!(
        "\nround-trip through .bench:\n{}",
        bench_format::to_bench(&modified)
    );
    println!(
        "Graphviz of the modified circuit:\n{}",
        dot::to_dot(&modified)
    );
    Ok(())
}
