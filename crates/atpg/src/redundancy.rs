//! Redundancy identification: partition a fault list into testable /
//! redundant / undecided classes.
//!
//! The TPI flow runs this *first*: redundant faults can never be detected
//! — by any pattern, with any test points — so they are removed from the
//! coverage denominator and from every optimizer's target list (exactly
//! as the period papers describe: "redundant faults are first eliminated
//! using an efficient ATPG tool").

use tpi_netlist::{Circuit, NetlistError};
use tpi_sim::Fault;

use crate::{Podem, PodemConfig, PodemResult, TestCube};

/// Result of a redundancy sweep.
#[derive(Clone, Debug)]
pub struct RedundancySweep {
    /// Faults proven testable, with one witness cube each.
    pub testable: Vec<(Fault, TestCube)>,
    /// Faults proven untestable (safe to drop from all targets).
    pub redundant: Vec<Fault>,
    /// Faults on which the search aborted (keep in the target list; they
    /// may still be testable).
    pub undecided: Vec<Fault>,
}

impl RedundancySweep {
    /// The faults that remain legitimate TPI targets (testable +
    /// undecided).
    pub fn targets(&self) -> Vec<Fault> {
        self.testable
            .iter()
            .map(|(f, _)| *f)
            .chain(self.undecided.iter().copied())
            .collect()
    }

    /// Fraction of faults proven redundant.
    pub fn redundancy_ratio(&self) -> f64 {
        let total = self.testable.len() + self.redundant.len() + self.undecided.len();
        if total == 0 {
            0.0
        } else {
            self.redundant.len() as f64 / total as f64
        }
    }
}

/// Classify every fault in `faults` with PODEM.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn sweep(
    circuit: &Circuit,
    faults: &[Fault],
    config: PodemConfig,
) -> Result<RedundancySweep, NetlistError> {
    let mut podem = Podem::with_config(circuit, config)?;
    let mut result = RedundancySweep {
        testable: Vec::new(),
        redundant: Vec::new(),
        undecided: Vec::new(),
    };
    for &fault in faults {
        match podem.generate(fault)? {
            PodemResult::Test(cube) => result.testable.push((fault, cube)),
            PodemResult::Untestable => result.redundant.push(fault),
            PodemResult::Aborted => result.undecided.push(fault),
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind};
    use tpi_sim::FaultUniverse;

    #[test]
    fn sweep_partitions_and_counts() {
        // Circuit with a known redundancy: y = AND(OR(x, nx), z) where
        // OR(x, nx) ≡ 1 — its SA1 (and the OR inputs' SA1s through
        // dominance) are untestable.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let z = b.input("z");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let t = b.gate(GateKind::Or, vec![x, nx], "t").unwrap();
        let y = b.gate(GateKind::And, vec![t, z], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::full(&c).unwrap();
        let sweep = sweep(&c, universe.faults(), PodemConfig::default()).unwrap();
        assert!(sweep.redundant.contains(&tpi_sim::Fault::stem_sa1(t)));
        assert!(sweep.undecided.is_empty());
        assert!(!sweep.testable.is_empty());
        assert!(sweep.redundancy_ratio() > 0.0 && sweep.redundancy_ratio() < 1.0);
        assert_eq!(
            sweep.targets().len(),
            universe.len() - sweep.redundant.len()
        );
    }

    #[test]
    fn redundancy_matches_exhaustive_ground_truth() {
        let c = {
            let mut b = CircuitBuilder::new("c");
            let xs = b.inputs(3, "x");
            let g1 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g1").unwrap();
            let ng1 = b.gate(GateKind::Not, vec![g1], "ng1").unwrap();
            let g2 = b.gate(GateKind::Or, vec![g1, ng1], "g2").unwrap(); // ≡ 1
            let y = b.gate(GateKind::And, vec![g2, xs[2]], "y").unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let universe = FaultUniverse::full(&c).unwrap();
        let probs =
            tpi_sim::montecarlo::exact_detection_probabilities(&c, universe.faults()).unwrap();
        let sweep = sweep(&c, universe.faults(), PodemConfig::default()).unwrap();
        for &f in &sweep.redundant {
            let i = universe.faults().iter().position(|&g| g == f).unwrap();
            assert_eq!(probs[i], 0.0, "{} declared redundant", f.describe(&c));
        }
        for (f, _) in &sweep.testable {
            let i = universe.faults().iter().position(|&g| g == *f).unwrap();
            assert!(probs[i] > 0.0, "{} declared testable", f.describe(&c));
        }
    }
}
