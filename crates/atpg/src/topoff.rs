//! Top-off cube generation: deterministic coverage of the faults a
//! random-pattern (plus TPI) session leaves behind.
//!
//! When a handful of hard faults would each need their own test point,
//! the economical alternative is *reseeding*: generate one deterministic
//! cube per remaining fault, merge compatible cubes, and store them as
//! LFSR seeds. This module answers the flow's final question — **how many
//! cubes/seeds does 100% need?** — with fault-simulation-based dropping so
//! cubes that fortuitously catch several faults are counted once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpi_netlist::{Circuit, NetlistError};
use tpi_sim::{Fault, FaultSimulator, PatternSource, RunControl, StopReason};

use crate::{Podem, PodemConfig, PodemResult, TestCube};

/// Result of a top-off run.
#[derive(Clone, Debug)]
pub struct TopoffResult {
    /// The generated cube set, in generation order.
    pub cubes: Vec<TestCube>,
    /// The cube set after greedy compatibility merging (the stored-seed
    /// count).
    pub merged: Vec<TestCube>,
    /// Faults proven redundant along the way.
    pub redundant: Vec<Fault>,
    /// Faults left uncovered (ATPG aborts, plus every fault not yet
    /// processed when a [`RunControl`] token stopped the run).
    pub uncovered: Vec<Fault>,
    /// `Some` when a [`RunControl`] token stopped the run early; the
    /// cubes generated so far are still valid (an anytime result).
    pub interrupted: Option<StopReason>,
}

impl TopoffResult {
    /// Number of seeds a reseeding scheme would store.
    pub fn seed_count(&self) -> usize {
        self.merged.len()
    }
}

/// Generate a top-off cube set for `faults` on `circuit`.
///
/// Processing order is the given fault order; after each generated cube,
/// the remaining faults are fault-simulated against the cube (don't-cares
/// filled pseudo-randomly from `seed`) and fortuitous detections are
/// dropped.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn generate(
    circuit: &Circuit,
    faults: &[Fault],
    config: PodemConfig,
    seed: u64,
) -> Result<TopoffResult, NetlistError> {
    generate_controlled(circuit, faults, config, seed, &RunControl::unlimited())
}

/// [`generate`] under a [`RunControl`] token, polled once per target
/// fault (one PODEM search plus one drop simulation per poll). On
/// interruption the cubes generated so far are returned as an anytime
/// result, the remaining faults are reported in
/// [`TopoffResult::uncovered`], and
/// [`TopoffResult::interrupted`] records the reason.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn generate_controlled(
    circuit: &Circuit,
    faults: &[Fault],
    config: PodemConfig,
    seed: u64,
    control: &RunControl,
) -> Result<TopoffResult, NetlistError> {
    let mut podem = Podem::with_config(circuit, config)?;
    let mut sim = FaultSimulator::new(circuit)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut cubes = Vec::new();
    let mut redundant = Vec::new();
    let mut uncovered = Vec::new();
    let mut interrupted = None;

    while let Some(&fault) = remaining.first() {
        interrupted = control.poll();
        if interrupted.is_some() {
            uncovered.extend(remaining.iter().copied());
            break;
        }
        match podem.generate(fault)? {
            PodemResult::Test(cube) => {
                let pattern = cube.filled_with(|| rng.gen());
                let mut source = OnePattern::new(&pattern);
                let result = sim.run(&mut source, 1, &remaining)?;
                let detected: Vec<usize> = (0..remaining.len())
                    .filter(|&i| result.first_detection(i).is_some())
                    .collect();
                debug_assert!(
                    detected.contains(&0),
                    "generated cube must detect its own fault"
                );
                // Drop detected faults (descending index keeps positions
                // valid).
                for &i in detected.iter().rev() {
                    remaining.swap_remove(i);
                }
                cubes.push(cube);
            }
            PodemResult::Untestable => {
                redundant.push(fault);
                remaining.swap_remove(0);
            }
            PodemResult::Aborted => {
                uncovered.push(fault);
                remaining.swap_remove(0);
            }
        }
    }

    let merged = merge_cubes(&cubes);
    Ok(TopoffResult {
        cubes,
        merged,
        redundant,
        uncovered,
        interrupted,
    })
}

/// Greedy first-fit merging of compatible cubes.
fn merge_cubes(cubes: &[TestCube]) -> Vec<TestCube> {
    let mut merged: Vec<TestCube> = Vec::new();
    for cube in cubes {
        match merged.iter_mut().find(|m| m.compatible(cube)) {
            Some(slot) => *slot = slot.merged(cube),
            None => merged.push(cube.clone()),
        }
    }
    merged
}

/// A [`PatternSource`] replaying one fixed pattern (for cube
/// verification).
struct OnePattern {
    words: Vec<u64>,
    done: bool,
}

impl OnePattern {
    fn new(pattern: &[bool]) -> OnePattern {
        OnePattern {
            words: pattern.iter().map(|&b| if b { 1 } else { 0 }).collect(),
            done: false,
        }
    }
}

impl PatternSource for OnePattern {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        if self.done {
            return 0;
        }
        words.copy_from_slice(&self.words);
        self.done = true;
        1
    }

    fn reset(&mut self) {
        self.done = false;
    }
}

/// Convenience: the faults of `faults` still undetected after `n_random`
/// exhaustive-or-random patterns — the usual input to [`generate`].
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn undetected_after(
    circuit: &Circuit,
    faults: &[Fault],
    source: &mut dyn PatternSource,
    n_patterns: u64,
) -> Result<Vec<Fault>, NetlistError> {
    let mut sim = FaultSimulator::new(circuit)?;
    let result = sim.run(source, n_patterns, faults)?;
    Ok(result
        .undetected_indices()
        .into_iter()
        .map(|i| faults[i])
        .collect())
}

/// Sanity helper for tests: do the cubes, replayed verbatim, detect every
/// covered fault?
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn verify_cubes(
    circuit: &Circuit,
    faults: &[Fault],
    cubes: &[TestCube],
    fill_seed: u64,
) -> Result<usize, NetlistError> {
    let mut sim = FaultSimulator::new(circuit)?;
    let mut rng = StdRng::seed_from_u64(fill_seed);
    let mut detected = vec![false; faults.len()];
    for cube in cubes {
        let pattern = cube.filled_with(|| rng.gen());
        let mut source = OnePattern::new(&pattern);
        let result = sim.run(&mut source, 1, faults)?;
        for (i, slot) in detected.iter_mut().enumerate() {
            if result.first_detection(i).is_some() {
                *slot = true;
            }
        }
    }
    Ok(detected.iter().filter(|&&d| d).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind};
    use tpi_sim::{FaultUniverse, RandomPatterns};

    fn resistant_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("hard");
        let xs = b.inputs(16, "x");
        let cone = b.balanced_tree(GateKind::And, &xs[..12], "c").unwrap();
        let tail = b.balanced_tree(GateKind::Or, &xs[12..], "t").unwrap();
        let y = b.gate(GateKind::Or, vec![cone, tail], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn topoff_covers_the_random_resistant_remainder() {
        let c = resistant_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut src = RandomPatterns::new(16, 5);
        let leftovers = undetected_after(&c, universe.faults(), &mut src, 2_000).unwrap();
        assert!(
            !leftovers.is_empty(),
            "the cone must resist 2k random patterns"
        );
        let result = generate(&c, &leftovers, PodemConfig::default(), 9).unwrap();
        assert!(result.uncovered.is_empty());
        assert!(result.redundant.is_empty());
        assert!(!result.cubes.is_empty());
        // Merged seeds never exceed raw cubes.
        assert!(result.seed_count() <= result.cubes.len());
        // And a replay detects every leftover fault.
        let detected = verify_cubes(&c, &leftovers, &result.cubes, 9).unwrap();
        assert_eq!(detected, leftovers.len());
    }

    #[test]
    fn fortuitous_detection_reduces_cube_count() {
        // All faults of an AND cone share the "all ones" test: one cube
        // should cover many.
        let mut b = CircuitBuilder::new("cone");
        let xs = b.inputs(8, "x");
        let y = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let result = generate(&c, universe.faults(), PodemConfig::default(), 3).unwrap();
        assert!(
            result.cubes.len() < universe.len(),
            "{} cubes for {} faults",
            result.cubes.len(),
            universe.len()
        );
    }

    #[test]
    fn redundant_faults_are_reported_not_covered() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::Or, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let result = generate(
            &c,
            &[Fault::stem_sa1(y), Fault::stem_sa0(y)],
            PodemConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(result.redundant, vec![Fault::stem_sa1(y)]);
        assert_eq!(result.cubes.len(), 1);
    }

    #[test]
    fn cancelled_topoff_returns_generated_cubes_and_remaining_faults() {
        let c = resistant_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let control = RunControl::cancellable();
        control.cancel();
        let result =
            generate_controlled(&c, universe.faults(), PodemConfig::default(), 9, &control)
                .unwrap();
        assert_eq!(result.interrupted, Some(StopReason::Cancelled));
        assert!(result.cubes.is_empty());
        assert_eq!(result.uncovered.len(), universe.len());
    }

    #[test]
    fn merging_is_sound() {
        let a = TestCube::new(vec![
            crate::Ternary::One,
            crate::Ternary::X,
            crate::Ternary::X,
        ]);
        let b = TestCube::new(vec![
            crate::Ternary::X,
            crate::Ternary::Zero,
            crate::Ternary::X,
        ]);
        let c = TestCube::new(vec![
            crate::Ternary::Zero,
            crate::Ternary::X,
            crate::Ternary::X,
        ]);
        let merged = merge_cubes(&[a, b, c]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].to_pattern_string(), "10X");
    }
}
