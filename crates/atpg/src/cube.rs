use tpi_netlist::{Circuit, NodeId};

use crate::Ternary;

/// A deterministic test cube: a partial primary-input assignment that
/// detects a targeted fault. Unassigned inputs are don't-cares (filled
/// pseudo-randomly by BIST reseeding hardware, or left for merging).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCube {
    /// Per primary input (in [`Circuit::inputs`] order): the required
    /// value, `X` = don't-care.
    values: Vec<Ternary>,
}

impl TestCube {
    /// Wrap a per-input value vector.
    pub fn new(values: Vec<Ternary>) -> TestCube {
        TestCube { values }
    }

    /// The per-input requirements (in primary-input order).
    pub fn values(&self) -> &[Ternary] {
        &self.values
    }

    /// Number of specified (care) bits.
    pub fn care_bits(&self) -> usize {
        self.values.iter().filter(|v| v.is_binary()).count()
    }

    /// The assignment as `Option<bool>` per input (for display/tests).
    pub fn assignment(&self, circuit: &Circuit) -> Vec<Option<bool>> {
        debug_assert_eq!(self.values.len(), circuit.inputs().len());
        self.values.iter().map(|v| v.to_bool()).collect()
    }

    /// Fill don't-cares with bits drawn from `fill` (deterministic filling
    /// makes cube sets replayable).
    pub fn filled_with(&self, mut fill: impl FnMut() -> bool) -> Vec<bool> {
        self.values
            .iter()
            .map(|v| v.to_bool().unwrap_or_else(&mut fill))
            .collect()
    }

    /// Whether `other` is compatible (no opposing care bits) — the
    /// precondition for merging two cubes into one stored seed.
    pub fn compatible(&self, other: &TestCube) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| match (a.to_bool(), b.to_bool()) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merge two compatible cubes (union of care bits).
    ///
    /// # Panics
    ///
    /// Panics if the cubes are incompatible or differently sized.
    pub fn merged(&self, other: &TestCube) -> TestCube {
        assert!(self.compatible(other), "merging incompatible cubes");
        TestCube {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| if a.is_binary() { a } else { b })
                .collect(),
        }
    }

    /// Render as a `01X` string, e.g. `1X0`.
    pub fn to_pattern_string(&self) -> String {
        self.values
            .iter()
            .map(|v| match v {
                Ternary::Zero => '0',
                Ternary::One => '1',
                Ternary::X => 'X',
            })
            .collect()
    }

    /// All-don't-care cube over `n` inputs.
    pub fn all_x(n: usize) -> TestCube {
        TestCube {
            values: vec![Ternary::X; n],
        }
    }

    /// Per-input requirement by node id.
    pub fn value_for(&self, circuit: &Circuit, input: NodeId) -> Option<Ternary> {
        circuit
            .inputs()
            .iter()
            .position(|&i| i == input)
            .map(|pos| self.values[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn care_bits_and_pattern_string() {
        let c = TestCube::new(vec![Ternary::One, Ternary::X, Ternary::Zero]);
        assert_eq!(c.care_bits(), 2);
        assert_eq!(c.to_pattern_string(), "1X0");
    }

    #[test]
    fn fill_respects_cares() {
        let c = TestCube::new(vec![Ternary::One, Ternary::X, Ternary::Zero]);
        let filled = c.filled_with(|| true);
        assert_eq!(filled, vec![true, true, false]);
    }

    #[test]
    fn compatibility_and_merge() {
        let a = TestCube::new(vec![Ternary::One, Ternary::X, Ternary::X]);
        let b = TestCube::new(vec![Ternary::X, Ternary::Zero, Ternary::X]);
        let c = TestCube::new(vec![Ternary::Zero, Ternary::X, Ternary::X]);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        let merged = a.merged(&b);
        assert_eq!(merged.to_pattern_string(), "10X");
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merging_incompatible_panics() {
        let a = TestCube::new(vec![Ternary::One]);
        let b = TestCube::new(vec![Ternary::Zero]);
        let _ = a.merged(&b);
    }

    #[test]
    fn all_x_cube() {
        let c = TestCube::all_x(4);
        assert_eq!(c.care_bits(), 0);
        assert_eq!(c.to_pattern_string(), "XXXX");
    }
}
