use tpi_netlist::GateKind;

/// Three-valued logic: 0, 1 or unknown.
///
/// PODEM's circuit state is a *pair* of ternary values per line — the
/// good-machine and faulty-machine values — which encodes the classic
/// five-valued D-calculus (`D` = (1,0), `D̄` = (0,1)) plus the partially
/// assigned cases a pair encoding handles for free.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unassigned / unknown.
    X,
}

impl Ternary {
    /// Lift a boolean.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    /// The boolean, if determined.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }

    /// Whether the value is determined.
    pub fn is_binary(self) -> bool {
        self != Ternary::X
    }

    /// Three-valued complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

/// Evaluate a gate in three-valued logic.
///
/// Controlling values dominate unknowns (an AND with a 0 input is 0 even
/// if other inputs are X); otherwise any X makes the output X.
pub fn eval_ternary<I: IntoIterator<Item = Ternary>>(kind: GateKind, fanins: I) -> Ternary {
    let mut it = fanins.into_iter();
    match kind {
        GateKind::Const0 => Ternary::Zero,
        GateKind::Const1 => Ternary::One,
        GateKind::Input => Ternary::X,
        GateKind::Buf => it.next().unwrap_or(Ternary::X),
        GateKind::Not => it.next().unwrap_or(Ternary::X).not(),
        GateKind::And | GateKind::Nand => {
            let mut saw_x = false;
            let mut out = Ternary::One;
            for v in it {
                match v {
                    Ternary::Zero => {
                        out = Ternary::Zero;
                        saw_x = false;
                        break;
                    }
                    Ternary::X => saw_x = true,
                    Ternary::One => {}
                }
            }
            let out = if saw_x { Ternary::X } else { out };
            if kind == GateKind::Nand {
                out.not()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut saw_x = false;
            let mut out = Ternary::Zero;
            for v in it {
                match v {
                    Ternary::One => {
                        out = Ternary::One;
                        saw_x = false;
                        break;
                    }
                    Ternary::X => saw_x = true,
                    Ternary::Zero => {}
                }
            }
            let out = if saw_x { Ternary::X } else { out };
            if kind == GateKind::Nor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = Ternary::Zero;
            for v in it {
                acc = match (acc, v) {
                    (Ternary::X, _) | (_, Ternary::X) => Ternary::X,
                    (a, b) => Ternary::from_bool(a.to_bool().unwrap() ^ b.to_bool().unwrap()),
                };
                if acc == Ternary::X {
                    return Ternary::X; // X is absorbing for parity
                }
            }
            if kind == GateKind::Xnor {
                acc.not()
            } else {
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(
            eval_ternary(GateKind::And, [Ternary::Zero, Ternary::X]),
            Ternary::Zero
        );
        assert_eq!(
            eval_ternary(GateKind::Nand, [Ternary::Zero, Ternary::X]),
            Ternary::One
        );
        assert_eq!(
            eval_ternary(GateKind::Or, [Ternary::X, Ternary::One]),
            Ternary::One
        );
        assert_eq!(
            eval_ternary(GateKind::Nor, [Ternary::X, Ternary::One]),
            Ternary::Zero
        );
    }

    #[test]
    fn x_propagates_without_controlling_input() {
        assert_eq!(
            eval_ternary(GateKind::And, [Ternary::One, Ternary::X]),
            Ternary::X
        );
        assert_eq!(
            eval_ternary(GateKind::Or, [Ternary::Zero, Ternary::X]),
            Ternary::X
        );
        assert_eq!(
            eval_ternary(GateKind::Xor, [Ternary::One, Ternary::X]),
            Ternary::X
        );
    }

    #[test]
    fn binary_cases_match_boolean_eval() {
        use tpi_netlist::GateKind as K;
        for kind in [K::And, K::Nand, K::Or, K::Nor, K::Xor, K::Xnor] {
            for p in 0..4u8 {
                let a = p & 1 != 0;
                let b = p & 2 != 0;
                let expected = kind.eval([a, b]);
                let got = eval_ternary(kind, [Ternary::from_bool(a), Ternary::from_bool(b)]);
                assert_eq!(got.to_bool(), Some(expected), "{kind} {a} {b}");
            }
        }
    }

    #[test]
    fn unary_and_constants() {
        assert_eq!(eval_ternary(GateKind::Not, [Ternary::X]), Ternary::X);
        assert_eq!(eval_ternary(GateKind::Buf, [Ternary::One]), Ternary::One);
        assert_eq!(eval_ternary(GateKind::Const1, []), Ternary::One);
        assert_eq!(eval_ternary(GateKind::Const0, []), Ternary::Zero);
    }

    #[test]
    fn ternary_helpers() {
        assert_eq!(Ternary::from_bool(true), Ternary::One);
        assert_eq!(Ternary::One.not(), Ternary::Zero);
        assert_eq!(Ternary::X.not(), Ternary::X);
        assert!(Ternary::Zero.is_binary());
        assert!(!Ternary::X.is_binary());
        assert_eq!(Ternary::X.to_bool(), None);
    }
}
