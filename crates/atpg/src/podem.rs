use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};
use tpi_sim::{Fault, FaultSite};
use tpi_testability::ScoapAnalysis;

use crate::value::{eval_ternary, Ternary};
use crate::TestCube;

/// Tuning for [`Podem`].
#[derive(Copy, Clone, Debug)]
pub struct PodemConfig {
    /// Abort the search after this many backtracks (the result is then
    /// [`PodemResult::Aborted`], *not* a redundancy proof).
    pub max_backtracks: u64,
}

impl Default for PodemConfig {
    fn default() -> PodemConfig {
        PodemConfig {
            max_backtracks: 50_000,
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemResult {
    /// A test cube detecting the fault.
    Test(TestCube),
    /// Proven untestable (redundant fault): the decision space was
    /// exhausted.
    Untestable,
    /// Backtrack limit hit; testability undecided.
    Aborted,
}

/// The PODEM deterministic test generator.
///
/// Implements the classic algorithm: objectives are either *excite the
/// fault* or *advance the D-frontier*; each objective is backtraced to a
/// primary-input assignment (SCOAP-guided choice of path), implication is
/// full three-valued simulation of the good and faulty machines, and a
/// decision stack over PI assignments backtracks on conflicts. Exhausting
/// the stack proves redundancy.
#[derive(Clone, Debug)]
pub struct Podem {
    circuit: Circuit,
    order: Vec<NodeId>,
    scoap: ScoapAnalysis,
    config: PodemConfig,
    /// PI position by node index (usize::MAX for non-inputs).
    pi_position: Vec<usize>,
    good: Vec<Ternary>,
    faulty: Vec<Ternary>,
    /// Statistics: backtracks used by the last call.
    last_backtracks: u64,
}

impl Podem {
    /// Build a generator for `circuit` with default configuration.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<Podem, NetlistError> {
        Podem::with_config(circuit, PodemConfig::default())
    }

    /// Build with an explicit configuration.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn with_config(circuit: &Circuit, config: PodemConfig) -> Result<Podem, NetlistError> {
        let topo = Topology::of(circuit)?;
        let scoap = ScoapAnalysis::new(circuit)?;
        let mut pi_position = vec![usize::MAX; circuit.node_count()];
        for (pos, &i) in circuit.inputs().iter().enumerate() {
            pi_position[i.index()] = pos;
        }
        Ok(Podem {
            order: topo.order().to_vec(),
            scoap,
            config,
            pi_position,
            good: vec![Ternary::X; circuit.node_count()],
            faulty: vec![Ternary::X; circuit.node_count()],
            circuit: circuit.clone(),
            last_backtracks: 0,
        })
    }

    /// Backtracks consumed by the most recent
    /// [`generate`](Podem::generate) call.
    pub fn last_backtracks(&self) -> u64 {
        self.last_backtracks
    }

    /// Generate a test for `fault`.
    ///
    /// # Errors
    ///
    /// Infallible after construction today; the `Result` keeps room for
    /// richer fault models.
    pub fn generate(&mut self, fault: Fault) -> Result<PodemResult, NetlistError> {
        let n_inputs = self.circuit.inputs().len();
        let mut assignment: Vec<Ternary> = vec![Ternary::X; n_inputs];
        // (pi position, exhausted both values?)
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut backtracks = 0u64;

        loop {
            self.imply(&assignment, fault);
            if self.detected() {
                self.last_backtracks = backtracks;
                return Ok(PodemResult::Test(TestCube::new(assignment)));
            }
            let objective = self.objective(fault);
            let decision = objective.and_then(|(node, value)| self.backtrace(node, value));
            match decision {
                Some((pi, value)) => {
                    assignment[pi] = Ternary::from_bool(value);
                    stack.push((pi, false));
                }
                None => {
                    // Conflict: flip the most recent untried decision.
                    loop {
                        match stack.pop() {
                            None => {
                                self.last_backtracks = backtracks;
                                return Ok(PodemResult::Untestable);
                            }
                            Some((pi, true)) => {
                                assignment[pi] = Ternary::X;
                            }
                            Some((pi, false)) => {
                                backtracks += 1;
                                if backtracks > self.config.max_backtracks {
                                    self.last_backtracks = backtracks;
                                    return Ok(PodemResult::Aborted);
                                }
                                assignment[pi] = assignment[pi].not();
                                stack.push((pi, true));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Three-valued simulation of both machines under `assignment`.
    fn imply(&mut self, assignment: &[Ternary], fault: Fault) {
        for (pos, (&input, &v)) in self
            .circuit
            .inputs()
            .to_vec()
            .iter()
            .zip(assignment)
            .enumerate()
        {
            debug_assert_eq!(self.pi_position[input.index()], pos);
            self.good[input.index()] = v;
            self.faulty[input.index()] = v;
        }
        let order = std::mem::take(&mut self.order);
        for &id in &order {
            let node = self.circuit.node(id);
            let kind = node.kind();
            if kind != GateKind::Input {
                self.good[id.index()] =
                    eval_ternary(kind, node.fanins().iter().map(|f| self.good[f.index()]));
                let faulty_val = match fault.site {
                    FaultSite::Branch { gate, pin } if gate == id => eval_ternary(
                        kind,
                        node.fanins().iter().enumerate().map(|(p, f)| {
                            if p == pin as usize {
                                Ternary::from_bool(fault.stuck)
                            } else {
                                self.faulty[f.index()]
                            }
                        }),
                    ),
                    _ => eval_ternary(kind, node.fanins().iter().map(|f| self.faulty[f.index()])),
                };
                self.faulty[id.index()] = faulty_val;
            }
            if fault.site == FaultSite::Stem(id) {
                self.faulty[id.index()] = Ternary::from_bool(fault.stuck);
            }
        }
        self.order = order;
    }

    fn detected(&self) -> bool {
        self.circuit.outputs().iter().any(|&o| {
            let (g, f) = (self.good[o.index()], self.faulty[o.index()]);
            g.is_binary() && f.is_binary() && g != f
        })
    }

    /// The next objective `(node, good-machine target value)`, or `None`
    /// on a conflict requiring backtracking.
    fn objective(&self, fault: Fault) -> Option<(NodeId, Ternary)> {
        let excite_line = match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::Branch { gate, pin } => self.circuit.fanins(gate)[pin as usize],
        };
        let want = Ternary::from_bool(!fault.stuck);
        match self.good[excite_line.index()] {
            Ternary::X => return Some((excite_line, want)),
            v if v != want => return None, // fault can no longer be excited
            _ => {}
        }
        // Excited: advance the D-frontier gate with the best (lowest)
        // observability. A branch fault injects its stuck value at one
        // specific pin — that pin carries a D even though the driving
        // stem does not.
        let effective_faulty = |gate: NodeId, pin: usize, driver: NodeId| -> Ternary {
            if let FaultSite::Branch { gate: fg, pin: fp } = fault.site {
                if fg == gate && fp as usize == pin {
                    return Ternary::from_bool(fault.stuck);
                }
            }
            self.faulty[driver.index()]
        };
        let mut best: Option<(NodeId, u32)> = None;
        for id in self.circuit.node_ids() {
            let node = self.circuit.node(id);
            if node.kind().is_source() {
                continue;
            }
            let out_undetermined =
                self.good[id.index()] == Ternary::X || self.faulty[id.index()] == Ternary::X;
            if !out_undetermined {
                continue;
            }
            let has_d_input = node.fanins().iter().enumerate().any(|(p, &f)| {
                let g = self.good[f.index()];
                let fv = effective_faulty(id, p, f);
                g.is_binary() && fv.is_binary() && g != fv
            });
            let has_x_input = node
                .fanins()
                .iter()
                .any(|f| self.good[f.index()] == Ternary::X);
            if has_d_input && has_x_input {
                let co = self.scoap.co(id);
                if best.map(|(_, c)| co < c).unwrap_or(true) {
                    best = Some((id, co));
                }
            }
        }
        let (gate, _) = best?;
        let kind = self.circuit.kind(gate);
        // Side objective: an X input to its non-controlling value (any
        // value propagates through XOR; pick 0).
        let side_value = match kind.controlling_value() {
            Some(c) => Ternary::from_bool(!c),
            None => Ternary::Zero,
        };
        let side = self
            .circuit
            .fanins(gate)
            .iter()
            .copied()
            .find(|f| self.good[f.index()] == Ternary::X)
            .expect("frontier gates have an X input");
        Some((side, side_value))
    }

    /// Walk an objective back to an unassigned primary input, steering by
    /// SCOAP controllabilities.
    fn backtrace(&self, mut node: NodeId, mut value: Ternary) -> Option<(usize, bool)> {
        loop {
            let kind = self.circuit.kind(node);
            match kind {
                GateKind::Input => {
                    let target = value.to_bool().expect("objectives are binary");
                    return Some((self.pi_position[node.index()], target));
                }
                GateKind::Const0 | GateKind::Const1 => return None, // cannot set a constant
                _ => {}
            }
            let pre_inversion = if kind.inverts_output() {
                value.not()
            } else {
                value
            };
            let fanins = self.circuit.fanins(node);
            let x_inputs: Vec<NodeId> = fanins
                .iter()
                .copied()
                .filter(|f| self.good[f.index()] == Ternary::X)
                .collect();
            if x_inputs.is_empty() {
                return None; // objective unreachable under current values
            }
            let (next, next_val) = match kind {
                GateKind::Buf | GateKind::Not => (x_inputs[0], pre_inversion),
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let controlling = kind
                        .controlling_value()
                        .expect("AND/OR-like gates have one");
                    let want_controlling = pre_inversion == Ternary::from_bool(controlling);
                    if want_controlling {
                        // One controlling input suffices: pick the easiest.
                        let pick = x_inputs
                            .iter()
                            .copied()
                            .min_by_key(|&f| self.cc(f, controlling))
                            .expect("nonempty");
                        (pick, Ternary::from_bool(controlling))
                    } else {
                        // All inputs must be non-controlling: attack the
                        // hardest X input first (fail fast).
                        let pick = x_inputs
                            .iter()
                            .copied()
                            .max_by_key(|&f| self.cc(f, !controlling))
                            .expect("nonempty");
                        (pick, Ternary::from_bool(!controlling))
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // If only one X input remains the parity determines its
                    // value; otherwise any choice works.
                    let pick = x_inputs[0];
                    if x_inputs.len() == 1 {
                        let others = fanins
                            .iter()
                            .filter(|&&f| f != pick)
                            .map(|f| self.good[f.index()].to_bool().unwrap_or(false))
                            .fold(false, |acc, v| acc ^ v);
                        let target = pre_inversion.to_bool().expect("binary objective");
                        (pick, Ternary::from_bool(target ^ others))
                    } else {
                        (pick, Ternary::Zero)
                    }
                }
                _ => unreachable!("sources handled above"),
            };
            node = next;
            value = next_val;
        }
    }

    fn cc(&self, node: NodeId, value: bool) -> u32 {
        if value {
            self.scoap.cc1(node)
        } else {
            self.scoap.cc0(node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::CircuitBuilder;
    use tpi_sim::montecarlo;

    fn verify_cube(circuit: &Circuit, fault: Fault, cube: &TestCube) {
        // Any completion of the cube must detect the fault; check the
        // all-zeros and all-ones fills.
        for fill in [false, true] {
            let pattern = cube.filled_with(|| fill);
            let good = circuit.evaluate(&pattern).unwrap();
            // Faulty evaluation via the exhaustive reference in tpi-sim is
            // private; re-evaluate manually.
            let topo = Topology::of(circuit).unwrap();
            let mut vals = vec![false; circuit.node_count()];
            for (&i, &v) in circuit.inputs().iter().zip(&pattern) {
                vals[i.index()] = v;
            }
            for &id in topo.order() {
                let node = circuit.node(id);
                if !node.kind().is_source() {
                    let fanins: Vec<bool> = node
                        .fanins()
                        .iter()
                        .enumerate()
                        .map(|(pin, f)| {
                            if let FaultSite::Branch { gate, pin: fp } = fault.site {
                                if gate == id && fp as usize == pin {
                                    return fault.stuck;
                                }
                            }
                            vals[f.index()]
                        })
                        .collect();
                    vals[id.index()] = node.kind().eval(fanins.iter().copied());
                }
                if fault.site == FaultSite::Stem(id) {
                    vals[id.index()] = fault.stuck;
                }
            }
            let detected = circuit
                .outputs()
                .iter()
                .any(|o| vals[o.index()] != good[o.index()]);
            assert!(
                detected,
                "cube {} (fill {fill}) fails to detect {}",
                cube.to_pattern_string(),
                fault.describe(circuit)
            );
        }
    }

    #[test]
    fn generates_tests_for_every_c17_fault() {
        let c = tpi_bench_c17();
        let universe = tpi_sim::FaultUniverse::full(&c).unwrap();
        let mut podem = Podem::new(&c).unwrap();
        for &fault in universe.faults() {
            match podem.generate(fault).unwrap() {
                PodemResult::Test(cube) => verify_cube(&c, fault, &cube),
                other => panic!("{}: {other:?}", fault.describe(&c)),
            }
        }
    }

    fn tpi_bench_c17() -> Circuit {
        tpi_netlist::bench_format::parse_bench(
            "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
             OUTPUT(22)\nOUTPUT(23)\n\
             10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
             19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        )
        .unwrap()
    }

    #[test]
    fn proves_redundancy() {
        // y = OR(x, NOT(x)) ≡ 1: y/SA1 is untestable.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::Or, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let mut podem = Podem::new(&c).unwrap();
        assert_eq!(
            podem.generate(Fault::stem_sa1(y)).unwrap(),
            PodemResult::Untestable
        );
        // …while y/SA0 is trivially testable.
        assert!(matches!(
            podem.generate(Fault::stem_sa0(y)).unwrap(),
            PodemResult::Test(_)
        ));
    }

    #[test]
    fn agrees_with_exhaustive_detectability_on_random_dags() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Hand-rolled random DAGs (tpi-gen is a dev-dependency cycle risk
        // here is none, but keep the module self-contained).
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = CircuitBuilder::new("dag");
            let mut nodes: Vec<NodeId> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
            for gi in 0..12 {
                let kinds = [
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                    GateKind::Not,
                ];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let arity = if matches!(kind, GateKind::Not) { 1 } else { 2 };
                let fanins: Vec<NodeId> = (0..arity)
                    .map(|_| nodes[rng.gen_range(0..nodes.len())])
                    .collect();
                let g = b.gate(kind, fanins, format!("g{gi}")).unwrap();
                nodes.push(g);
            }
            b.output(*nodes.last().unwrap());
            let c = b.finish().unwrap();
            let universe = tpi_sim::FaultUniverse::full(&c).unwrap();
            let probs = montecarlo::exact_detection_probabilities(&c, universe.faults()).unwrap();
            let mut podem = Podem::new(&c).unwrap();
            for (i, &fault) in universe.faults().iter().enumerate() {
                let result = podem.generate(fault).unwrap();
                match result {
                    PodemResult::Test(cube) => {
                        assert!(
                            probs[i] > 0.0,
                            "PODEM found a test for undetectable {} (seed {seed})",
                            fault.describe(&c)
                        );
                        verify_cube(&c, fault, &cube);
                    }
                    PodemResult::Untestable => {
                        assert_eq!(
                            probs[i],
                            0.0,
                            "PODEM called detectable fault {} redundant (seed {seed})",
                            fault.describe(&c)
                        );
                    }
                    PodemResult::Aborted => panic!("abort on tiny circuit (seed {seed})"),
                }
            }
        }
    }

    #[test]
    fn respects_backtrack_limit() {
        // y = AND(p, NOT(p)) ≡ 0 behind a wide XOR cone: y/SA0 needs
        // good(y) = 1, which is impossible — proving it exhausts the
        // space, so a tiny limit must abort rather than hang.
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(10, "x");
        let p = b.balanced_tree(GateKind::Xor, &xs, "p").unwrap();
        let np = b.gate(GateKind::Not, vec![p], "np").unwrap();
        let y = b.gate(GateKind::And, vec![p, np], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let mut podem = Podem::with_config(&c, PodemConfig { max_backtracks: 3 }).unwrap();
        let r = podem.generate(Fault::stem_sa0(y)).unwrap();
        assert_eq!(r, PodemResult::Aborted);
        assert!(podem.last_backtracks() >= 3);
        // With the default budget the same fault is *proven* redundant.
        let mut full = Podem::new(&c).unwrap();
        assert_eq!(
            full.generate(Fault::stem_sa0(y)).unwrap(),
            PodemResult::Untestable
        );
        // The constant-0 line's SA1 is conversely detected by any pattern.
        assert!(matches!(
            full.generate(Fault::stem_sa1(y)).unwrap(),
            PodemResult::Test(_)
        ));
    }

    #[test]
    fn branch_fault_cube() {
        // a fans out to two AND gates; the branch fault needs the specific
        // side input high.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let fault = Fault {
            site: FaultSite::Branch { gate: g1, pin: 0 },
            stuck: true,
        };
        let mut podem = Podem::new(&c).unwrap();
        match podem.generate(fault).unwrap() {
            PodemResult::Test(cube) => {
                verify_cube(&c, fault, &cube);
                // Must set a=0 and x=1.
                assert_eq!(cube.value_for(&c, a), Some(Ternary::Zero));
                assert_eq!(cube.value_for(&c, x), Some(Ternary::One));
            }
            other => panic!("{other:?}"),
        }
    }
}
