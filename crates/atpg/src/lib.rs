//! Deterministic test pattern generation (PODEM) for single stuck-at
//! faults.
//!
//! The DAC'87-era TPI flow brackets random-pattern analysis with
//! deterministic ATPG twice: **before** insertion, redundant
//! (untestable) faults are removed from the target list — no test point
//! can help them — and **after** insertion, the few remaining hard faults
//! can be topped off with stored deterministic cubes (the reseeding
//! strategy). This crate supplies both:
//!
//! * [`Podem`] — a classic PODEM implementation over the dual-ternary
//!   (good, faulty) value encoding, with SCOAP-guided backtrace and a
//!   configurable backtrack limit. Returns a [`TestCube`], a proof of
//!   untestability, or an abort;
//! * [`redundancy`] — sweep a fault list into testable / redundant /
//!   aborted classes;
//! * [`topoff`] — generate a compact cube set covering a fault list, with
//!   fault-simulation-based dropping (the "how many seeds" question).
//!
//! # Example
//!
//! ```
//! use tpi_netlist::bench_format::parse_bench;
//! use tpi_sim::Fault;
//! use tpi_atpg::{Podem, PodemResult};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
//! let y = c.outputs()[0];
//! let mut podem = Podem::new(&c)?;
//! match podem.generate(Fault::stem_sa0(y))? {
//!     PodemResult::Test(cube) => {
//!         // SA0 at the AND output needs both inputs at 1.
//!         assert_eq!(cube.assignment(&c), vec![Some(true), Some(true)]);
//!     }
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod podem;
pub mod redundancy;
pub mod topoff;
mod value;

pub use cube::TestCube;
pub use podem::{Podem, PodemConfig, PodemResult};
pub use value::Ternary;
