//! Multi-threaded fault simulation.
//!
//! Fault simulation parallelises naturally across faults: every thread
//! owns a private simulator (good-value buffers and scratch state) and an
//! identical pattern stream, and processes its own share of the fault
//! list. Per-fault results don't depend on which other faults share a
//! simulator, so results are bit-identical to the sequential run for any
//! partition — which frees the partitioner to load-balance: faults are
//! dealt out round-robin in descending estimated propagation cost, so no
//! single thread draws all the deep-cone stems.

use std::cmp::Reverse;
use std::sync::Mutex;

use tpi_netlist::{Circuit, NetlistError, Topology};

use crate::{
    ControlledRun, Fault, FaultSimResult, FaultSimulator, FaultSite, PatternSource, RunControl,
    SimOptions, StopReason,
};

/// Fault-simulate `faults` across `threads` worker threads, with fault
/// dropping, producing the same [`FaultSimResult`] the sequential
/// [`FaultSimulator::run`] would (each thread replays the same seeded
/// pattern stream) at the default block width.
///
/// `make_source` is called once per thread and must yield identical
/// streams (e.g. closures constructing a seeded
/// [`RandomPatterns`](crate::RandomPatterns)).
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
pub fn run_parallel<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_opts(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        SimOptions::default(),
    )
}

/// [`run_parallel`] with an explicit block width (words per pass; see
/// [`FaultSimulator::with_block_words`]).
///
/// Every worker replays its pattern stream through a simulator of the
/// same width, so the per-block tail masking against `max_patterns` is
/// applied identically in every chunk — first detections,
/// `patterns_applied` and coverage match the sequential run bit for bit
/// at any width and thread count, including when `max_patterns` is not
/// a multiple of `block_words × 64`.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `block_words` is not 1, 2, 4 or 8.
pub fn run_parallel_with<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    block_words: usize,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_opts(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        SimOptions::with_block_words(block_words),
    )
}

/// [`run_parallel`] with explicit [`SimOptions`] (block width and
/// detection mode).
///
/// Every worker replays its pattern stream through a simulator of the
/// same configuration, so the per-block tail masking against
/// `max_patterns` is applied identically in every chunk — first
/// detections, `patterns_applied` and coverage match the sequential run
/// bit for bit at any width, detection mode and thread count, including
/// when `max_patterns` is not a multiple of `block_words × 64`.
///
/// Faults are assigned to workers round-robin in descending estimated
/// propagation cost (a saturating over-count of the fault site's
/// transitive consumer cone), which balances deep-cone stems across
/// threads; the assignment never affects results, only wall-clock.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `options.block_words` is not 0 (default), 1, 2, 4 or 8.
pub fn run_parallel_opts<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_controlled(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        options,
        &RunControl::unlimited(),
    )
    .map(|run| run.result)
}

/// [`run_parallel_opts`] under a [`RunControl`] token: every worker
/// polls a clone of the token once per pattern block (see
/// [`FaultSimulator::run_controlled`]) and exits cooperatively, so a
/// cancelled or expired run releases all its threads within one block.
///
/// An interrupted parallel result is *best-effort*: workers may stop at
/// different pattern counts, so the merged detections are not
/// bit-identical to an interrupted sequential run (completed runs still
/// are). The merged [`StopReason`] is the first interrupted worker's in
/// worker order. Determinism-sensitive callers should interrupt only
/// between runs, or run single-threaded with a work budget.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `options.block_words` is not 0 (default), 1, 2, 4 or 8.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_controlled<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
    control: &RunControl,
) -> Result<ControlledRun, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    let threads = threads.max(1).min(faults.len().max(1));
    if threads <= 1 {
        let mut sim = FaultSimulator::with_options(circuit, options)?;
        let mut source = make_source();
        return sim.run_controlled(&mut source, max_patterns, faults, control);
    }
    let assignment = balanced_assignment(circuit, faults, threads)?;
    let worker_faults: Vec<Vec<Fault>> = assignment
        .iter()
        .map(|idxs| idxs.iter().map(|&i| faults[i]).collect())
        .collect();
    let results: Mutex<Vec<(usize, ControlledRun)>> = Mutex::new(Vec::with_capacity(threads));
    // The *first* worker error in worker order wins, independent of thread
    // scheduling — a last-writer slot would make the reported error (and
    // thus caller behaviour) nondeterministic when several workers fail.
    let first_error: Mutex<Option<(usize, NetlistError)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (ti, chunk) in worker_faults.iter().enumerate() {
            let results = &results;
            let first_error = &first_error;
            let make_source = &make_source;
            let control = control.clone();
            scope.spawn(move || {
                let outcome = (|| {
                    let mut sim = FaultSimulator::with_options(circuit, options)?;
                    let mut source = make_source();
                    sim.run_controlled(&mut source, max_patterns, chunk, &control)
                })();
                match outcome {
                    Ok(r) => results.lock().expect("no poisoned locks").push((ti, r)),
                    Err(e) => {
                        let mut slot = first_error.lock().expect("no poisoned locks");
                        if slot.as_ref().is_none_or(|(held, _)| ti < *held) {
                            *slot = Some((ti, e));
                        }
                    }
                }
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().expect("no poisoned locks") {
        return Err(e);
    }
    let mut chunks = results.into_inner().expect("no poisoned locks");
    chunks.sort_by_key(|&(ti, _)| ti);
    let mut first_detected = vec![None; faults.len()];
    let mut patterns_applied = 0;
    let mut stopped: Option<StopReason> = None;
    let mut counters = crate::SimCounters::default();
    for (ti, r) in chunks {
        patterns_applied = patterns_applied.max(r.result.patterns_applied());
        stopped = stopped.or(r.stopped);
        counters.merge(&r.counters);
        for (pos, &orig) in assignment[ti].iter().enumerate() {
            first_detected[orig] = r.result.first_detection(pos);
        }
    }
    Ok(ControlledRun {
        result: FaultSimResult::new(first_detected, patterns_applied),
        stopped,
        counters,
    })
}

/// Deal fault indices onto `threads` workers, round-robin in descending
/// estimated propagation cost so the expensive deep-cone faults spread
/// evenly. The estimate is a reverse-topological saturating sum over
/// consumer gates — it over-counts reconvergent cones, but stays monotone
/// with cone depth, which is all a load heuristic needs.
fn balanced_assignment(
    circuit: &Circuit,
    faults: &[Fault],
    threads: usize,
) -> Result<Vec<Vec<usize>>, NetlistError> {
    let topo = Topology::of(circuit)?;
    let mut cone_cost = vec![1u64; circuit.node_count()];
    for &id in topo.order().iter().rev() {
        let mut cost = 1u64;
        for fo in topo.fanouts(id) {
            cost = cost.saturating_add(cone_cost[fo.gate.index()]);
        }
        cone_cost[id.index()] = cost;
    }
    let mut order: Vec<usize> = (0..faults.len()).collect();
    order.sort_by_key(|&i| {
        let anchor = match faults[i].site {
            FaultSite::Stem(v) => v,
            FaultSite::Branch { gate, .. } => gate,
        };
        (Reverse(cone_cost[anchor.index()]), i)
    });
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (k, &i) in order.iter().enumerate() {
        assignment[k % threads].push(i);
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let xs = b.inputs(10, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..5], "a").unwrap();
        let o = b.balanced_tree(GateKind::Or, &xs[5..], "o").unwrap();
        let y = b.gate(GateKind::Xor, vec![a, o], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn matches_sequential_exactly() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(10, 77);
        let sequential = sim.run(&mut src, 700, universe.faults()).unwrap();

        for threads in [1usize, 2, 3, 7, 8] {
            let parallel = run_parallel(
                &c,
                || RandomPatterns::new(10, 77),
                700,
                universe.faults(),
                threads,
            )
            .unwrap();
            assert_eq!(parallel.fault_count(), sequential.fault_count());
            assert_eq!(parallel.patterns_applied(), sequential.patterns_applied());
            for i in 0..universe.len() {
                assert_eq!(
                    parallel.first_detection(i),
                    sequential.first_detection(i),
                    "fault {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tail_masking_is_identical_across_threads_and_widths() {
        // 300 patterns is not a multiple of 64, 128, 256 or 512: every
        // width ends on a partially-masked block, and every worker must
        // mask its replayed source the same way the sequential run does.
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(10, 13);
        let sequential = sim.run(&mut src, 300, universe.faults()).unwrap();

        for threads in [1usize, 3, 8] {
            for block_words in [1usize, 2, 4, 8] {
                let parallel = run_parallel_with(
                    &c,
                    || RandomPatterns::new(10, 13),
                    300,
                    universe.faults(),
                    threads,
                    block_words,
                )
                .unwrap();
                assert_eq!(
                    parallel.patterns_applied(),
                    sequential.patterns_applied(),
                    "threads={threads} w={block_words}"
                );
                for i in 0..universe.len() {
                    assert_eq!(
                        parallel.first_detection(i),
                        sequential.first_detection(i),
                        "fault {i} threads={threads} w={block_words}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_delegates() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 256, universe.faults(), 1).unwrap();
        assert_eq!(r.fault_count(), universe.len());
    }

    #[test]
    fn more_threads_than_faults() {
        let c = sample();
        let faults = [crate::Fault::stem_sa0(c.outputs()[0])];
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 256, &faults, 64).unwrap();
        assert_eq!(r.fault_count(), 1);
    }

    #[test]
    fn cancelled_token_stops_all_workers_before_any_block() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let control = RunControl::cancellable();
        control.cancel();
        let run = run_parallel_controlled(
            &c,
            || RandomPatterns::new(10, 5),
            1 << 30,
            universe.faults(),
            4,
            SimOptions::default(),
            &control,
        )
        .unwrap();
        assert_eq!(run.stopped, Some(StopReason::Cancelled));
        assert_eq!(run.result.patterns_applied(), 0);
    }

    #[test]
    fn budget_interruption_is_deterministic_single_threaded() {
        // A 16-input AND keeps its output-sa1 fault (p = 2^-16 per random
        // pattern) almost surely alive past the 300-pattern budget, so the
        // run stops on the budget rather than on full coverage.
        let c = {
            let mut b = CircuitBuilder::new("hard");
            let xs = b.inputs(16, "x");
            let y = b.balanced_tree(GateKind::And, &xs, "y").unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let run_once = || {
            let control = RunControl::with_budget(300);
            let mut sim = FaultSimulator::with_block_words(&c, 1).unwrap();
            let mut src = RandomPatterns::new(16, 7);
            sim.run_controlled(&mut src, 1 << 20, universe.faults(), &control)
                .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.stopped, Some(StopReason::BudgetExhausted));
        assert_eq!(a.stopped, b.stopped);
        assert_eq!(a.result.patterns_applied(), b.result.patterns_applied());
        for i in 0..universe.len() {
            assert_eq!(a.result.first_detection(i), b.result.first_detection(i));
        }
    }

    #[test]
    fn empty_fault_list() {
        let c = sample();
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 64, &[], 4).unwrap();
        assert_eq!(r.fault_count(), 0);
        assert_eq!(r.coverage(), 1.0);
    }
}
