//! Multi-threaded fault simulation.
//!
//! Fault simulation parallelises naturally across faults: every thread
//! owns a private simulator (good-value buffers and scratch state) and an
//! identical pattern stream, and processes its own share of the fault
//! list. Per-fault results don't depend on which other faults share a
//! simulator, so results are bit-identical to the sequential run for any
//! partition — which frees the scheduler entirely: partitioning affects
//! wall-clock only, never results.
//!
//! The default scheduler is *work-stealing*: the fault list is split
//! into work units — fanout-free-region buckets coalesced to a few
//! units per worker, dealt in descending estimated propagation cost —
//! and each worker drains its own deque from the front, stealing from
//! the back of a neighbour's when it runs dry. A static deal can only
//! balance the cost *estimate*; stealing rebalances the actual runtime
//! skew (one hard-to-drop fault can pin a worker for the whole pattern
//! budget while its siblings drop in the first block). Grouping by FFR
//! keeps faults that collapse onto the same stem in one unit, where
//! they share the per-block stem-observability memo instead of
//! recomputing it per worker. The legacy static round-robin scheduler
//! is retained as [`run_parallel_round_robin`] for comparison.

use std::cmp::Reverse;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tpi_netlist::ffr::FfrDecomposition;
use tpi_netlist::{Circuit, NetlistError, Topology};

use crate::{
    ControlledRun, Fault, FaultSimResult, FaultSimulator, FaultSite, PatternSource, RunControl,
    SimOptions, StopReason,
};

/// Fault-simulate `faults` across `threads` worker threads, with fault
/// dropping, producing the same [`FaultSimResult`] the sequential
/// [`FaultSimulator::run`] would (each thread replays the same seeded
/// pattern stream) at the default block width.
///
/// `make_source` is called once per thread and must yield identical
/// streams (e.g. closures constructing a seeded
/// [`RandomPatterns`](crate::RandomPatterns)).
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
pub fn run_parallel<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_opts(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        SimOptions::default(),
    )
}

/// [`run_parallel`] with an explicit block width (words per pass; see
/// [`FaultSimulator::with_block_words`]).
///
/// Every worker replays its pattern stream through a simulator of the
/// same width, so the per-block tail masking against `max_patterns` is
/// applied identically in every chunk — first detections,
/// `patterns_applied` and coverage match the sequential run bit for bit
/// at any width and thread count, including when `max_patterns` is not
/// a multiple of `block_words × 64`.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `block_words` is not 1, 2, 4 or 8.
pub fn run_parallel_with<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    block_words: usize,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_opts(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        SimOptions::with_block_words(block_words),
    )
}

/// [`run_parallel`] with explicit [`SimOptions`] (block width and
/// detection mode).
///
/// Every worker replays its pattern stream through a simulator of the
/// same configuration, so the per-block tail masking against
/// `max_patterns` is applied identically in every chunk — first
/// detections, `patterns_applied` and coverage match the sequential run
/// bit for bit at any width, detection mode and thread count, including
/// when `max_patterns` is not a multiple of `block_words × 64`.
///
/// Faults are grouped into work units by fanout-free region, coalesced
/// in descending estimated propagation cost (a saturating over-count of
/// the fault site's transitive consumer cone) and scheduled by work
/// stealing (see the module docs); the schedule never affects results,
/// only wall-clock.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `options.block_words` is not 0 (default), 1, 2, 4 or 8.
pub fn run_parallel_opts<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    run_parallel_controlled(
        circuit,
        make_source,
        max_patterns,
        faults,
        threads,
        options,
        &RunControl::unlimited(),
    )
    .map(|run| run.result)
}

/// [`run_parallel_opts`] under the legacy *static* scheduler: one fault
/// chunk per worker, dealt round-robin in descending estimated cone
/// cost, no stealing. Retained so benchmarks can A/B the schedulers —
/// results are bit-identical to [`run_parallel_opts`] (partitioning is
/// result-invariant, see the module docs); only the load balance
/// differs.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `options.block_words` is not 0 (default), 1, 2, 4 or 8.
pub fn run_parallel_round_robin<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
) -> Result<FaultSimResult, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    let threads = threads.max(1).min(faults.len().max(1));
    if threads <= 1 {
        let mut sim = FaultSimulator::with_options(circuit, options)?;
        let mut source = make_source();
        return sim.run(&mut source, max_patterns, faults);
    }
    let units = static_assignment(circuit, faults, threads)?;
    run_units(
        circuit,
        &make_source,
        max_patterns,
        faults,
        threads,
        options,
        &RunControl::unlimited(),
        units,
        false,
    )
    .map(|run| run.result)
}

/// [`run_parallel_opts`] under a [`RunControl`] token: every worker
/// polls a clone of the token once per pattern block (see
/// [`FaultSimulator::run_controlled`]) and exits cooperatively, so a
/// cancelled or expired run releases all its threads within one block.
///
/// An interrupted parallel result is *best-effort*: work units may stop
/// at different pattern counts, so the merged detections are not
/// bit-identical to an interrupted sequential run (completed runs still
/// are). The merged [`StopReason`] is the lowest-numbered interrupted
/// unit's. Determinism-sensitive callers should interrupt only between
/// runs, or run single-threaded with a work budget.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits; worker panics propagate.
///
/// # Panics
///
/// Panics if `options.block_words` is not 0 (default), 1, 2, 4 or 8.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_controlled<S, F>(
    circuit: &Circuit,
    make_source: F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
    control: &RunControl,
) -> Result<ControlledRun, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    let threads = threads.max(1).min(faults.len().max(1));
    if threads <= 1 {
        let mut sim = FaultSimulator::with_options(circuit, options)?;
        let mut source = make_source();
        return sim.run_controlled(&mut source, max_patterns, faults, control);
    }
    let units = steal_units(circuit, faults, threads)?;
    run_units(
        circuit,
        &make_source,
        max_patterns,
        faults,
        threads,
        options,
        control,
        units,
        true,
    )
}

/// Work units a worker grabs per steal-scheduler fill, as a multiple of
/// the thread count. More units mean finer rebalancing but more pattern
/// replays (every unit replays the stream through its own run), so the
/// factor stays small.
const UNITS_PER_THREAD: usize = 4;

/// Execute pre-partitioned `units` (fault-index lists) across `threads`
/// workers and merge the per-unit runs. With `steal`, units live in
/// per-worker deques: a worker pops its own from the front and steals
/// from the back of the next non-empty neighbour when it runs dry.
/// Without it, every worker simply drains its own initial deal — the
/// legacy static schedule.
///
/// The merge is performed in unit-index order, so everything the caller
/// observes (results, stop reason, kernel counters) is independent of
/// which worker ran which unit; only the scheduling counters
/// (`steals` / `steal_misses`) record actual thread timing.
#[allow(clippy::too_many_arguments)]
fn run_units<S, F>(
    circuit: &Circuit,
    make_source: &F,
    max_patterns: u64,
    faults: &[Fault],
    threads: usize,
    options: SimOptions,
    control: &RunControl,
    units: Vec<Vec<usize>>,
    steal: bool,
) -> Result<ControlledRun, NetlistError>
where
    S: PatternSource,
    F: Fn() -> S + Sync,
{
    let unit_faults: Vec<Vec<Fault>> = units
        .iter()
        .map(|idxs| idxs.iter().map(|&i| faults[i]).collect())
        .collect();
    // Deal unit ids onto the worker deques round-robin: units are already
    // sorted by descending cost, so worker k starts on the k-th most
    // expensive unit and the stealing (from the back — the cheap end)
    // evens out whatever the estimate got wrong.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|ti| {
            Mutex::new(
                (0..unit_faults.len())
                    .filter(|u| u % threads == ti)
                    .collect(),
            )
        })
        .collect();
    let results: Mutex<Vec<(usize, ControlledRun)>> =
        Mutex::new(Vec::with_capacity(unit_faults.len()));
    // The error for the *lowest-numbered* unit wins, independent of
    // thread scheduling — a last-writer slot would make the reported
    // error (and thus caller behaviour) nondeterministic when several
    // units fail.
    let first_error: Mutex<Option<(usize, NetlistError)>> = Mutex::new(None);
    let steals = AtomicU64::new(0);
    let steal_misses = AtomicU64::new(0);

    let record_error = |unit: usize, e: NetlistError| {
        let mut slot = first_error.lock().expect("no poisoned locks");
        if slot.as_ref().is_none_or(|(held, _)| unit < *held) {
            *slot = Some((unit, e));
        }
    };

    std::thread::scope(|scope| {
        for ti in 0..threads {
            let queues = &queues;
            let unit_faults = &unit_faults;
            let results = &results;
            let steals = &steals;
            let steal_misses = &steal_misses;
            let record_error = &record_error;
            let control = control.clone();
            scope.spawn(move || {
                let mut sim = match FaultSimulator::with_options(circuit, options) {
                    Ok(sim) => sim,
                    Err(e) => {
                        // Construction depends only on (circuit, options),
                        // so every worker fails identically; unit 0 keys
                        // the slot deterministically.
                        record_error(0, e);
                        return;
                    }
                };
                loop {
                    let mut unit = queues[ti].lock().expect("no poisoned locks").pop_front();
                    if unit.is_none() && steal {
                        for off in 1..threads {
                            let victim = (ti + off) % threads;
                            unit = queues[victim].lock().expect("no poisoned locks").pop_back();
                            if unit.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                        if unit.is_none() {
                            steal_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let Some(u) = unit else { break };
                    let mut source = make_source();
                    match sim.run_controlled(&mut source, max_patterns, &unit_faults[u], &control) {
                        Ok(r) => results.lock().expect("no poisoned locks").push((u, r)),
                        Err(e) => record_error(u, e),
                    }
                }
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().expect("no poisoned locks") {
        return Err(e);
    }
    let mut chunks = results.into_inner().expect("no poisoned locks");
    chunks.sort_by_key(|&(u, _)| u);
    let mut first_detected = vec![None; faults.len()];
    let mut patterns_applied = 0;
    let mut stopped: Option<StopReason> = None;
    let mut counters = crate::SimCounters::default();
    for (u, r) in chunks {
        patterns_applied = patterns_applied.max(r.result.patterns_applied());
        stopped = stopped.or(r.stopped);
        counters.merge(&r.counters);
        for (pos, &orig) in units[u].iter().enumerate() {
            first_detected[orig] = r.result.first_detection(pos);
        }
    }
    counters.steals = steals.into_inner();
    counters.steal_misses = steal_misses.into_inner();
    Ok(ControlledRun {
        result: FaultSimResult::new(first_detected, patterns_applied),
        stopped,
        counters,
    })
}

/// Estimated propagation cost per node: a reverse-topological saturating
/// sum over consumer gates. It over-counts reconvergent cones, but stays
/// monotone with cone depth, which is all a load heuristic needs.
fn cone_costs(circuit: &Circuit, topo: &Topology) -> Vec<u64> {
    let mut cone_cost = vec![1u64; circuit.node_count()];
    for &id in topo.order().iter().rev() {
        let mut cost = 1u64;
        for fo in topo.fanouts(id) {
            cost = cost.saturating_add(cone_cost[fo.gate.index()]);
        }
        cone_cost[id.index()] = cost;
    }
    cone_cost
}

/// The anchor node whose cone a fault propagates through.
fn fault_anchor(fault: &Fault) -> tpi_netlist::NodeId {
    match fault.site {
        FaultSite::Stem(v) => v,
        FaultSite::Branch { gate, .. } => gate,
    }
}

/// Build the work units for the stealing scheduler: fault indices
/// grouped by the fanout-free region of their anchor (faults collapsing
/// onto one stem share that unit's per-block observability memo),
/// groups sorted by descending estimated cost, then dealt round-robin
/// onto `threads * UNITS_PER_THREAD` units so each unit draws a spread
/// of expensive and cheap regions.
fn steal_units(
    circuit: &Circuit,
    faults: &[Fault],
    threads: usize,
) -> Result<Vec<Vec<usize>>, NetlistError> {
    let topo = Topology::of(circuit)?;
    let cone_cost = cone_costs(circuit, &topo);
    let ffr = FfrDecomposition::of(circuit, &topo);
    // Group fault indices by FFR root, preserving fault order within a
    // group (groups keyed by first appearance, then sorted by cost).
    let mut group_of_root = vec![usize::MAX; circuit.node_count()];
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, fault) in faults.iter().enumerate() {
        let anchor = fault_anchor(fault);
        let root = ffr.root_of(anchor).index();
        if group_of_root[root] == usize::MAX {
            group_of_root[root] = groups.len();
            groups.push((0, Vec::new()));
        }
        let g = &mut groups[group_of_root[root]];
        g.0 = g.0.max(cone_cost[anchor.index()]);
        g.1.push(i);
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| (Reverse(groups[g].0), g));
    let unit_count = (threads * UNITS_PER_THREAD).min(groups.len()).max(1);
    let mut units: Vec<Vec<usize>> = vec![Vec::new(); unit_count];
    for (k, &g) in order.iter().enumerate() {
        units[k % unit_count].extend_from_slice(&groups[g].1);
    }
    Ok(units)
}

/// Deal fault indices onto one chunk per worker, round-robin in
/// descending estimated propagation cost — the legacy static schedule
/// behind [`run_parallel_round_robin`].
fn static_assignment(
    circuit: &Circuit,
    faults: &[Fault],
    threads: usize,
) -> Result<Vec<Vec<usize>>, NetlistError> {
    let topo = Topology::of(circuit)?;
    let cone_cost = cone_costs(circuit, &topo);
    let mut order: Vec<usize> = (0..faults.len()).collect();
    order.sort_by_key(|&i| (Reverse(cone_cost[fault_anchor(&faults[i]).index()]), i));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (k, &i) in order.iter().enumerate() {
        assignment[k % threads].push(i);
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let xs = b.inputs(10, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..5], "a").unwrap();
        let o = b.balanced_tree(GateKind::Or, &xs[5..], "o").unwrap();
        let y = b.gate(GateKind::Xor, vec![a, o], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn matches_sequential_exactly() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(10, 77);
        let sequential = sim.run(&mut src, 700, universe.faults()).unwrap();

        for threads in [1usize, 2, 3, 7, 8] {
            let parallel = run_parallel(
                &c,
                || RandomPatterns::new(10, 77),
                700,
                universe.faults(),
                threads,
            )
            .unwrap();
            assert_eq!(parallel.fault_count(), sequential.fault_count());
            assert_eq!(parallel.patterns_applied(), sequential.patterns_applied());
            for i in 0..universe.len() {
                assert_eq!(
                    parallel.first_detection(i),
                    sequential.first_detection(i),
                    "fault {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tail_masking_is_identical_across_threads_and_widths() {
        // 300 patterns is not a multiple of 64, 128, 256 or 512: every
        // width ends on a partially-masked block, and every worker must
        // mask its replayed source the same way the sequential run does.
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(10, 13);
        let sequential = sim.run(&mut src, 300, universe.faults()).unwrap();

        for threads in [1usize, 3, 8] {
            for block_words in [1usize, 2, 4, 8] {
                let parallel = run_parallel_with(
                    &c,
                    || RandomPatterns::new(10, 13),
                    300,
                    universe.faults(),
                    threads,
                    block_words,
                )
                .unwrap();
                assert_eq!(
                    parallel.patterns_applied(),
                    sequential.patterns_applied(),
                    "threads={threads} w={block_words}"
                );
                for i in 0..universe.len() {
                    assert_eq!(
                        parallel.first_detection(i),
                        sequential.first_detection(i),
                        "fault {i} threads={threads} w={block_words}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_delegates() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 256, universe.faults(), 1).unwrap();
        assert_eq!(r.fault_count(), universe.len());
    }

    #[test]
    fn more_threads_than_faults() {
        let c = sample();
        let faults = [crate::Fault::stem_sa0(c.outputs()[0])];
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 256, &faults, 64).unwrap();
        assert_eq!(r.fault_count(), 1);
    }

    #[test]
    fn cancelled_token_stops_all_workers_before_any_block() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let control = RunControl::cancellable();
        control.cancel();
        let run = run_parallel_controlled(
            &c,
            || RandomPatterns::new(10, 5),
            1 << 30,
            universe.faults(),
            4,
            SimOptions::default(),
            &control,
        )
        .unwrap();
        assert_eq!(run.stopped, Some(StopReason::Cancelled));
        assert_eq!(run.result.patterns_applied(), 0);
    }

    #[test]
    fn budget_interruption_is_deterministic_single_threaded() {
        // A 16-input AND keeps its output-sa1 fault (p = 2^-16 per random
        // pattern) almost surely alive past the 300-pattern budget, so the
        // run stops on the budget rather than on full coverage.
        let c = {
            let mut b = CircuitBuilder::new("hard");
            let xs = b.inputs(16, "x");
            let y = b.balanced_tree(GateKind::And, &xs, "y").unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let run_once = || {
            let control = RunControl::with_budget(300);
            let mut sim = FaultSimulator::with_block_words(&c, 1).unwrap();
            let mut src = RandomPatterns::new(16, 7);
            sim.run_controlled(&mut src, 1 << 20, universe.faults(), &control)
                .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.stopped, Some(StopReason::BudgetExhausted));
        assert_eq!(a.stopped, b.stopped);
        assert_eq!(a.result.patterns_applied(), b.result.patterns_applied());
        for i in 0..universe.len() {
            assert_eq!(a.result.first_detection(i), b.result.first_detection(i));
        }
    }

    #[test]
    fn empty_fault_list() {
        let c = sample();
        let r = run_parallel(&c, || RandomPatterns::new(10, 5), 64, &[], 4).unwrap();
        assert_eq!(r.fault_count(), 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn round_robin_scheduler_matches_stealing() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        for threads in [2usize, 4, 8] {
            let stealing = run_parallel(
                &c,
                || RandomPatterns::new(10, 42),
                700,
                universe.faults(),
                threads,
            )
            .unwrap();
            let rr = run_parallel_round_robin(
                &c,
                || RandomPatterns::new(10, 42),
                700,
                universe.faults(),
                threads,
                SimOptions::default(),
            )
            .unwrap();
            assert_eq!(rr.patterns_applied(), stealing.patterns_applied());
            for i in 0..universe.len() {
                assert_eq!(
                    rr.first_detection(i),
                    stealing.first_detection(i),
                    "fault {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn sequential_runs_never_steal() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let run = run_parallel_controlled(
            &c,
            || RandomPatterns::new(10, 5),
            256,
            universe.faults(),
            1,
            SimOptions::default(),
            &RunControl::unlimited(),
        )
        .unwrap();
        assert_eq!(run.counters.steals, 0);
        assert_eq!(run.counters.steal_misses, 0);
    }

    #[test]
    fn dropped_count_is_schedule_invariant() {
        // `faults_dropped` counts each fault at most once, in whichever
        // unit owns it — so the merged total equals the sequential one
        // for any partition and any steal order.
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(10, 21);
        let _ = sim.run(&mut src, 700, universe.faults()).unwrap();
        let sequential_dropped = sim.counters().faults_dropped;
        for threads in [2usize, 4] {
            let run = run_parallel_controlled(
                &c,
                || RandomPatterns::new(10, 21),
                700,
                universe.faults(),
                threads,
                SimOptions::default(),
                &RunControl::unlimited(),
            )
            .unwrap();
            assert_eq!(
                run.counters.faults_dropped, sequential_dropped,
                "{threads} threads"
            );
        }
    }
}
