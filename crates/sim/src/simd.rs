//! Runtime-dispatched SIMD backends for the compiled simulation kernels.
//!
//! This is the **only** module in the workspace (besides the server's
//! two-line signal handler) allowed to contain `unsafe` code, and every
//! unsafe block in it is one of exactly two shapes:
//!
//! 1. a call to an `#[target_feature]` function, guarded by the runtime
//!    CPU-feature check that [`SimdBackend::resolve`] performed before
//!    the backend value could exist, and
//! 2. an unaligned vector load/store through a pointer derived from a
//!    slice whose length was asserted against the program's node limit
//!    at kernel entry (every operand index in a compiled [`Program`] is
//!    `< node_limit` by construction — see `Program::compile`).
//!
//! Two lowering strategies are used, matching how each kernel is shaped:
//!
//! * **Hand-written intrinsics** for [`Program`]'s gate-evaluation sweep
//!   (`execute`): the W=4 slot is exactly one `__m256i` (AVX2) and the
//!   W=8 slot one `__m512i` (AVX-512F) / two `__m256i` (AVX2), so each
//!   gate becomes a fixed handful of unaligned loads, one bitwise op and
//!   one store — no lane loops left for the autovectoriser to guess at.
//! * **Feature recompilation** for the CPT sensitization sweep: the
//!   scalar generic kernel ([`compile::sens_sweep`]) is `#[inline
//!   (always)]` and re-instantiated inside `#[target_feature]` wrappers,
//!   so LLVM compiles the very same safe code with 256/512-bit registers
//!   available. The scalar instantiation stays the oracle: both paths
//!   run the identical algorithm, so results are bit-identical by
//!   construction and cross-checked by `tests/prop_simd_identity.rs`.
//!
//! The scalar kernels remain the always-available fallback: every
//! dispatch function degrades to them for unsupported widths (W < 4
//! gains nothing from vectors) and on non-x86_64 targets the resolver
//! only ever yields [`SimdBackend::Scalar`].
#![allow(unsafe_code)]

use crate::compile::{self, Program};

/// A *requested* SIMD backend (CLI `--simd-backend`,
/// [`SimOptions::backend`](crate::SimOptions)). Resolved against the
/// running CPU by [`SimdBackend::resolve`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// Best backend the CPU supports (honours the `TPI_SIMD_BACKEND`
    /// environment variable as a process-wide override; see
    /// [`SimdBackend::resolve`]).
    #[default]
    Auto,
    /// Force the scalar kernels (the cross-check oracle).
    Scalar,
    /// Require AVX2 (256-bit words); resolution fails without it.
    Avx2,
    /// Require AVX-512F (512-bit words); resolution fails without it.
    Avx512,
}

impl BackendChoice {
    /// Parse a CLI/env spelling (`auto`, `scalar`, `avx2`, `avx512`).
    pub fn parse(s: &str) -> Result<BackendChoice, String> {
        match s {
            "auto" => Ok(BackendChoice::Auto),
            "scalar" => Ok(BackendChoice::Scalar),
            "avx2" => Ok(BackendChoice::Avx2),
            "avx512" => Ok(BackendChoice::Avx512),
            other => Err(format!(
                "unknown SIMD backend {other:?} (expected auto, scalar, avx2 or avx512)"
            )),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Scalar => "scalar",
            BackendChoice::Avx2 => "avx2",
            BackendChoice::Avx512 => "avx512",
        })
    }
}

/// A *resolved* SIMD backend: the only constructors run the matching
/// `is_x86_feature_detected!` check, so holding a non-scalar value is
/// proof the features exist on this CPU — the safety precondition of
/// every `#[target_feature]` call in this module.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum SimdBackend {
    /// Portable scalar kernels (always available, the oracle).
    #[default]
    Scalar,
    /// 256-bit AVX2 kernels (one vector per W=4 slot, two per W=8).
    Avx2,
    /// 512-bit AVX-512F kernels for W=8; W=4 uses the AVX2 shape
    /// (resolution requires both feature sets).
    Avx512,
}

impl SimdBackend {
    /// Resolve a requested backend against the running CPU.
    ///
    /// `Auto` picks the widest backend the CPU supports, unless the
    /// `TPI_SIMD_BACKEND` environment variable names a specific one
    /// (`scalar`, `avx2`, `avx512` — the hook CI uses to force the
    /// scalar oracle through every test without re-plumbing flags). An
    /// explicitly requested backend — flag or environment — fails
    /// resolution if the CPU lacks it, rather than silently degrading.
    ///
    /// # Errors
    ///
    /// A human-readable message when an explicitly requested backend is
    /// unavailable on this CPU/target, or when `TPI_SIMD_BACKEND` holds
    /// an unknown spelling.
    pub fn resolve(choice: BackendChoice) -> Result<SimdBackend, String> {
        let choice = match choice {
            BackendChoice::Auto => match std::env::var("TPI_SIMD_BACKEND") {
                Ok(v) => BackendChoice::parse(&v).map_err(|e| format!("TPI_SIMD_BACKEND: {e}"))?,
                Err(_) => BackendChoice::Auto,
            },
            explicit => explicit,
        };
        match choice {
            BackendChoice::Auto => Ok(detect_best()),
            BackendChoice::Scalar => Ok(SimdBackend::Scalar),
            BackendChoice::Avx2 => {
                if have_avx2() {
                    Ok(SimdBackend::Avx2)
                } else {
                    Err("avx2 backend requested but the CPU has no AVX2".into())
                }
            }
            BackendChoice::Avx512 => {
                if have_avx512() {
                    Ok(SimdBackend::Avx512)
                } else {
                    Err("avx512 backend requested but the CPU has no AVX-512F".into())
                }
            }
        }
    }

    /// Short display name (`scalar` / `avx2` / `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Avx512 => "avx512",
        }
    }

    /// Numeric code for the `sim.backend` gauge (registries carry no
    /// string metrics): 0 scalar, 1 avx2, 2 avx512.
    pub fn code(self) -> i64 {
        match self {
            SimdBackend::Scalar => 0,
            SimdBackend::Avx2 => 1,
            SimdBackend::Avx512 => 2,
        }
    }

    /// Publish this backend as the `sim.backend` gauge (see
    /// [`code`](SimdBackend::code) for the value mapping).
    pub fn publish_to(self, registry: &tpi_obs::Registry) {
        registry.gauge("sim.backend").set(self.code());
    }
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// AVX-512 here means AVX-512F *and* AVX2: the W=8 kernel is 512-bit
/// but the W=4 kernel under this backend reuses the 256-bit shape.
#[cfg(target_arch = "x86_64")]
fn have_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f") && have_avx2()
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx2() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx512() -> bool {
    false
}

fn detect_best() -> SimdBackend {
    if have_avx512() {
        SimdBackend::Avx512
    } else if have_avx2() {
        SimdBackend::Avx2
    } else {
        SimdBackend::Scalar
    }
}

/// Run the compiled gate-evaluation sweep over `values` under `backend`.
///
/// Bit-identical to `Program::execute_block` for every backend: the
/// vector kernels perform the same loads, the same bitwise ops and the
/// same stores, 64-bit lane for 64-bit lane. Widths below 4 words always
/// take the scalar kernel (a 128/256-bit slot has nothing to gain).
///
/// # Panics
///
/// Panics if `values.len() != program.node_limit() * w` when a vector
/// backend is selected (the bounds precondition of the raw-pointer
/// kernels), or for unsupported `w`.
pub(crate) fn execute_block(program: &Program, values: &mut [u64], w: usize, backend: SimdBackend) {
    #[cfg(target_arch = "x86_64")]
    {
        if backend != SimdBackend::Scalar && w >= 4 {
            assert_eq!(
                values.len(),
                program.node_limit() * w,
                "value buffer must cover exactly node_limit slots"
            );
            // SAFETY: resolution proved the features (see `SimdBackend`);
            // the assert above plus the compile-time invariant that every
            // op index is < node_limit keeps all accesses in bounds.
            match (backend, w) {
                (SimdBackend::Avx2, 4) | (SimdBackend::Avx512, 4) => unsafe {
                    x86::execute_avx2_w4(&program.ops, &program.fanin_idx, values.as_mut_ptr());
                },
                (SimdBackend::Avx2, 8) => unsafe {
                    x86::execute_avx2_w8(&program.ops, &program.fanin_idx, values.as_mut_ptr());
                },
                (SimdBackend::Avx512, 8) => unsafe {
                    x86::execute_avx512_w8(&program.ops, &program.fanin_idx, values.as_mut_ptr());
                },
                _ => unreachable!("vector dispatch covers w in {{4, 8}}"),
            }
            return;
        }
    }
    program.execute_block(values, w);
}

/// Run the CPT backward sensitization sweep under `backend` (see
/// [`compile::sens_sweep`]): the scalar generic kernel recompiled with
/// the backend's vector features enabled. Same code, same results —
/// only the instruction selection changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sens_sweep(
    backend: SimdBackend,
    program: &Program,
    w: usize,
    sens: &mut [u64],
    good: &[u64],
    scratch: &mut Vec<u64>,
    ffr_root: &[u32],
    region_active: &[bool],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: resolution proved the features; the wrapped kernel is
        // itself entirely safe code.
        match backend {
            SimdBackend::Avx2 => {
                return unsafe {
                    x86::sens_sweep_avx2(program, w, sens, good, scratch, ffr_root, region_active)
                };
            }
            SimdBackend::Avx512 => {
                return unsafe {
                    x86::sens_sweep_avx512(program, w, sens, good, scratch, ffr_root, region_active)
                };
            }
            SimdBackend::Scalar => {}
        }
    }
    sens_sweep_scalar(program, w, sens, good, scratch, ffr_root, region_active);
}

/// Width-dispatched scalar instantiation (shared by the fallback path
/// and, re-inlined, by the `#[target_feature]` wrappers below).
#[inline(always)]
fn sens_sweep_scalar(
    program: &Program,
    w: usize,
    sens: &mut [u64],
    good: &[u64],
    scratch: &mut Vec<u64>,
    ffr_root: &[u32],
    region_active: &[bool],
) {
    match w {
        1 => compile::sens_sweep::<1>(program, sens, good, scratch, ffr_root, region_active),
        2 => compile::sens_sweep::<2>(program, sens, good, scratch, ffr_root, region_active),
        4 => compile::sens_sweep::<4>(program, sens, good, scratch, ffr_root, region_active),
        8 => compile::sens_sweep::<8>(program, sens, good, scratch, ffr_root, region_active),
        _ => unreachable!("width validated at construction"),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::sens_sweep_scalar;
    use crate::compile::{Op, OpCode, Program};
    use core::arch::x86_64::{
        __m256i, __m512i, _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_set1_epi64x, _mm256_storeu_si256, _mm256_xor_si256, _mm512_and_si512,
        _mm512_loadu_si512, _mm512_or_si512, _mm512_set1_epi64, _mm512_storeu_si512,
        _mm512_xor_si512,
    };

    /// A vector of 64-bit pattern words. Methods are `#[inline(always)]`
    /// so they compile with the *caller's* target features — the trait
    /// impls themselves carry none, hence every method is `unsafe` with
    /// the same ISA precondition.
    pub(super) trait Vect: Copy {
        /// 64-bit words per vector.
        const WORDS: usize;
        /// # Safety
        /// `p .. p + WORDS` must be readable; the CPU must support the
        /// vector's ISA (guaranteed by the calling wrapper's feature).
        unsafe fn load(p: *const u64) -> Self;
        /// # Safety
        /// `p .. p + WORDS` must be writable; ISA as for `load`.
        unsafe fn store(self, p: *mut u64);
        /// # Safety
        /// The CPU must support the vector's ISA (as for `load`).
        unsafe fn splat(word: u64) -> Self;
        /// # Safety
        /// ISA as for `splat`.
        unsafe fn and(self, o: Self) -> Self;
        /// # Safety
        /// ISA as for `splat`.
        unsafe fn or(self, o: Self) -> Self;
        /// # Safety
        /// ISA as for `splat`.
        unsafe fn xor(self, o: Self) -> Self;
        /// # Safety
        /// ISA as for `splat`.
        unsafe fn not(self) -> Self;
    }

    #[derive(Copy, Clone)]
    pub(super) struct V256(__m256i);

    impl Vect for V256 {
        const WORDS: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const u64) -> V256 {
            // SAFETY: caller contract (readable range, AVX available).
            V256(unsafe { _mm256_loadu_si256(p as *const __m256i) })
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut u64) {
            // SAFETY: caller contract (writable range, AVX available).
            unsafe { _mm256_storeu_si256(p as *mut __m256i, self.0) }
        }
        #[inline(always)]
        unsafe fn splat(word: u64) -> V256 {
            // SAFETY: caller contract (AVX available).
            V256(unsafe { _mm256_set1_epi64x(word as i64) })
        }
        #[inline(always)]
        unsafe fn and(self, o: V256) -> V256 {
            // SAFETY: caller contract (AVX2 available).
            V256(unsafe { _mm256_and_si256(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn or(self, o: V256) -> V256 {
            // SAFETY: caller contract (AVX2 available).
            V256(unsafe { _mm256_or_si256(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn xor(self, o: V256) -> V256 {
            // SAFETY: caller contract (AVX2 available).
            V256(unsafe { _mm256_xor_si256(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn not(self) -> V256 {
            // SAFETY: caller contract (AVX2 available).
            unsafe { self.xor(V256::splat(u64::MAX)) }
        }
    }

    #[derive(Copy, Clone)]
    pub(super) struct V512(__m512i);

    impl Vect for V512 {
        const WORDS: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const u64) -> V512 {
            // SAFETY: caller contract (readable range, AVX-512F available).
            V512(unsafe { _mm512_loadu_si512(p as *const __m512i) })
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut u64) {
            // SAFETY: caller contract (writable range, AVX-512F available).
            unsafe { _mm512_storeu_si512(p as *mut __m512i, self.0) }
        }
        #[inline(always)]
        unsafe fn splat(word: u64) -> V512 {
            // SAFETY: caller contract (AVX-512F available).
            V512(unsafe { _mm512_set1_epi64(word as i64) })
        }
        #[inline(always)]
        unsafe fn and(self, o: V512) -> V512 {
            // SAFETY: caller contract (AVX-512F available).
            V512(unsafe { _mm512_and_si512(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn or(self, o: V512) -> V512 {
            // SAFETY: caller contract (AVX-512F available).
            V512(unsafe { _mm512_or_si512(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn xor(self, o: V512) -> V512 {
            // SAFETY: caller contract (AVX-512F available).
            V512(unsafe { _mm512_xor_si512(self.0, o.0) })
        }
        #[inline(always)]
        unsafe fn not(self) -> V512 {
            // SAFETY: caller contract (AVX-512F available).
            unsafe { self.xor(V512::splat(u64::MAX)) }
        }
    }

    /// The gate-evaluation sweep over `VPS` vectors per node slot
    /// (slot width = `V::WORDS * VPS` 64-bit words).
    ///
    /// # Safety
    ///
    /// * `values` must cover `node_limit * V::WORDS * VPS` words where
    ///   every `out`/`a`/`b`/CSR index in `ops`/`fanin_idx` is
    ///   `< node_limit` (asserted by [`super::execute_block`] against
    ///   the compiled program's invariant);
    /// * the caller must hold the vector ISA's target feature (the
    ///   `#[target_feature]` wrappers below).
    #[inline(always)]
    unsafe fn execute_vec<V: Vect, const VPS: usize>(
        ops: &[Op],
        fanin_idx: &[u32],
        values: *mut u64,
    ) {
        let sw = V::WORDS * VPS;
        macro_rules! get {
            ($node:expr, $k:expr) => {
                // SAFETY: $node < node_limit (fn contract), so the slot
                // `$node * sw .. + sw` lies inside the buffer.
                unsafe { V::load(values.add($node as usize * sw + $k * V::WORDS)) }
            };
        }
        macro_rules! put {
            ($node:expr, $k:expr, $v:expr) => {
                // SAFETY: as for `get!` — same index domain, writable.
                unsafe { $v.store(values.add($node as usize * sw + $k * V::WORDS)) }
            };
        }
        macro_rules! unary {
            ($op:expr, |$x:ident| $e:expr) => {
                for k in 0..VPS {
                    let $x = get!($op.a, k);
                    // SAFETY: fn contract — caller holds the vector ISA.
                    let r = unsafe { $e };
                    put!($op.out, k, r);
                }
            };
        }
        macro_rules! binary {
            ($op:expr, |$x:ident, $y:ident| $e:expr) => {
                for k in 0..VPS {
                    let $x = get!($op.a, k);
                    let $y = get!($op.b, k);
                    // SAFETY: fn contract — caller holds the vector ISA.
                    let r = unsafe { $e };
                    put!($op.out, k, r);
                }
            };
        }
        macro_rules! nary {
            ($op:expr, $init:expr, |$acc:ident, $x:ident| $fold:expr, $inv:expr) => {{
                let fanins = &fanin_idx[$op.a as usize..($op.a + $op.b) as usize];
                for k in 0..VPS {
                    // SAFETY: fn contract — caller holds the vector ISA
                    // (all three unsafe blocks in this arm).
                    let mut r = unsafe { V::splat($init) };
                    for &f in fanins {
                        let $acc = r;
                        let $x = get!(f, k);
                        r = unsafe { $fold };
                    }
                    if $inv {
                        r = unsafe { r.not() };
                    }
                    put!($op.out, k, r);
                }
            }};
        }
        for op in ops {
            match op.code {
                OpCode::Buf => {
                    for k in 0..VPS {
                        let x = get!(op.a, k);
                        put!(op.out, k, x);
                    }
                }
                OpCode::Not => unary!(op, |x| x.not()),
                OpCode::And2 => binary!(op, |x, y| x.and(y)),
                OpCode::Nand2 => binary!(op, |x, y| x.and(y).not()),
                OpCode::Or2 => binary!(op, |x, y| x.or(y)),
                OpCode::Nor2 => binary!(op, |x, y| x.or(y).not()),
                OpCode::Xor2 => binary!(op, |x, y| x.xor(y)),
                OpCode::Xnor2 => binary!(op, |x, y| x.xor(y).not()),
                OpCode::AndN => nary!(op, u64::MAX, |acc, x| acc.and(x), false),
                OpCode::NandN => nary!(op, u64::MAX, |acc, x| acc.and(x), true),
                OpCode::OrN => nary!(op, 0, |acc, x| acc.or(x), false),
                OpCode::NorN => nary!(op, 0, |acc, x| acc.or(x), true),
                OpCode::XorN => nary!(op, 0, |acc, x| acc.xor(x), false),
                OpCode::XnorN => nary!(op, 0, |acc, x| acc.xor(x), true),
            }
        }
    }

    /// # Safety
    /// AVX2 must be available; `values` as per [`execute_vec`] with a
    /// 4-word slot.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn execute_avx2_w4(ops: &[Op], fanin_idx: &[u32], values: *mut u64) {
        // SAFETY: forwarded contract.
        unsafe { execute_vec::<V256, 1>(ops, fanin_idx, values) }
    }

    /// # Safety
    /// AVX2 must be available; `values` as per [`execute_vec`] with an
    /// 8-word slot.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn execute_avx2_w8(ops: &[Op], fanin_idx: &[u32], values: *mut u64) {
        // SAFETY: forwarded contract.
        unsafe { execute_vec::<V256, 2>(ops, fanin_idx, values) }
    }

    /// # Safety
    /// AVX-512F must be available; `values` as per [`execute_vec`] with
    /// an 8-word slot.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn execute_avx512_w8(ops: &[Op], fanin_idx: &[u32], values: *mut u64) {
        // SAFETY: forwarded contract.
        unsafe { execute_vec::<V512, 1>(ops, fanin_idx, values) }
    }

    /// # Safety
    /// AVX2 must be available. The body is entirely safe code — the
    /// attribute only changes code generation (see module docs).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sens_sweep_avx2(
        program: &Program,
        w: usize,
        sens: &mut [u64],
        good: &[u64],
        scratch: &mut Vec<u64>,
        ffr_root: &[u32],
        region_active: &[bool],
    ) {
        sens_sweep_scalar(program, w, sens, good, scratch, ffr_root, region_active)
    }

    /// # Safety
    /// AVX-512F must be available. Entirely safe body, as above.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn sens_sweep_avx512(
        program: &Program,
        w: usize,
        sens: &mut [u64],
        good: &[u64],
        scratch: &mut Vec<u64>,
        ffr_root: &[u32],
        region_active: &[bool],
    ) {
        sens_sweep_scalar(program, w, sens, good, scratch, ffr_root, region_active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_resolves() {
        assert_eq!(
            SimdBackend::resolve(BackendChoice::Scalar).unwrap(),
            SimdBackend::Scalar
        );
    }

    #[test]
    fn auto_resolves_to_something() {
        // Whatever the CPU, Auto must resolve (possibly to Scalar) —
        // unless the environment override is present, in which case this
        // process-wide setting is exactly what's being tested elsewhere.
        if std::env::var("TPI_SIMD_BACKEND").is_err() {
            SimdBackend::resolve(BackendChoice::Auto).unwrap();
        }
    }

    #[test]
    fn parse_round_trips() {
        for c in [
            BackendChoice::Auto,
            BackendChoice::Scalar,
            BackendChoice::Avx2,
            BackendChoice::Avx512,
        ] {
            assert_eq!(BackendChoice::parse(&c.to_string()).unwrap(), c);
        }
        assert!(BackendChoice::parse("sse9").is_err());
    }

    #[test]
    fn gauge_codes_are_stable() {
        assert_eq!(SimdBackend::Scalar.code(), 0);
        assert_eq!(SimdBackend::Avx2.code(), 1);
        assert_eq!(SimdBackend::Avx512.code(), 2);
    }
}
