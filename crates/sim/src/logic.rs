use tpi_netlist::{Circuit, NetlistError, NodeId, Topology};

use crate::compile::{block_words_supported, fill_slot, Program};
use crate::simd::{self, BackendChoice, SimdBackend};

/// Bit-parallel (64 patterns per word) logic simulator.
///
/// At construction the levelised circuit is *compiled* into a flat
/// structure-of-arrays program (see the [`crate::compile`] module docs):
/// a contiguous opcode array with CSR-packed fanins, executed over dense
/// value slots with specialised two-input fast paths. The same program
/// runs at any supported block width `w` (1, 2, 4 or 8 words = 64–512
/// patterns per pass) via [`simulate_block_into`]
/// (LogicSim::simulate_block_into); the scalar [`simulate`]
/// (LogicSim::simulate)/[`simulate_into`](LogicSim::simulate_into) API
/// is the `w = 1` special case. Lane values are bit-identical across
/// widths.
///
/// The simulator snapshots the order at construction; rebuild it after
/// transforming the circuit.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_sim::LogicSim;
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = XOR(a, b)\nOUTPUT(y)\n")?;
/// let sim = LogicSim::new(&c)?;
/// // lane 0: a=0,b=0  lane 1: a=1,b=0  lane 2: a=0,b=1  lane 3: a=1,b=1
/// let values = sim.simulate(&[0b0110, 0b1100]);
/// let y = c.outputs()[0];
/// assert_eq!(values[y.index()] & 0xF, 0b1010);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LogicSim {
    circuit: Circuit,
    program: Program,
    order: Vec<NodeId>,
    level_of: Vec<u32>,
    max_level: u32,
    backend: SimdBackend,
}

impl LogicSim {
    /// Build a simulator for `circuit` (the circuit is cloned; the
    /// simulator is self-contained) with the best SIMD backend the CPU
    /// supports (see [`SimdBackend::resolve`]; results are bit-identical
    /// across backends).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    ///
    /// # Panics
    ///
    /// Panics if the `TPI_SIMD_BACKEND` environment override names an
    /// unknown or unavailable backend (auto-detection itself is
    /// infallible).
    pub fn new(circuit: &Circuit) -> Result<LogicSim, NetlistError> {
        let backend = SimdBackend::resolve(BackendChoice::Auto).unwrap_or_else(|e| panic!("{e}"));
        LogicSim::with_backend(circuit, backend)
    }

    /// [`LogicSim::new`] with an explicitly resolved SIMD backend.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn with_backend(circuit: &Circuit, backend: SimdBackend) -> Result<LogicSim, NetlistError> {
        let topo = Topology::of(circuit)?;
        let order = topo
            .order()
            .iter()
            .copied()
            .filter(|&id| !circuit.kind(id).is_source())
            .collect();
        let level_of = circuit.node_ids().map(|id| topo.level(id)).collect();
        let program = Program::compile(circuit, &topo);
        Ok(LogicSim {
            circuit: circuit.clone(),
            program,
            order,
            level_of,
            max_level: topo.max_level(),
            backend,
        })
    }

    /// The compiled program backing this simulator.
    pub(crate) fn program(&self) -> &Program {
        &self.program
    }

    /// The resolved SIMD backend driving the wide kernels.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// The circuit this simulator was built for.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Gate evaluation order (levelised, sources excluded).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Logic level of a node (snapshot from construction time).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level_of[id.index()]
    }

    /// Maximum logic level.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Simulate one block: `input_words[i]` carries 64 pattern bits for
    /// primary input `i` (order of [`Circuit::inputs`]). Returns a word per
    /// node, indexed by [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `input_words` has the wrong length.
    pub fn simulate(&self, input_words: &[u64]) -> Vec<u64> {
        let mut values = vec![0u64; self.circuit.node_count()];
        self.simulate_into(input_words, &mut values);
        values
    }

    /// Like [`LogicSim::simulate`] but reusing a caller-provided buffer
    /// (`values.len()` must equal the node count).
    pub fn simulate_into(&self, input_words: &[u64], values: &mut [u64]) {
        self.simulate_block_into(input_words, values, 1);
    }

    /// Simulate one *wide* block of `w × 64` patterns through the
    /// compiled kernel.
    ///
    /// `input_words[i * w + j]` carries word `j` (patterns
    /// `j * 64 .. j * 64 + 64` of the block) for primary input `i`;
    /// `values` receives `w` words per node at
    /// `values[id.index() * w ..][..w]` with the same word-major layout.
    /// At `w = 1` this is exactly [`LogicSim::simulate_into`]; wider
    /// blocks produce bit-identical lanes, one kernel pass per block.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 1, 2, 4 or 8, and in debug builds on buffer
    /// length mismatches.
    pub fn simulate_block_into(&self, input_words: &[u64], values: &mut [u64], w: usize) {
        assert!(
            block_words_supported(w),
            "unsupported block width {w} words (supported: 1, 2, 4, 8)"
        );
        debug_assert_eq!(input_words.len(), self.circuit.inputs().len() * w);
        debug_assert_eq!(values.len(), self.circuit.node_count() * w);
        for (i, &input) in self.circuit.inputs().iter().enumerate() {
            values[input.index() * w..input.index() * w + w]
                .copy_from_slice(&input_words[i * w..i * w + w]);
        }
        for &(idx, word) in self.program.constants() {
            fill_slot(values, NodeId::from_index(idx as usize), w, word);
        }
        simd::execute_block(&self.program, values, w, self.backend);
    }

    /// Extract the primary-output words from a value vector produced by
    /// [`LogicSim::simulate`].
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        self.circuit
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExhaustivePatterns, PatternSource};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn build_sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("d");
        let g1 = b.gate(GateKind::Nand, vec![a, c], "g1").unwrap();
        let g2 = b.gate(GateKind::Xor, vec![g1, d], "g2").unwrap();
        let g3 = b.gate(GateKind::Nor, vec![g1, g2], "g3").unwrap();
        b.output(g2);
        b.output(g3);
        b.finish().unwrap()
    }

    #[test]
    fn matches_reference_evaluator_exhaustively() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let mut words = vec![0u64; 3];
        let n = src.fill(&mut words);
        let values = sim.simulate(&words);
        for p in 0..n {
            let assignment: Vec<bool> = words.iter().map(|w| (w >> p) & 1 == 1).collect();
            let reference = c.evaluate(&assignment).unwrap();
            for id in c.node_ids() {
                assert_eq!(
                    (values[id.index()] >> p) & 1 == 1,
                    reference[id.index()],
                    "node {} pattern {p}",
                    c.node_name(id)
                );
            }
        }
    }

    #[test]
    fn constants_simulate_correctly() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let zero = b.constant(false, "zero").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![one, x], "g").unwrap();
        let h = b.gate(GateKind::Or, vec![zero, g], "h").unwrap();
        b.output(h);
        let c = b.finish().unwrap();
        let sim = LogicSim::new(&c).unwrap();
        let v = sim.simulate(&[0b10]);
        assert_eq!(v[one.index()], u64::MAX);
        assert_eq!(v[zero.index()], 0);
        assert_eq!(v[c.outputs()[0].index()] & 0b11, 0b10);
    }

    #[test]
    fn output_word_extraction() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        let values = sim.simulate(&[u64::MAX, u64::MAX, 0]);
        let outs = sim.output_words(&values);
        // g1 = NAND(1,1) = 0; g2 = XOR(0,0) = 0; g3 = NOR(0,0) = 1.
        assert_eq!(outs, vec![0, u64::MAX]);
    }

    #[test]
    fn simulate_into_reuses_buffer() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        let mut buf = vec![0u64; c.node_count()];
        sim.simulate_into(&[1, 1, 0], &mut buf);
        let fresh = sim.simulate(&[1, 1, 0]);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn wide_blocks_are_bit_identical_to_narrow() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        for w in [1usize, 2, 4, 8] {
            // Word j of input i gets a distinct deterministic pattern.
            let inputs: Vec<u64> = (0..3 * w)
                .map(|k| (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let mut wide = vec![0u64; c.node_count() * w];
            sim.simulate_block_into(&inputs, &mut wide, w);
            for j in 0..w {
                let narrow_inputs: Vec<u64> = (0..3).map(|i| inputs[i * w + j]).collect();
                let narrow = sim.simulate(&narrow_inputs);
                for id in c.node_ids() {
                    assert_eq!(
                        wide[id.index() * w + j],
                        narrow[id.index()],
                        "node {} word {j} at w={w}",
                        c.node_name(id)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported block width")]
    fn rejects_unsupported_block_width() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        let mut values = vec![0u64; c.node_count() * 3];
        sim.simulate_block_into(&[0; 9], &mut values, 3);
    }

    #[test]
    fn order_excludes_sources_and_respects_levels() {
        let c = build_sample();
        let sim = LogicSim::new(&c).unwrap();
        assert_eq!(sim.order().len(), 3);
        let mut prev = 0;
        for &id in sim.order() {
            assert!(sim.level(id) >= prev);
            prev = sim.level(id);
        }
        assert_eq!(sim.max_level(), 3);
    }
}
