use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of input patterns for bit-parallel simulation.
///
/// One call to [`fill`](PatternSource::fill) produces up to 64 patterns:
/// `words[i]` holds, in its bit lanes, the value of primary input `i`
/// across those patterns (lane `p` = pattern `p` of the block).
///
/// Implementations must be deterministic for a given construction seed so
/// that experiments are reproducible.
///
/// # Wide blocks
///
/// Consumers simulating `w × 64`-pattern wide blocks (see
/// [`FaultSimulator::with_block_words`](crate::FaultSimulator::with_block_words))
/// compose up to `w` sequential `fill` calls into one block, word-major:
/// call `j` supplies patterns `j * 64 .. (j + 1) * 64` of the block. A
/// short fill (`< 64`) or exhaustion (`0`) terminates the block early,
/// so the pattern sequence a source produces — and therefore every
/// simulation result — is independent of the consumer's block width.
pub trait PatternSource {
    /// Fill `words` (one word per primary input) with the next block of
    /// patterns. Returns the number of valid patterns in the block
    /// (`1..=64`); `0` means the source is exhausted.
    fn fill(&mut self, words: &mut [u64]) -> usize;

    /// Reset the source to its initial state, if supported.
    fn reset(&mut self);
}

/// Software pseudo-random patterns from a seeded [`StdRng`].
///
/// Each primary input receives independent equiprobable bits — the
/// idealised model under which COP-style detection probabilities are
/// derived.
///
/// # Example
///
/// ```
/// use tpi_sim::{PatternSource, RandomPatterns};
/// let mut src = RandomPatterns::new(3, 42);
/// let mut block = [0u64; 3];
/// assert_eq!(src.fill(&mut block), 64);
/// let mut again = [0u64; 3];
/// src.reset();
/// src.fill(&mut again);
/// assert_eq!(block, again); // deterministic under a fixed seed
/// ```
#[derive(Clone, Debug)]
pub struct RandomPatterns {
    seed: u64,
    rng: StdRng,
    n_inputs: usize,
}

impl RandomPatterns {
    /// Create a source for `n_inputs` primary inputs with a fixed seed.
    pub fn new(n_inputs: usize, seed: u64) -> RandomPatterns {
        RandomPatterns {
            seed,
            rng: StdRng::seed_from_u64(seed),
            n_inputs,
        }
    }

    /// Number of inputs this source was configured for.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }
}

impl PatternSource for RandomPatterns {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        debug_assert_eq!(words.len(), self.n_inputs);
        for w in words.iter_mut() {
            *w = self.rng.next_u64();
        }
        64
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Pseudo-random patterns where every primary input draws from its own
/// counter-based stream, independent of how many inputs exist.
///
/// [`RandomPatterns`] draws one word per input from a *shared* sequential
/// stream, so appending an input (as control/full test points do) shifts
/// every later draw and changes all values. `IndependentPatterns` instead
/// hashes `(seed, input index, block index)`, which makes the stream of
/// input `i` invariant under the insertion of inputs `j > i`. This is the
/// property the incremental engine relies on: after a test-point insertion
/// appends aux inputs, all pre-existing inputs replay bit-identical
/// values, so only the structural fanout cone of the edit can differ.
///
/// # Example
///
/// ```
/// use tpi_sim::{IndependentPatterns, PatternSource};
/// let mut narrow = IndependentPatterns::new(3, 7);
/// let mut wide = IndependentPatterns::new(5, 7); // two extra inputs
/// let (mut a, mut b) = ([0u64; 3], [0u64; 5]);
/// narrow.fill(&mut a);
/// wide.fill(&mut b);
/// assert_eq!(a, b[..3], "existing inputs are unaffected by new ones");
/// ```
#[derive(Clone, Debug)]
pub struct IndependentPatterns {
    seed: u64,
    block: u64,
    n_inputs: usize,
}

impl IndependentPatterns {
    /// Create a source for `n_inputs` primary inputs with a fixed seed.
    pub fn new(n_inputs: usize, seed: u64) -> IndependentPatterns {
        IndependentPatterns {
            seed,
            block: 0,
            n_inputs,
        }
    }

    /// Number of inputs this source was configured for.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// The word for input `i` in block `b` — a pure function of
    /// `(seed, i, b)`. Crate-visible so the batched candidate scorer can
    /// materialise the exact stream any candidate circuit's aux input
    /// would see (each single-point candidate appends exactly one input,
    /// so its index and therefore its stream are known without building
    /// the candidate).
    pub(crate) fn word(seed: u64, input: u64, block: u64) -> u64 {
        // SplitMix64 finalizer over a mixed counter; full 64-bit
        // avalanche keeps lanes statistically independent.
        let mut z = seed
            ^ input.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ block.wrapping_mul(0xD1B5_4A32_D192_ED03);
        z = z.wrapping_add(0x2545_F491_4F6C_DD1D);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl PatternSource for IndependentPatterns {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        debug_assert_eq!(words.len(), self.n_inputs);
        for (i, w) in words.iter_mut().enumerate() {
            *w = IndependentPatterns::word(self.seed, i as u64, self.block);
        }
        self.block += 1;
        64
    }

    fn reset(&mut self) {
        self.block = 0;
    }
}

/// Enumerates all `2^n` input patterns (for exact, exhaustive analyses on
/// small circuits).
///
/// Pattern `p` assigns bit `i` of the counter to input `i`. The source is
/// exhausted after `2^n` patterns.
///
/// # Example
///
/// ```
/// use tpi_sim::{ExhaustivePatterns, PatternSource};
/// let mut src = ExhaustivePatterns::new(2);
/// let mut block = [0u64; 2];
/// assert_eq!(src.fill(&mut block), 4);
/// assert_eq!(src.fill(&mut block), 0); // exhausted
/// ```
#[derive(Clone, Debug)]
pub struct ExhaustivePatterns {
    n_inputs: usize,
    next: u64,
    total: u64,
}

impl ExhaustivePatterns {
    /// Create an exhaustive source over `n_inputs ≤ 63` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs > 63` (the pattern space would not fit `u64`).
    pub fn new(n_inputs: usize) -> ExhaustivePatterns {
        assert!(
            n_inputs <= 63,
            "exhaustive enumeration limited to 63 inputs"
        );
        ExhaustivePatterns {
            n_inputs,
            next: 0,
            total: 1u64 << n_inputs,
        }
    }

    /// Total number of patterns the source will produce.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl PatternSource for ExhaustivePatterns {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        debug_assert_eq!(words.len(), self.n_inputs);
        let remaining = self.total - self.next;
        let n = remaining.min(64) as usize;
        for w in words.iter_mut() {
            *w = 0;
        }
        for p in 0..n {
            let pattern = self.next + p as u64;
            for (i, w) in words.iter_mut().enumerate() {
                if pattern & (1 << i) != 0 {
                    *w |= 1 << p;
                }
            }
        }
        self.next += n as u64;
        n
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_balanced() {
        let mut a = RandomPatterns::new(4, 7);
        let mut b = RandomPatterns::new(4, 7);
        let (mut wa, mut wb) = ([0u64; 4], [0u64; 4]);
        for _ in 0..10 {
            a.fill(&mut wa);
            b.fill(&mut wb);
            assert_eq!(wa, wb);
        }
        // Rough balance: over many words, ones frequency near 1/2.
        let mut src = RandomPatterns::new(1, 99);
        let mut ones = 0u32;
        let mut w = [0u64; 1];
        for _ in 0..256 {
            src.fill(&mut w);
            ones += w[0].count_ones();
        }
        let freq = f64::from(ones) / (256.0 * 64.0);
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomPatterns::new(1, 1);
        let mut b = RandomPatterns::new(1, 2);
        let (mut wa, mut wb) = ([0u64; 1], [0u64; 1]);
        a.fill(&mut wa);
        b.fill(&mut wb);
        assert_ne!(wa, wb);
    }

    #[test]
    fn independent_streams_ignore_input_count() {
        let mut narrow = IndependentPatterns::new(2, 11);
        let mut wide = IndependentPatterns::new(6, 11);
        let (mut wn, mut ww) = ([0u64; 2], [0u64; 6]);
        for _ in 0..8 {
            assert_eq!(narrow.fill(&mut wn), 64);
            assert_eq!(wide.fill(&mut ww), 64);
            assert_eq!(wn, ww[..2]);
        }
    }

    #[test]
    fn independent_is_deterministic_and_balanced() {
        let mut a = IndependentPatterns::new(3, 5);
        let mut b = IndependentPatterns::new(3, 5);
        let (mut wa, mut wb) = ([0u64; 3], [0u64; 3]);
        a.fill(&mut wa);
        b.fill(&mut wb);
        assert_eq!(wa, wb);
        a.reset();
        a.fill(&mut wb);
        assert_eq!(wa, wb, "reset replays the stream");
        let mut src = IndependentPatterns::new(1, 99);
        let mut ones = 0u32;
        let mut w = [0u64; 1];
        for _ in 0..256 {
            src.fill(&mut w);
            ones += w[0].count_ones();
        }
        let freq = f64::from(ones) / (256.0 * 64.0);
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn exhaustive_covers_every_pattern_once() {
        let mut src = ExhaustivePatterns::new(3);
        let mut words = [0u64; 3];
        let n = src.fill(&mut words);
        assert_eq!(n, 8);
        let mut seen = [false; 8];
        for p in 0..8 {
            let mut v = 0usize;
            for (i, w) in words.iter().enumerate() {
                if (w >> p) & 1 == 1 {
                    v |= 1 << i;
                }
            }
            assert!(!seen[v], "pattern {v} repeated");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exhaustive_spans_multiple_blocks() {
        let mut src = ExhaustivePatterns::new(7); // 128 patterns
        let mut words = [0u64; 7];
        assert_eq!(src.fill(&mut words), 64);
        assert_eq!(src.fill(&mut words), 64);
        assert_eq!(src.fill(&mut words), 0);
        src.reset();
        assert_eq!(src.fill(&mut words), 64);
    }

    #[test]
    fn exhaustive_zero_inputs() {
        let mut src = ExhaustivePatterns::new(0);
        let mut words = [0u64; 0];
        assert_eq!(src.fill(&mut words), 1); // the single empty pattern
        assert_eq!(src.fill(&mut words), 0);
    }
}
