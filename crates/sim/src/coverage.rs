/// One point on a fault-coverage-versus-test-length curve.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CoveragePoint {
    /// Number of patterns applied so far.
    pub patterns: u64,
    /// Fraction of target faults detected by then (0..=1).
    pub coverage: f64,
}

/// Result of a fault-simulation run: per-fault first-detection indices and
/// derived statistics.
#[derive(Clone, Debug)]
pub struct FaultSimResult {
    first_detected: Vec<Option<u64>>,
    patterns_applied: u64,
}

impl FaultSimResult {
    pub(crate) fn new(first_detected: Vec<Option<u64>>, patterns_applied: u64) -> FaultSimResult {
        FaultSimResult {
            first_detected,
            patterns_applied,
        }
    }

    /// Assemble a result from per-fault first detections and the applied
    /// pattern count.
    ///
    /// Public so restartable/incremental drivers (the `tpi-engine` crate's
    /// dirty-cone re-simulation, the parallel runner) can merge partial
    /// runs into one result; plain simulation should use
    /// [`FaultSimulator::run`](crate::FaultSimulator::run).
    pub fn from_parts(first_detected: Vec<Option<u64>>, patterns_applied: u64) -> FaultSimResult {
        FaultSimResult::new(first_detected, patterns_applied)
    }

    /// Number of target faults.
    pub fn fault_count(&self) -> usize {
        self.first_detected.len()
    }

    /// Number of faults detected at least once.
    pub fn detected_count(&self) -> usize {
        self.first_detected.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage: detected / targeted (1.0 for an empty target set).
    pub fn coverage(&self) -> f64 {
        if self.first_detected.is_empty() {
            1.0
        } else {
            self.detected_count() as f64 / self.first_detected.len() as f64
        }
    }

    /// Patterns applied in total.
    pub fn patterns_applied(&self) -> u64 {
        self.patterns_applied
    }

    /// The 0-based index of the first pattern detecting fault `i`, if any.
    pub fn first_detection(&self, i: usize) -> Option<u64> {
        self.first_detected[i]
    }

    /// Indices of faults that remained undetected.
    pub fn undetected_indices(&self) -> Vec<usize> {
        self.first_detected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect()
    }

    /// The coverage-versus-test-length curve sampled at multiples of
    /// `step` patterns (plus the final point).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn coverage_curve(&self, step: u64) -> Vec<CoveragePoint> {
        assert!(step > 0, "step must be positive");
        let n = self.first_detected.len().max(1) as f64;
        let mut detections: Vec<u64> = self.first_detected.iter().flatten().copied().collect();
        detections.sort_unstable();
        let mut points = Vec::new();
        let mut t = step;
        loop {
            let upto = t.min(self.patterns_applied);
            let covered = detections.partition_point(|&d| d < upto);
            points.push(CoveragePoint {
                patterns: upto,
                coverage: covered as f64 / n,
            });
            if upto >= self.patterns_applied {
                break;
            }
            t += step;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics() {
        let r = FaultSimResult::new(vec![Some(0), None, Some(10), Some(99)], 100);
        assert_eq!(r.fault_count(), 4);
        assert_eq!(r.detected_count(), 3);
        assert!((r.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(r.patterns_applied(), 100);
        assert_eq!(r.undetected_indices(), vec![1]);
        assert_eq!(r.first_detection(2), Some(10));
    }

    #[test]
    fn empty_target_set_is_full_coverage() {
        let r = FaultSimResult::new(vec![], 10);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_final_coverage() {
        let r = FaultSimResult::new(vec![Some(0), Some(5), Some(70), None], 100);
        let curve = r.coverage_curve(10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].coverage >= w[0].coverage);
            assert!(w[1].patterns > w[0].patterns);
        }
        assert!((curve.last().unwrap().coverage - 0.75).abs() < 1e-12);
        // First point covers patterns 0..10 → detections at 0 and 5.
        assert!((curve[0].coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_with_large_step_has_single_point() {
        let r = FaultSimResult::new(vec![Some(1)], 10);
        let curve = r.coverage_curve(1000);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].patterns, 10);
        assert_eq!(curve[0].coverage, 1.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        FaultSimResult::new(vec![], 1).coverage_curve(0);
    }
}
