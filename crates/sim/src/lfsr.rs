//! Maximal-length linear feedback shift registers.
//!
//! BIST pattern generators are LFSRs in hardware; simulating the real
//! bitstream (rather than a software PRNG) keeps experiments faithful to
//! the implementation the DAC'87-era literature assumes. The taps below
//! are the classic maximal-length (primitive-polynomial) Fibonacci taps,
//! giving period `2^w − 1` for register width `w`.

use crate::patterns::PatternSource;

/// Fibonacci tap positions (1-indexed) of a primitive polynomial for each
/// register width 2..=32. `TAPS[w]` lists the stages XORed into the
/// feedback for width `w` (index 0 and 1 unused).
const TAPS: [&[u32]; 33] = [
    &[],
    &[],
    &[2, 1],
    &[3, 2],
    &[4, 3],
    &[5, 3],
    &[6, 5],
    &[7, 6],
    &[8, 6, 5, 4],
    &[9, 5],
    &[10, 7],
    &[11, 9],
    &[12, 6, 4, 1],
    &[13, 4, 3, 1],
    &[14, 5, 3, 1],
    &[15, 14],
    &[16, 15, 13, 4],
    &[17, 14],
    &[18, 11],
    &[19, 6, 2, 1],
    &[20, 17],
    &[21, 19],
    &[22, 21],
    &[23, 18],
    &[24, 23, 22, 17],
    &[25, 22],
    &[26, 6, 2, 1],
    &[27, 5, 2, 1],
    &[28, 25],
    &[29, 27],
    &[30, 6, 4, 1],
    &[31, 28],
    &[32, 22, 2, 1],
];

/// Maximal-length Fibonacci taps for `width` (2..=32), for reuse by the
/// MISR.
pub(crate) fn taps_for(width: u32) -> &'static [u32] {
    TAPS[width as usize]
}

/// A Fibonacci LFSR with maximal-length taps.
///
/// # Example
///
/// ```
/// use tpi_sim::Lfsr;
/// let mut lfsr = Lfsr::maximal(4, 0b1001).unwrap();
/// // A width-4 maximal LFSR has period 15.
/// let start = lfsr.state();
/// let mut period = 0u64;
/// loop {
///     lfsr.step();
///     period += 1;
///     if lfsr.state() == start { break; }
/// }
/// assert_eq!(period, 15);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    taps: &'static [u32],
    state: u64,
}

impl Lfsr {
    /// Create a maximal-length LFSR of the given width (2..=32).
    ///
    /// The all-zero state is the lock-up state of a Fibonacci LFSR; a zero
    /// `seed` is silently replaced by 1.
    ///
    /// Returns `None` if `width` is outside 2..=32.
    pub fn maximal(width: u32, seed: u64) -> Option<Lfsr> {
        if !(2..=32).contains(&width) {
            return None;
        }
        let mask = (1u64 << width) - 1;
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Some(Lfsr {
            width,
            taps: TAPS[width as usize],
            state,
        })
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Advance one clock; returns the bit shifted out (stage `width`).
    pub fn step(&mut self) -> bool {
        let out = (self.state >> (self.width - 1)) & 1 == 1;
        let mut fb = 0u64;
        for &t in self.taps {
            fb ^= (self.state >> (t - 1)) & 1;
        }
        let mask = (1u64 << self.width) - 1;
        self.state = ((self.state << 1) | fb) & mask;
        out
    }

    /// The sequence period (`2^width − 1` for these maximal taps).
    pub fn period(&self) -> u64 {
        (1u64 << self.width) - 1
    }
}

/// A [`PatternSource`] backed by a single maximal-length LFSR, assigning
/// consecutive bits of the LFSR stream to consecutive primary inputs —
/// the standard serial scan-chain loading model.
///
/// # Example
///
/// ```
/// use tpi_sim::{LfsrPatterns, PatternSource};
/// let mut src = LfsrPatterns::new(5, 0xbeef)?;
/// let mut block = [0u64; 5];
/// assert_eq!(src.fill(&mut block), 64);
/// # Ok::<(), tpi_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LfsrPatterns {
    lfsr: Lfsr,
    seed: u64,
    n_inputs: usize,
}

impl LfsrPatterns {
    /// Create a generator for `n_inputs` inputs. Uses a width-32 register
    /// regardless of input count (bits are streamed serially).
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for configurable
    /// widths/polynomials.
    pub fn new(n_inputs: usize, seed: u64) -> Result<LfsrPatterns, tpi_netlist::NetlistError> {
        let lfsr = Lfsr::maximal(32, seed).expect("width 32 is always valid");
        Ok(LfsrPatterns {
            lfsr,
            seed,
            n_inputs,
        })
    }

    /// Create with an explicit register width (2..=32).
    ///
    /// # Errors
    ///
    /// [`tpi_netlist::NetlistError::InvalidTransform`] if `width` is out of
    /// range.
    pub fn with_width(
        n_inputs: usize,
        width: u32,
        seed: u64,
    ) -> Result<LfsrPatterns, tpi_netlist::NetlistError> {
        let lfsr = Lfsr::maximal(width, seed).ok_or_else(|| {
            tpi_netlist::NetlistError::InvalidTransform {
                message: format!("LFSR width {width} outside 2..=32"),
            }
        })?;
        Ok(LfsrPatterns {
            lfsr,
            seed,
            n_inputs,
        })
    }
}

impl PatternSource for LfsrPatterns {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        debug_assert_eq!(words.len(), self.n_inputs);
        for w in words.iter_mut() {
            *w = 0;
        }
        for p in 0..64 {
            for w in words.iter_mut() {
                if self.lfsr.step() {
                    *w |= 1 << p;
                }
            }
        }
        64
    }

    fn reset(&mut self) {
        self.lfsr = Lfsr::maximal(self.lfsr.width(), self.seed).expect("width already validated");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultSimulator, FaultUniverse};
    use tpi_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn lfsr_stream_is_block_width_invariant_under_fault_sim() {
        // The wide fault simulator composes sequential LFSR fills into
        // one block; coverage must not depend on the block width.
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(6, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..3], "a").unwrap();
        let o = b.balanced_tree(GateKind::Or, &xs[3..], "o").unwrap();
        let y = b.gate(GateKind::Xor, vec![a, o], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = LfsrPatterns::new(6, 0xace1).unwrap();
        let reference = narrow.run(&mut src, 500, universe.faults()).unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = LfsrPatterns::new(6, 0xace1).unwrap();
            let result = wide.run(&mut src, 500, universe.faults()).unwrap();
            assert_eq!(result.patterns_applied(), reference.patterns_applied());
            for i in 0..universe.len() {
                assert_eq!(
                    result.first_detection(i),
                    reference.first_detection(i),
                    "fault {i} at w={w}"
                );
            }
        }
    }

    #[test]
    fn maximal_period_for_small_widths() {
        for width in 2..=12u32 {
            let mut lfsr = Lfsr::maximal(width, 1).unwrap();
            let start = lfsr.state();
            let mut period = 0u64;
            loop {
                lfsr.step();
                period += 1;
                assert!(period <= lfsr.period(), "width {width} not maximal");
                if lfsr.state() == start {
                    break;
                }
            }
            assert_eq!(period, lfsr.period(), "width {width}");
        }
    }

    #[test]
    fn zero_seed_coerced() {
        let lfsr = Lfsr::maximal(8, 0).unwrap();
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut lfsr = Lfsr::maximal(6, 0b101010).unwrap();
        for _ in 0..200 {
            lfsr.step();
            assert_ne!(lfsr.state(), 0);
        }
    }

    #[test]
    fn invalid_width_rejected() {
        assert!(Lfsr::maximal(1, 1).is_none());
        assert!(Lfsr::maximal(33, 1).is_none());
        assert!(LfsrPatterns::with_width(3, 64, 1).is_err());
    }

    #[test]
    fn stream_is_balanced() {
        let mut src = LfsrPatterns::new(2, 12345).unwrap();
        let mut ones = 0u32;
        let mut w = [0u64; 2];
        for _ in 0..128 {
            src.fill(&mut w);
            ones += w[0].count_ones() + w[1].count_ones();
        }
        let freq = f64::from(ones) / (128.0 * 128.0);
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn reset_replays_stream() {
        let mut src = LfsrPatterns::new(3, 777).unwrap();
        let mut first = [0u64; 3];
        src.fill(&mut first);
        src.reset();
        let mut again = [0u64; 3];
        src.fill(&mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = LfsrPatterns::new(1, 1).unwrap();
        let mut b = LfsrPatterns::new(1, 2).unwrap();
        let (mut wa, mut wb) = ([0u64; 1], [0u64; 1]);
        a.fill(&mut wa);
        b.fill(&mut wb);
        assert_ne!(wa, wb);
    }
}
