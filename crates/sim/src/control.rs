//! Cooperative cancellation, deadlines and work budgets.
//!
//! Long-running layers (fault-sim block loops, parallel workers, the
//! DP/greedy/constructive search loops, ATPG top-off) poll a shared
//! [`RunControl`] token at coarse grain — once per pattern block, per
//! search round, per target fault — and unwind cleanly with a
//! [`StopReason`] instead of running to completion. The token is cheap
//! to clone (an `Arc`) and an *unlimited* token is a `None`, so the
//! polling fast path in a hot loop is a single branch.
//!
//! Interruption is cooperative, never preemptive: a caller that stops a
//! run always gets back whatever the interrupted layer had already
//! committed (an *anytime* result), and the worker thread actually
//! exits rather than being detached.
//!
//! Budget-based interruption ([`RunControl::with_budget`]) is
//! deterministic: work is charged in pattern units at block granularity,
//! so two runs of the same configuration stop at the same point. The
//! wall-clock deadline is inherently not.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a controlled run stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// [`RunControl::cancel`] was called (directly or on a parent token).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The charged work exceeded the configured budget.
    BudgetExhausted,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExpired => write!(f, "deadline expired"),
            StopReason::BudgetExhausted => write!(f, "work budget exhausted"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Work budget in caller-defined units (the fault simulator charges
    /// pattern lanes). `u64::MAX` means unbudgeted.
    budget: u64,
    spent: AtomicU64,
    /// Hierarchical cancellation: a batch-global token parents every
    /// per-job token, so one `cancel()` stops the whole pool.
    parent: Option<RunControl>,
}

/// A shared cancellation/deadline/budget token (see module docs).
///
/// Clones share state: cancelling any clone stops every holder at its
/// next poll. The [`Default`]/[`RunControl::unlimited`] token has no
/// shared state at all and never stops anything — polling it is free.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    inner: Option<Arc<Inner>>,
}

impl RunControl {
    /// A token that never interrupts; polling is a single `None` check.
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A token with no limits that can still be [`cancel`led](Self::cancel).
    pub fn cancellable() -> Self {
        Self::build(None, u64::MAX, None)
    }

    /// A token that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::build(Instant::now().checked_add(timeout), u64::MAX, None)
    }

    /// A token that expires after `units` of charged work (deterministic;
    /// see [`charge`](Self::charge)).
    pub fn with_budget(units: u64) -> Self {
        Self::build(None, units, None)
    }

    /// A token with an optional deadline and an optional budget.
    pub fn with_limits(timeout: Option<Duration>, budget: Option<u64>) -> Self {
        match (timeout, budget) {
            (None, None) => Self::unlimited(),
            _ => Self::build(
                timeout.and_then(|t| Instant::now().checked_add(t)),
                budget.unwrap_or(u64::MAX),
                None,
            ),
        }
    }

    /// A child token with its own optional deadline that also observes
    /// cancellation/expiry of `self` (checked first on every poll).
    pub fn child_with_deadline(&self, timeout: Option<Duration>) -> Self {
        Self::build(
            timeout.and_then(|t| Instant::now().checked_add(t)),
            u64::MAX,
            Some(self.clone()),
        )
    }

    fn build(deadline: Option<Instant>, budget: u64, parent: Option<RunControl>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                budget,
                spent: AtomicU64::new(0),
                parent,
            })),
        }
    }

    /// Request cancellation; every holder of a clone (or of a child
    /// token) observes it at its next [`poll`](Self::poll).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether [`cancel`](Self::cancel) has been called on this token or
    /// any ancestor.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.parent.as_ref().is_some_and(RunControl::is_cancelled)
            }
        }
    }

    /// Charge `units` of completed work against the budget (a no-op on
    /// tokens without one). The fault simulator charges applied pattern
    /// lanes once per block.
    pub fn charge(&self, units: u64) {
        if let Some(inner) = &self.inner {
            if inner.budget != u64::MAX {
                inner.spent.fetch_add(units, Ordering::Relaxed);
            }
            if let Some(parent) = &inner.parent {
                parent.charge(units);
            }
        }
    }

    /// Check for interruption. Returns the first applicable reason, in
    /// the order parent → cancel → deadline → budget, or `None` to keep
    /// running. Intended to be called at coarse grain (per block / per
    /// round); an unlimited token costs one branch.
    pub fn poll(&self) -> Option<StopReason> {
        let inner = self.inner.as_ref()?;
        if let Some(parent) = &inner.parent {
            if let Some(reason) = parent.poll() {
                return Some(reason);
            }
        }
        if inner.cancelled.load(Ordering::Acquire) {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExpired);
            }
        }
        if inner.budget != u64::MAX && inner.spent.load(Ordering::Relaxed) >= inner.budget {
            return Some(StopReason::BudgetExhausted);
        }
        None
    }
}

/// A fault-sim result that may have been interrupted: `result` covers
/// the patterns applied before `stopped` (if any) fired.
#[derive(Debug)]
pub struct ControlledRun {
    /// First detections over the patterns actually applied.
    pub result: crate::FaultSimResult,
    /// `None` if the run completed normally.
    pub stopped: Option<StopReason>,
    /// Kernel counters for this run (merged across workers for parallel
    /// runs). Publish via [`crate::SimCounters::publish_to`].
    pub counters: crate::SimCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let c = RunControl::unlimited();
        c.charge(u64::MAX);
        assert_eq!(c.poll(), None);
        assert!(!c.is_cancelled());
        c.cancel(); // no-op on unlimited tokens
        assert_eq!(c.poll(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = RunControl::cancellable();
        let b = a.clone();
        assert_eq!(b.poll(), None);
        a.cancel();
        assert_eq!(b.poll(), Some(StopReason::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let c = RunControl::with_deadline(Duration::ZERO);
        assert_eq!(c.poll(), Some(StopReason::DeadlineExpired));
    }

    #[test]
    fn budget_exhausts_after_charge() {
        let c = RunControl::with_budget(100);
        assert_eq!(c.poll(), None);
        c.charge(99);
        assert_eq!(c.poll(), None);
        c.charge(1);
        assert_eq!(c.poll(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn child_observes_parent_cancel() {
        let parent = RunControl::cancellable();
        let child = parent.child_with_deadline(Some(Duration::from_secs(3600)));
        assert_eq!(child.poll(), None);
        parent.cancel();
        assert_eq!(child.poll(), Some(StopReason::Cancelled));
        assert!(child.is_cancelled());
    }

    #[test]
    fn child_deadline_is_its_own() {
        let parent = RunControl::cancellable();
        let child = parent.child_with_deadline(Some(Duration::ZERO));
        assert_eq!(child.poll(), Some(StopReason::DeadlineExpired));
        assert_eq!(parent.poll(), None);
    }

    #[test]
    fn with_limits_none_is_unlimited() {
        let c = RunControl::with_limits(None, None);
        assert!(c.inner.is_none());
    }
}
