//! Detection-probability estimation and propagation profiles.
//!
//! These functions turn the fault simulator into a measurement instrument:
//!
//! * [`detection_probabilities`] — sampled per-fault detection
//!   probabilities under a pattern source (Monte-Carlo ground truth for
//!   the analytic COP estimates in `tpi-testability`);
//! * [`exact_detection_probabilities`] — exhaustive enumeration for small
//!   circuits (exact ground truth);
//! * [`propagation_profile`] — for each fault, the probability that its
//!   effect is *present* at each node, the quantity driving observation-
//!   point covering.

use std::collections::HashMap;

use tpi_netlist::{Circuit, NetlistError, NodeId};

use crate::{ExhaustivePatterns, Fault, FaultSimulator, PatternSource};

/// Estimate each fault's detection probability by applying `n_patterns`
/// patterns from `source` (no fault dropping), simulating wide blocks at
/// the default width. Estimates are bit-identical at every block width.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn detection_probabilities(
    circuit: &Circuit,
    faults: &[Fault],
    source: &mut dyn PatternSource,
    n_patterns: u64,
) -> Result<Vec<f64>, NetlistError> {
    detection_probabilities_with(
        circuit,
        faults,
        source,
        n_patterns,
        crate::DEFAULT_BLOCK_WORDS,
    )
}

/// [`detection_probabilities`] with an explicit block width (words per
/// simulation pass; see
/// [`FaultSimulator::with_block_words`](crate::FaultSimulator::with_block_words)).
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
///
/// # Panics
///
/// Panics if `block_words` is not 1, 2, 4 or 8.
pub fn detection_probabilities_with(
    circuit: &Circuit,
    faults: &[Fault],
    source: &mut dyn PatternSource,
    n_patterns: u64,
    block_words: usize,
) -> Result<Vec<f64>, NetlistError> {
    let mut sim = FaultSimulator::with_block_words(circuit, block_words)?;
    let (counts, applied) = sim.run_counting(source, n_patterns, faults)?;
    let denom = applied.max(1) as f64;
    Ok(counts.iter().map(|&c| c as f64 / denom).collect())
}

/// Exact per-fault detection probabilities by exhaustive input
/// enumeration.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
///
/// # Panics
///
/// Panics if the circuit has more than 24 primary inputs (the enumeration
/// would be prohibitive).
pub fn exact_detection_probabilities(
    circuit: &Circuit,
    faults: &[Fault],
) -> Result<Vec<f64>, NetlistError> {
    let n_inputs = circuit.inputs().len();
    assert!(
        n_inputs <= 24,
        "exhaustive enumeration limited to 24 inputs, circuit has {n_inputs}"
    );
    let mut src = ExhaustivePatterns::new(n_inputs);
    let total = src.total();
    detection_probabilities(circuit, faults, &mut src, total)
}

/// For each fault and node: probability that the fault's effect is present
/// at that node (a simulation-based propagation profile).
///
/// Row `f` of the profile maps node → presence probability; nodes never
/// reached are absent. Presence at a node is exactly the detection
/// probability an observation point at that node would provide.
#[derive(Clone, Debug)]
pub struct PropagationProfile {
    per_fault: Vec<HashMap<NodeId, u64>>,
    patterns: u64,
}

impl PropagationProfile {
    /// Number of patterns the profile was estimated over.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Probability that fault `f`'s effect is present at `node`.
    pub fn presence(&self, fault_index: usize, node: NodeId) -> f64 {
        let count = self.per_fault[fault_index].get(&node).copied().unwrap_or(0);
        count as f64 / self.patterns.max(1) as f64
    }

    /// All nodes at which fault `f` was ever present, with probabilities.
    pub fn row(&self, fault_index: usize) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let denom = self.patterns.max(1) as f64;
        self.per_fault[fault_index]
            .iter()
            .map(move |(&n, &c)| (n, c as f64 / denom))
    }

    /// Number of fault rows.
    pub fn fault_count(&self) -> usize {
        self.per_fault.len()
    }
}

/// Estimate a [`PropagationProfile`] for `faults` under `n_patterns`
/// patterns from `source`.
///
/// # Errors
///
/// [`NetlistError::Cycle`] for cyclic circuits.
pub fn propagation_profile(
    circuit: &Circuit,
    faults: &[Fault],
    source: &mut dyn PatternSource,
    n_patterns: u64,
) -> Result<PropagationProfile, NetlistError> {
    let mut sim = FaultSimulator::new(circuit)?;
    let mut per_fault: Vec<HashMap<NodeId, u64>> = vec![HashMap::new(); faults.len()];
    let (_, applied) = sim.run_visiting(source, n_patterns, faults, |fi, node, diff| {
        *per_fault[fi].entry(node).or_insert(0) += u64::from(diff.count_ones());
    })?;
    Ok(PropagationProfile {
        per_fault,
        patterns: applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn and3() -> Circuit {
        let mut b = CircuitBuilder::new("and3");
        let xs = b.inputs(3, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        b.finish().unwrap()
    }

    #[test]
    fn exact_probabilities_on_and3() {
        let c = and3();
        let root = c.outputs()[0];
        let probs =
            exact_detection_probabilities(&c, &[Fault::stem_sa0(root), Fault::stem_sa1(root)])
                .unwrap();
        // SA0 at the root: detected when output is 1 → 1/8.
        assert!((probs[0] - 0.125).abs() < 1e-12);
        // SA1 at the root: detected when output is 0 → 7/8.
        assert!((probs[1] - 0.875).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact_within_tolerance() {
        let c = and3();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let exact = exact_detection_probabilities(&c, universe.faults()).unwrap();
        let mut src = RandomPatterns::new(3, 2024);
        let sampled = detection_probabilities(&c, universe.faults(), &mut src, 20_000).unwrap();
        for (i, (&e, &s)) in exact.iter().zip(&sampled).enumerate() {
            assert!((e - s).abs() < 0.02, "fault {i}: exact {e} sampled {s}");
        }
    }

    #[test]
    fn probabilities_are_block_width_invariant() {
        let c = and3();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut src = RandomPatterns::new(3, 7);
        let narrow =
            detection_probabilities_with(&c, universe.faults(), &mut src, 1000, 1).unwrap();
        for w in [2usize, 4, 8] {
            let mut src = RandomPatterns::new(3, 7);
            let wide =
                detection_probabilities_with(&c, universe.faults(), &mut src, 1000, w).unwrap();
            assert_eq!(narrow, wide, "w={w}");
        }
    }

    #[test]
    fn profile_presence_matches_manual_analysis() {
        // x0/SA1 on AND(x0, x1): present at x0 whenever x0=0 (p=1/2);
        // present at the gate when x0=0 ∧ x1=1 (p=1/4).
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(2, "x");
        let g = b.gate(GateKind::And, vec![xs[0], xs[1]], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let fault = Fault::stem_sa1(xs[0]);
        let mut src = ExhaustivePatterns::new(2);
        let profile = propagation_profile(&c, &[fault], &mut src, 4).unwrap();
        assert!((profile.presence(0, xs[0]) - 0.5).abs() < 1e-12);
        assert!((profile.presence(0, g) - 0.25).abs() < 1e-12);
        assert_eq!(profile.presence(0, xs[1]), 0.0);
        assert_eq!(profile.fault_count(), 1);
        assert_eq!(profile.patterns(), 4);
    }

    #[test]
    fn profile_row_iterates_reached_nodes() {
        let c = and3();
        let x0 = c.inputs()[0];
        let mut src = ExhaustivePatterns::new(3);
        let profile = propagation_profile(&c, &[Fault::stem_sa0(x0)], &mut src, 8).unwrap();
        let row: Vec<(NodeId, f64)> = profile.row(0).collect();
        assert!(!row.is_empty());
        assert!(row.iter().all(|&(_, p)| p > 0.0 && p <= 1.0));
    }

    #[test]
    #[should_panic(expected = "exhaustive enumeration limited")]
    fn exact_rejects_wide_circuits() {
        let mut b = CircuitBuilder::new("wide");
        let xs = b.inputs(30, "x");
        let root = b.balanced_tree(GateKind::Or, &xs, "g").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let _ = exact_detection_probabilities(&c, &[Fault::stem_sa0(root)]);
    }
}
