//! Structural equivalence collapsing of stuck-at faults.
//!
//! Two faults are *equivalent* when every test pattern detects either both
//! or neither; only one representative per equivalence class needs to be
//! targeted. This module implements the classical gate-local rules:
//!
//! | gate  | rule                                                  |
//! |-------|-------------------------------------------------------|
//! | BUF   | in SA-v ≡ out SA-v                                    |
//! | NOT   | in SA-v ≡ out SA-v̄                                   |
//! | AND   | any in SA-0 ≡ out SA-0                                |
//! | NAND  | any in SA-0 ≡ out SA-1                                |
//! | OR    | any in SA-1 ≡ out SA-1                                |
//! | NOR   | any in SA-1 ≡ out SA-0                                |
//! | XOR/XNOR | no gate-local equivalences                         |
//!
//! Single-input AND/OR (NAND/NOR) degenerate to BUF (NOT) and collapse in
//! both polarities. Representatives are chosen closest to the primary
//! inputs (lowest logic level), stems preferred over branches.

use std::collections::HashMap;

use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};

use crate::{Fault, FaultSite};

/// Partition `faults` into structural equivalence classes.
///
/// Returns the classes as index lists into `faults`, each class led by its
/// representative, classes ordered by representative.
///
/// # Errors
///
/// [`NetlistError::Cycle`] if the circuit is cyclic.
pub fn equivalence_classes(
    circuit: &Circuit,
    faults: &[Fault],
) -> Result<Vec<Vec<usize>>, NetlistError> {
    let topo = Topology::of(circuit)?;
    let index: HashMap<Fault, usize> = faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut uf = UnionFind::new(faults.len());

    for id in circuit.node_ids() {
        let node = circuit.node(id);
        let kind = node.kind();
        if kind.is_source() {
            continue;
        }
        let unary = node.fanins().len() == 1;
        // (input stuck value, output stuck value) pairs to unite per pin.
        let pairs: &[(bool, bool)] = match kind {
            GateKind::Buf => &[(false, false), (true, true)],
            GateKind::Not => &[(false, true), (true, false)],
            GateKind::And if unary => &[(false, false), (true, true)],
            GateKind::Or if unary => &[(false, false), (true, true)],
            GateKind::Nand if unary => &[(false, true), (true, false)],
            GateKind::Nor if unary => &[(false, true), (true, false)],
            GateKind::And => &[(false, false)],
            GateKind::Nand => &[(false, true)],
            GateKind::Or => &[(true, true)],
            GateKind::Nor => &[(true, false)],
            GateKind::Xor | GateKind::Xnor => &[],
            _ => &[],
        };
        if pairs.is_empty() {
            continue;
        }
        for (pin, &driver) in node.fanins().iter().enumerate() {
            for &(in_v, out_v) in pairs {
                let input_fault = Fault {
                    site: input_line_site(circuit, &topo, driver, id, pin as u32),
                    stuck: in_v,
                };
                let output_fault = Fault {
                    site: FaultSite::Stem(id),
                    stuck: out_v,
                };
                if let (Some(&a), Some(&b)) = (index.get(&input_fault), index.get(&output_fault)) {
                    uf.union(a, b);
                }
            }
        }
    }

    // Gather classes, pick representatives nearest the inputs.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..faults.len() {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let key = |i: usize| {
        let f = faults[i];
        match f.site {
            FaultSite::Stem(n) => (topo.level(n), 0u8, n.index(), 0u32, f.stuck),
            FaultSite::Branch { gate, pin } => (topo.level(gate), 1u8, gate.index(), pin, f.stuck),
        }
    };
    let mut classes: Vec<Vec<usize>> = groups
        .into_values()
        .map(|mut class| {
            class.sort_by_key(|&i| key(i));
            class
        })
        .collect();
    classes.sort_by_key(|class| key(class[0]));
    Ok(classes)
}

/// The fault site of the line entering `gate` at `pin`, driven by
/// `driver`: the driver's stem when it does not fan out, otherwise the
/// branch itself.
fn input_line_site(
    circuit: &Circuit,
    topo: &Topology,
    driver: NodeId,
    gate: NodeId,
    pin: u32,
) -> FaultSite {
    if topo.is_stem(circuit, driver) {
        FaultSite::Branch { gate, pin }
    } else {
        FaultSite::Stem(driver)
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo;
    use crate::FaultUniverse;
    use tpi_netlist::CircuitBuilder;

    fn inverter_chain(len: usize) -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        let mut prev = b.input("a");
        for i in 0..len {
            prev = b
                .gate(GateKind::Not, vec![prev], format!("n{i}_g"))
                .unwrap();
        }
        b.output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        let c = inverter_chain(4);
        let u = FaultUniverse::collapsed(&c).unwrap();
        // All 10 stem faults collapse into 2 alternating-polarity classes.
        assert_eq!(u.len(), 2);
        assert_eq!(u.class_size(0) + u.class_size(1), 10);
    }

    #[test]
    fn and_gate_collapse() {
        let mut b = CircuitBuilder::new("g");
        let xs = b.inputs(2, "x");
        let g = b.gate(GateKind::And, vec![xs[0], xs[1]], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let u = FaultUniverse::collapsed(&c).unwrap();
        // Full set: 6 stem faults. x0/SA0 ≡ x1/SA0 ≡ g/SA0 → one class of 3.
        assert_eq!(u.total_uncollapsed(), 6);
        assert_eq!(u.len(), 4);
        assert!((0..u.len()).any(|i| u.class_size(i) == 3));
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut b = CircuitBuilder::new("g");
        let xs = b.inputs(2, "x");
        let g = b.gate(GateKind::Xor, vec![xs[0], xs[1]], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let u = FaultUniverse::collapsed(&c).unwrap();
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn branch_faults_collapse_through_consuming_gate() {
        // a fans out to two AND gates; the branch SA0s are equivalent to
        // the gates' output SA0s, but not to a's stem SA0.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let full = FaultUniverse::full(&c).unwrap();
        let classes = equivalence_classes(&c, full.faults()).unwrap();
        // Find the class containing g1/SA0.
        let g1_id = c.find_node("g1").unwrap();
        let target = Fault::stem_sa0(g1_id);
        let class = classes
            .iter()
            .find(|cl| cl.iter().any(|&i| full.faults()[i] == target))
            .unwrap();
        // g1/SA0 ≡ x/SA0 ≡ branch(a→g1)/SA0: class of 3.
        assert_eq!(class.len(), 3);
        // a's stem SA0 must not be in it.
        let a_id = c.find_node("a").unwrap();
        assert!(!class
            .iter()
            .any(|&i| full.faults()[i] == Fault::stem_sa0(a_id)));
    }

    /// Semantic check: every fault in a class has identical detecting
    /// pattern sets (verified exhaustively on a small circuit).
    #[test]
    fn classes_are_semantically_equivalent() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(3, "x");
        let g1 = b.gate(GateKind::Nand, vec![xs[0], xs[1]], "g1").unwrap();
        let g2 = b.gate(GateKind::Nor, vec![g1, xs[2]], "g2").unwrap();
        b.output(g2);
        let c = b.finish().unwrap();
        let full = FaultUniverse::full(&c).unwrap();
        let classes = equivalence_classes(&c, full.faults()).unwrap();
        let probs = montecarlo::exact_detection_probabilities(&c, full.faults()).unwrap();
        for class in &classes {
            let p0 = probs[class[0]];
            for &i in class {
                assert!(
                    (probs[i] - p0).abs() < 1e-12,
                    "fault {} in class with detection prob {} vs {}",
                    full.faults()[i].describe(&c),
                    probs[i],
                    p0
                );
            }
        }
    }

    #[test]
    fn representative_is_closest_to_inputs() {
        let c = inverter_chain(3);
        let u = FaultUniverse::collapsed(&c).unwrap();
        // Representatives should be the PI stem faults (level 0).
        let a = c.find_node("a").unwrap();
        assert!(u.faults().contains(&Fault::stem_sa0(a)));
        assert!(u.faults().contains(&Fault::stem_sa1(a)));
    }
}
