//! Bit-parallel logic and stuck-at fault simulation for BIST research.
//!
//! `tpi-sim` is the measurement substrate of the `krishnamurthy-tpi`
//! workspace: every test-point-insertion result is ultimately verified by
//! the fault simulator in this crate ("must write fault simulator").
//!
//! * [`LogicSim`] — bit-parallel logic simulation over
//!   [`tpi_netlist::Circuit`]s through a compiled structure-of-arrays
//!   kernel processing configurable wide blocks of
//!   `block_words × 64` patterns per pass (see [`DEFAULT_BLOCK_WORDS`]);
//! * [`PatternSource`] — pattern generation abstraction, with
//!   [`RandomPatterns`] (seeded PRNG), [`LfsrPatterns`] (hardware-faithful
//!   maximal-length LFSR), [`ExhaustivePatterns`] and
//!   [`IndependentPatterns`] (per-input counter streams, stable under
//!   input insertion — the incremental engine's source) implementations;
//! * [`Misr`] — multiple-input signature register for response compaction;
//! * [`Fault`], [`FaultUniverse`], [`collapse`] — single-stuck-at fault
//!   model with structural equivalence collapsing;
//! * [`FaultSimulator`] — parallel-pattern fault simulation with fault
//!   dropping, either event-driven per fault (PPSFP) or via critical
//!   path tracing over fanout-free regions (see [`DetectionMode`]);
//! * [`montecarlo`] — detection-probability estimation (sampled and
//!   exhaustive) and node-level propagation profiles;
//! * [`RunControl`] — cooperative cancellation/deadline/budget token
//!   polled per pattern block, yielding anytime
//!   [`ControlledRun`] results (see
//!   [`FaultSimulator::run_controlled`]).
//!
//! # Example: fault coverage of `c17` under 1 000 LFSR patterns
//!
//! ```
//! use tpi_netlist::bench_format::parse_bench;
//! use tpi_sim::{FaultSimulator, FaultUniverse, LfsrPatterns};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = parse_bench(
//!     "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
//!      OUTPUT(22)\nOUTPUT(23)\n\
//!      10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
//!      19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
//! )?;
//! let universe = FaultUniverse::collapsed(&c17)?;
//! let mut sim = FaultSimulator::new(&c17)?;
//! let mut patterns = LfsrPatterns::new(c17.inputs().len(), 0xace1)?;
//! let result = sim.run(&mut patterns, 1000, universe.faults())?;
//! assert!(result.coverage() > 0.99); // c17 is easy
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid` so exactly one module — [`simd`], the
// audited runtime-dispatch boundary — can opt back in with a scoped
// `allow`; everything else in the crate still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod collapse;
mod compile;
mod control;
mod coverage;
mod fault;
mod fsim;
mod lfsr;
mod logic;
mod metrics;
mod misr;
pub mod montecarlo;
pub mod parallel;
mod patterns;
mod simd;
mod weighted;

pub use candidate::{score_candidate_groups, BaseDetections, BatchScores, GroupScore};
pub use compile::{block_words_supported, DEFAULT_BLOCK_WORDS, MAX_BLOCK_WORDS};
pub use control::{ControlledRun, RunControl, StopReason};
pub use coverage::{CoveragePoint, FaultSimResult};
pub use fault::{Fault, FaultSite, FaultUniverse};
pub use fsim::{BitmapRun, DetectionMode, FaultSimulator, SimOptions};
pub use lfsr::{Lfsr, LfsrPatterns};
pub use logic::LogicSim;
pub use metrics::SimCounters;
pub use misr::Misr;
pub use patterns::{ExhaustivePatterns, IndependentPatterns, PatternSource, RandomPatterns};
pub use simd::{BackendChoice, SimdBackend};
pub use weighted::WeightedPatterns;
