use std::fmt;

use tpi_netlist::{Circuit, NetlistError, NodeId, Topology};

/// Location of a single stuck-at fault.
///
/// Stuck-at faults live on *lines*. Every node output is a line
/// ([`FaultSite::Stem`]); when a signal fans out to several consumers, each
/// consumer pin is an additional, independently faultable line
/// ([`FaultSite::Branch`]). On fanout-free signals the branch coincides
/// with the stem and is not enumerated separately.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output line of a node.
    Stem(NodeId),
    /// A fanout branch: pin `pin` of gate `gate`.
    Branch {
        /// The consuming gate.
        gate: NodeId,
        /// Zero-based pin index within the gate's fanins.
        pin: u32,
    },
}

/// A single stuck-at fault: a site stuck at `stuck` (`false` = SA0,
/// `true` = SA1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The stuck value.
    pub stuck: bool,
}

impl Fault {
    /// Stuck-at-0 on a node's output line.
    pub fn stem_sa0(node: NodeId) -> Fault {
        Fault {
            site: FaultSite::Stem(node),
            stuck: false,
        }
    }

    /// Stuck-at-1 on a node's output line.
    pub fn stem_sa1(node: NodeId) -> Fault {
        Fault {
            site: FaultSite::Stem(node),
            stuck: true,
        }
    }

    /// Render with circuit names, e.g. `g3/SA0` or `g5.pin1/SA1`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            FaultSite::Stem(n) => format!("{}/{}", circuit.node_name(n), sa),
            FaultSite::Branch { gate, pin } => {
                format!("{}.pin{}/{}", circuit.node_name(gate), pin, sa)
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            FaultSite::Stem(n) => write!(f, "{n}/{sa}"),
            FaultSite::Branch { gate, pin } => write!(f, "{gate}.pin{pin}/{sa}"),
        }
    }
}

/// The set of faults targeted by an experiment.
///
/// [`FaultUniverse::full`] enumerates every line fault; in
/// [`FaultUniverse::collapsed`] structurally equivalent faults are merged
/// and one representative per class is kept (the usual denominator for
/// fault-coverage numbers).
#[derive(Clone, Debug)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    /// Equivalence classes (indices into a full enumeration) represented by
    /// each entry of `faults`; for a full universe each class is a
    /// singleton.
    class_sizes: Vec<usize>,
    total_uncollapsed: usize,
}

impl FaultUniverse {
    /// Enumerate all single stuck-at faults: SA0/SA1 on every node output,
    /// plus SA0/SA1 on every fanout branch of multi-fanout signals.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] if the circuit is cyclic.
    pub fn full(circuit: &Circuit) -> Result<FaultUniverse, NetlistError> {
        let faults = enumerate_full(circuit)?;
        let n = faults.len();
        Ok(FaultUniverse {
            faults,
            class_sizes: vec![1; n],
            total_uncollapsed: n,
        })
    }

    /// Enumerate and structurally collapse equivalent faults
    /// (see [`collapse`](crate::collapse)).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] if the circuit is cyclic.
    pub fn collapsed(circuit: &Circuit) -> Result<FaultUniverse, NetlistError> {
        let full = enumerate_full(circuit)?;
        let classes = crate::collapse::equivalence_classes(circuit, &full)?;
        let mut faults = Vec::with_capacity(classes.len());
        let mut class_sizes = Vec::with_capacity(classes.len());
        for class in &classes {
            faults.push(full[class[0]]);
            class_sizes.push(class.len());
        }
        Ok(FaultUniverse {
            faults,
            class_sizes,
            total_uncollapsed: full.len(),
        })
    }

    /// Build a universe from an explicit fault list (e.g. the undetected
    /// remainder of a previous run).
    pub fn from_faults(faults: Vec<Fault>) -> FaultUniverse {
        let n = faults.len();
        FaultUniverse {
            faults,
            class_sizes: vec![1; n],
            total_uncollapsed: n,
        }
    }

    /// The target faults (class representatives when collapsed).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of target faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Size of the equivalence class represented by fault `i`.
    pub fn class_size(&self, i: usize) -> usize {
        self.class_sizes[i]
    }

    /// Number of faults before collapsing.
    pub fn total_uncollapsed(&self) -> usize {
        self.total_uncollapsed
    }
}

fn enumerate_full(circuit: &Circuit) -> Result<Vec<Fault>, NetlistError> {
    let topo = Topology::of(circuit)?;
    let mut faults = Vec::new();
    for id in circuit.node_ids() {
        for stuck in [false, true] {
            faults.push(Fault {
                site: FaultSite::Stem(id),
                stuck,
            });
        }
    }
    for id in circuit.node_ids() {
        if topo.is_stem(circuit, id) {
            for fo in topo.fanouts(id) {
                for stuck in [false, true] {
                    faults.push(Fault {
                        site: FaultSite::Branch {
                            gate: fo.gate,
                            pin: fo.pin,
                        },
                        stuck,
                    });
                }
            }
        }
    }
    Ok(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn fanout_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate(GateKind::And, vec![a, c], "g1").unwrap();
        let g2 = b.gate(GateKind::Not, vec![g1], "g2").unwrap();
        let g3 = b.gate(GateKind::Buf, vec![g1], "g3").unwrap();
        b.output(g2);
        b.output(g3);
        b.finish().unwrap()
    }

    #[test]
    fn full_universe_counts() {
        let c = fanout_circuit();
        let u = FaultUniverse::full(&c).unwrap();
        // 5 nodes × 2 stems + 1 stem (g1) fans out to 2 branches × 2.
        assert_eq!(u.len(), 10 + 4);
        assert_eq!(u.total_uncollapsed(), 14);
        assert!(u.class_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn collapsed_universe_is_smaller_and_partitions() {
        let c = fanout_circuit();
        let u = FaultUniverse::collapsed(&c).unwrap();
        assert!(u.len() < 14);
        let total: usize = (0..u.len()).map(|i| u.class_size(i)).sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn fanout_free_circuit_has_no_branch_faults() {
        let mut b = CircuitBuilder::new("t");
        let xs = b.inputs(2, "x");
        let g = b.gate(GateKind::And, vec![xs[0], xs[1]], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let u = FaultUniverse::full(&c).unwrap();
        assert_eq!(u.len(), 6);
        assert!(u
            .faults()
            .iter()
            .all(|f| matches!(f.site, FaultSite::Stem(_))));
    }

    #[test]
    fn describe_and_display() {
        let c = fanout_circuit();
        let g1 = c.find_node("g1").unwrap();
        let f = Fault::stem_sa0(g1);
        assert_eq!(f.describe(&c), "g1/SA0");
        assert!(f.to_string().contains("/SA0"));
        let bf = Fault {
            site: FaultSite::Branch {
                gate: c.find_node("g2").unwrap(),
                pin: 0,
            },
            stuck: true,
        };
        assert_eq!(bf.describe(&c), "g2.pin0/SA1");
    }

    #[test]
    fn from_faults_passthrough() {
        let c = fanout_circuit();
        let g1 = c.find_node("g1").unwrap();
        let u = FaultUniverse::from_faults(vec![Fault::stem_sa0(g1)]);
        assert_eq!(u.len(), 1);
        assert!(!u.is_empty());
    }
}
