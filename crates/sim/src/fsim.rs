use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tpi_netlist::{Circuit, NetlistError, NodeId, Topology};

use crate::{Fault, FaultSimResult, FaultSite, LogicSim, PatternSource};

/// Event-driven parallel-pattern single-fault-propagation (PPSFP) fault
/// simulator.
///
/// Per block of 64 patterns the fault-free circuit is simulated once; each
/// live fault is then injected and its effects propagated through its
/// fanout cone only, in level order, comparing against the good values at
/// the primary outputs. Faults are dropped at first detection in
/// [`run`](FaultSimulator::run).
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_sim::{FaultSimulator, FaultUniverse, RandomPatterns};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let faults = FaultUniverse::collapsed(&c)?;
/// let mut sim = FaultSimulator::new(&c)?;
/// let mut src = RandomPatterns::new(2, 7);
/// let result = sim.run(&mut src, 256, faults.faults())?;
/// assert_eq!(result.coverage(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator {
    sim: LogicSim,
    consumers: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
    n_inputs: usize,
    // Scratch state, reused across faults and blocks.
    good: Vec<u64>,
    overlay: Vec<u64>,
    dirty: Vec<bool>,
    touched: Vec<NodeId>,
    queued: Vec<bool>,
    queue: BinaryHeap<(Reverse<u32>, NodeId)>,
    fanin_buf: Vec<u64>,
}

impl FaultSimulator {
    /// Build a simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<FaultSimulator, NetlistError> {
        let sim = LogicSim::new(circuit)?;
        let topo = Topology::of(circuit)?;
        let n = circuit.node_count();
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for id in circuit.node_ids() {
            for fo in topo.fanouts(id) {
                // Deduplicate gates consuming the same signal twice.
                if consumers[id.index()].last() != Some(&fo.gate) {
                    consumers[id.index()].push(fo.gate);
                }
            }
        }
        Ok(FaultSimulator {
            consumers,
            outputs: circuit.outputs().to_vec(),
            n_inputs: circuit.inputs().len(),
            good: vec![0; n],
            overlay: vec![0; n],
            dirty: vec![false; n],
            touched: Vec::with_capacity(64),
            queued: vec![false; n],
            queue: BinaryHeap::new(),
            fanin_buf: Vec::with_capacity(8),
            sim,
        })
    }

    /// The simulated circuit.
    pub fn circuit(&self) -> &Circuit {
        self.sim.circuit()
    }

    /// Fault-simulate with fault dropping: apply up to `max_patterns`
    /// patterns from `source`, recording each fault's first detection.
    ///
    /// Stops early when the source is exhausted or every fault is
    /// detected.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` mirrors the
    /// other run methods.
    pub fn run(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<FaultSimResult, NetlistError> {
        let mut first_detected: Vec<Option<u64>> = vec![None; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        let mut input_words = vec![0u64; self.n_inputs];
        let mut base = 0u64;
        while base < max_patterns && !alive.is_empty() {
            let filled = source.fill(&mut input_words) as u64;
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let mask = lane_mask(lanes);
            self.sim.simulate_into(&input_words, &mut self.good);
            alive.retain(|&fi| {
                let detect = self.propagate(faults[fi], mask, |_, _| {});
                if detect != 0 {
                    first_detected[fi] = Some(base + u64::from(detect.trailing_zeros()));
                    false
                } else {
                    true
                }
            });
            base += lanes;
        }
        Ok(FaultSimResult::new(first_detected, base))
    }

    /// Count detections per fault without dropping (for detection-
    /// probability estimation). Returns per-fault detection counts and the
    /// number of patterns applied.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_counting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let mut input_words = vec![0u64; self.n_inputs];
        let mut base = 0u64;
        while base < max_patterns {
            let filled = source.fill(&mut input_words) as u64;
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let mask = lane_mask(lanes);
            self.sim.simulate_into(&input_words, &mut self.good);
            for (fi, &fault) in faults.iter().enumerate() {
                let detect = self.propagate(fault, mask, |_, _| {});
                counts[fi] += u64::from(detect.count_ones());
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Like [`run_counting`](FaultSimulator::run_counting), but also calls
    /// `visit(fault_index, node, present_mask)` for every node at which a
    /// fault's effect is present during a block — the raw material for
    /// propagation profiles (see
    /// [`montecarlo::propagation_profile`](crate::montecarlo::propagation_profile)).
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_visiting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
        mut visit: impl FnMut(usize, NodeId, u64),
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let mut input_words = vec![0u64; self.n_inputs];
        let mut base = 0u64;
        while base < max_patterns {
            let filled = source.fill(&mut input_words) as u64;
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let mask = lane_mask(lanes);
            self.sim.simulate_into(&input_words, &mut self.good);
            for (fi, &fault) in faults.iter().enumerate() {
                let detect = self.propagate(fault, mask, |node, diff| visit(fi, node, diff));
                counts[fi] += u64::from(detect.count_ones());
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Inject `fault` against the current good values and propagate its
    /// effects; returns the mask of lanes detected at any primary output.
    /// `on_diff` observes every node whose value differs (after masking).
    fn propagate(&mut self, fault: Fault, mask: u64, mut on_diff: impl FnMut(NodeId, u64)) -> u64 {
        debug_assert!(self.touched.is_empty() && self.queue.is_empty());
        let stuck_word = if fault.stuck { u64::MAX } else { 0 };
        let mut buf = std::mem::take(&mut self.fanin_buf);
        match fault.site {
            FaultSite::Stem(v) => {
                if (stuck_word ^ self.good[v.index()]) & mask == 0 {
                    self.fanin_buf = buf;
                    return 0;
                }
                self.set_overlay(v, stuck_word);
                self.push_consumers(v);
            }
            FaultSite::Branch { gate, pin } => {
                let kind = self.sim.circuit().kind(gate);
                buf.clear();
                for (i, f) in self.sim.circuit().fanins(gate).iter().enumerate() {
                    buf.push(if i == pin as usize {
                        stuck_word
                    } else {
                        self.good[f.index()]
                    });
                }
                let new = kind.eval_words(&buf);
                if (new ^ self.good[gate.index()]) & mask == 0 {
                    self.fanin_buf = buf;
                    return 0;
                }
                self.set_overlay(gate, new);
                self.push_consumers(gate);
            }
        }
        while let Some((Reverse(_), id)) = self.queue.pop() {
            self.queued[id.index()] = false;
            let kind = self.sim.circuit().kind(id);
            buf.clear();
            for i in 0..self.sim.circuit().fanins(id).len() {
                let f = self.sim.circuit().fanins(id)[i];
                buf.push(self.value(f));
            }
            let new = kind.eval_words(&buf);
            if new != self.value(id) {
                self.set_overlay(id, new);
                self.push_consumers(id);
            }
        }
        self.fanin_buf = buf;
        let mut detect = 0u64;
        for &po in &self.outputs {
            detect |= self.value(po) ^ self.good[po.index()];
        }
        detect &= mask;
        for i in 0..self.touched.len() {
            let id = self.touched[i];
            let diff = (self.overlay[id.index()] ^ self.good[id.index()]) & mask;
            if diff != 0 {
                on_diff(id, diff);
            }
        }
        self.cleanup();
        detect
    }

    fn value(&self, id: NodeId) -> u64 {
        if self.dirty[id.index()] {
            self.overlay[id.index()]
        } else {
            self.good[id.index()]
        }
    }

    fn set_overlay(&mut self, id: NodeId, word: u64) {
        if !self.dirty[id.index()] {
            self.dirty[id.index()] = true;
            self.touched.push(id);
        }
        self.overlay[id.index()] = word;
    }

    fn push_consumers(&mut self, id: NodeId) {
        // Split borrows: consumers is disjoint from queue/queued.
        let consumers = std::mem::take(&mut self.consumers[id.index()]);
        for &gate in &consumers {
            if !self.queued[gate.index()] {
                self.queued[gate.index()] = true;
                self.queue.push((Reverse(self.sim.level(gate)), gate));
            }
        }
        self.consumers[id.index()] = consumers;
    }

    fn cleanup(&mut self) {
        for id in self.touched.drain(..) {
            self.dirty[id.index()] = false;
        }
    }
}

fn lane_mask(lanes: u64) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExhaustivePatterns, FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("d");
        let g1 = b.gate(GateKind::And, vec![a, c], "g1").unwrap();
        let g2 = b.gate(GateKind::Or, vec![g1, d], "g2").unwrap();
        b.output(g2);
        b.finish().unwrap()
    }

    /// Reference: detect fault by comparing full faulty-circuit evaluation.
    fn reference_detects(c: &Circuit, fault: Fault, assignment: &[bool]) -> bool {
        let good = c.evaluate(assignment).unwrap();
        // Evaluate faulty circuit naively.
        let topo = Topology::of(c).unwrap();
        let mut vals = vec![false; c.node_count()];
        for (&i, &v) in c.inputs().iter().zip(assignment) {
            vals[i.index()] = v;
        }
        for &id in topo.order() {
            let node = c.node(id);
            if !node.kind().is_source() {
                let fanins: Vec<bool> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(pin, f)| {
                        let mut v = vals[f.index()];
                        if let FaultSite::Branch { gate, pin: fp } = fault.site {
                            if gate == id && fp as usize == pin {
                                v = fault.stuck;
                            }
                        }
                        v
                    })
                    .collect();
                vals[id.index()] = node.kind().eval(fanins.iter().copied());
            }
            if let FaultSite::Stem(v) = fault.site {
                if v == id {
                    vals[id.index()] = fault.stuck;
                }
            }
        }
        c.outputs()
            .iter()
            .any(|o| vals[o.index()] != good[o.index()])
    }

    #[test]
    fn matches_reference_exhaustively() {
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, n) = sim.run_counting(&mut src, 8, universe.faults()).unwrap();
        assert_eq!(n, 8);
        for (fi, &fault) in universe.faults().iter().enumerate() {
            let mut expected = 0u64;
            for p in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| p & (1 << i) != 0).collect();
                if reference_detects(&c, fault, &assignment) {
                    expected += 1;
                }
            }
            assert_eq!(counts[fi], expected, "fault {}", fault.describe(&c));
        }
    }

    #[test]
    fn run_with_dropping_covers_everything_detectable() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 42);
        let result = sim.run(&mut src, 512, universe.faults()).unwrap();
        assert_eq!(result.coverage(), 1.0);
        // First detections are within the applied pattern budget.
        for i in 0..universe.len() {
            assert!(result.first_detection(i).unwrap() < result.patterns_applied());
        }
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // a fans out to g1 (AND with x) and g2 (AND with y). Branch SA1 on
        // the a→g1 pin is detectable independently of the a→g2 pin.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let branch = Fault {
            site: FaultSite::Branch { gate: g1, pin: 0 },
            stuck: true,
        };
        let stem = Fault::stem_sa1(a);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, _) = sim.run_counting(&mut src, 8, &[branch, stem]).unwrap();
        // Branch SA1 detected when a=0, x=1 (2 patterns: y free).
        assert_eq!(counts[0], 2);
        // Stem SA1 detected when a=0 and (x=1 or y=1): 3 patterns.
        assert_eq!(counts[1], 3);
    }

    #[test]
    fn undetectable_fault_stays_undetected() {
        // y = OR(x, NOT(x)) is constant 1: y/SA1 is undetectable.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::Or, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        let result = sim.run(&mut src, 2, &[Fault::stem_sa1(y)]).unwrap();
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.patterns_applied(), 2);
    }

    #[test]
    fn max_patterns_respected_mid_block() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 1);
        let result = sim.run(&mut src, 10, universe.faults()).unwrap();
        assert_eq!(result.patterns_applied(), 10);
        for i in 0..universe.len() {
            if let Some(p) = result.first_detection(i) {
                assert!(p < 10);
            }
        }
    }

    #[test]
    fn observation_point_makes_fault_detectable() {
        // Internal node masked from the output; observing it exposes the
        // fault. y = AND(g, 0-ish)? Build: g = XOR(a,b); y = AND(g, c) with
        // c tied low via AND(a, NOT(a)).
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let bb = b.input("b");
        let na = b.gate(GateKind::Not, vec![a], "na").unwrap();
        let zero = b.gate(GateKind::And, vec![a, na], "zero").unwrap();
        let g = b.gate(GateKind::Xor, vec![a, bb], "g").unwrap();
        let y = b.gate(GateKind::And, vec![g, zero], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let fault = Fault::stem_sa0(g);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(2);
        let r = sim.run(&mut src, 4, &[fault]).unwrap();
        assert_eq!(r.detected_count(), 0, "masked without observation");

        let (obs, _) =
            tpi_netlist::transform::apply_plan(&c, &[tpi_netlist::TestPoint::observe(g)]).unwrap();
        let mut sim2 = FaultSimulator::new(&obs).unwrap();
        let mut src2 = ExhaustivePatterns::new(2);
        let r2 = sim2.run(&mut src2, 4, &[fault]).unwrap();
        assert_eq!(r2.detected_count(), 1, "observable after OP");
    }

    #[test]
    fn visiting_reports_fault_effects_at_nodes() {
        let c = sample();
        let g1 = c.find_node("g1").unwrap();
        let fault = Fault::stem_sa1(g1);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let mut at_g1 = 0u64;
        let (_, n) = sim
            .run_visiting(&mut src, 8, &[fault], |fi, node, diff| {
                assert_eq!(fi, 0);
                if node == g1 {
                    at_g1 += u64::from(diff.count_ones());
                }
            })
            .unwrap();
        assert_eq!(n, 8);
        // g1 = AND(a,b): SA1 present whenever g1=0, i.e. 6 of 8 patterns.
        assert_eq!(at_g1, 6);
    }

    #[test]
    fn scratch_state_is_clean_between_faults() {
        // Two consecutive runs give identical results.
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut s1 = ExhaustivePatterns::new(3);
        let (c1, _) = sim.run_counting(&mut s1, 8, universe.faults()).unwrap();
        let mut s2 = ExhaustivePatterns::new(3);
        let (c2, _) = sim.run_counting(&mut s2, 8, universe.faults()).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn gate_consuming_signal_twice() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Xor, vec![a, a], "g").unwrap(); // constant 0
        let h = b.gate(GateKind::Or, vec![g, a], "h").unwrap();
        b.output(h);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        // g/SA1: h = OR(1, a) = 1; good h = a. Detected when a=0.
        let (counts, _) = sim
            .run_counting(&mut src, 2, &[Fault::stem_sa1(g)])
            .unwrap();
        assert_eq!(counts[0], 1);
    }
}
