use tpi_netlist::ffr::FfrDecomposition;
use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};

use crate::compile::{block_words_supported, DEFAULT_BLOCK_WORDS, MAX_BLOCK_WORDS};
use crate::simd::{self, BackendChoice, SimdBackend};
use crate::{
    ControlledRun, Fault, FaultSimResult, FaultSite, LogicSim, PatternSource, RunControl,
    SimCounters, StopReason,
};

/// How per-fault detection words are computed within each pattern block.
///
/// Both modes are **bit-identical**: detection counts, first-detection
/// pattern indices and coverage match exactly on every circuit, block
/// width and thread count (property-tested and bench-asserted). They
/// differ only in cost.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum DetectionMode {
    /// Inject every fault and propagate its effects event-driven through
    /// its fanout cone (the classic PPSFP loop). Exact but pays one cone
    /// sweep per live fault per block.
    Explicit,
    /// Critical path tracing over fanout-free regions: faults *inside* an
    /// FFR get their detection words from one word-parallel backward
    /// sensitization sweep per region (no injection at all); only stem
    /// faults — FFR roots, whose flip must cross reconvergent fanout —
    /// go through explicit propagation, and that observability word is
    /// shared by every fault collapsing onto the stem. Exact because an
    /// FFR is a tree: a fault effect inside it reaches the root along a
    /// unique path whose side inputs keep their fault-free values.
    #[default]
    CriticalPathTracing,
}

/// Construction options for [`FaultSimulator`] (block width × detection
/// mode × SIMD backend). `Default` is the fast configuration:
/// size-selected block width, critical path tracing and the best SIMD
/// backend the CPU supports. Every combination is bit-identical; the
/// options only trade memory and instruction selection for throughput.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// Block width in 64-bit words (see
    /// [`FaultSimulator::with_block_words`]); 0 (the default)
    /// auto-selects by circuit size — [`MAX_BLOCK_WORDS`] once the
    /// circuit is big enough to amortise the wider good-value
    /// simulation, [`DEFAULT_BLOCK_WORDS`] below that (small circuits
    /// drop their whole fault list within a few 64-lane words, so extra
    /// width is pure overhead).
    pub block_words: usize,
    /// Detection-word algorithm.
    pub detection: DetectionMode,
    /// Requested SIMD backend, resolved against the running CPU at
    /// construction (see [`SimdBackend::resolve`]).
    pub backend: BackendChoice,
}

impl SimOptions {
    /// Options with an explicit block width and the default mode and
    /// backend.
    pub fn with_block_words(block_words: usize) -> SimOptions {
        SimOptions {
            block_words,
            ..SimOptions::default()
        }
    }
}

/// Node count at which the auto-selected block width ([`SimOptions::
/// block_words`] = 0) steps up from [`DEFAULT_BLOCK_WORDS`] to
/// [`MAX_BLOCK_WORDS`]: below it a dropping run retires its fault list
/// within a handful of 64-lane words and the wider good-value
/// simulation never pays for itself (the historical W=4-slower-than-W=1
/// small-circuit regression was this effect one notch down).
const AUTO_WIDE_NODE_THRESHOLD: usize = 512;

fn auto_block_words(nodes: usize) -> usize {
    if nodes >= AUTO_WIDE_NODE_THRESHOLD {
        MAX_BLOCK_WORDS
    } else {
        DEFAULT_BLOCK_WORDS
    }
}

/// Result of [`FaultSimulator::run_bitmaps`]: per-fault, per-pattern
/// detection bitmaps over the applied pattern prefix.
#[derive(Debug)]
pub struct BitmapRun {
    /// `maps[fi]` holds one bit per applied pattern for fault `fi`:
    /// word `p / 64`, lane `p % 64` is set iff pattern `p` detects it.
    /// Each map has `patterns_applied.div_ceil(64)` words; padding lanes
    /// beyond the last applied pattern are zero.
    pub maps: Vec<Vec<u64>>,
    /// Number of patterns actually applied (may trail `max_patterns` on
    /// source exhaustion or interruption).
    pub patterns_applied: u64,
    /// `None` if the run completed normally.
    pub stopped: Option<StopReason>,
    /// Kernel counters for this run.
    pub counters: SimCounters,
}

/// What `propagate_words` drives into the faulty overlay at the site.
enum Injection {
    /// A stuck-at fault (stem overwrite or branch pin override).
    Fault(Fault),
    /// The complement of the good value at a node — propagating it yields
    /// the node's *observability* word: the lanes in which flipping the
    /// node is visible at some primary output.
    Flip(usize),
}

/// Event-driven parallel-pattern single-fault-propagation (PPSFP) fault
/// simulator.
///
/// Per block of `w × 64` patterns (`w` is the *block width* in words,
/// default 4 = 256 patterns) the fault-free circuit is simulated once
/// through the compiled wide kernel; each live fault is then injected
/// and its effects propagated through its fanout cone only, in level
/// order, comparing against the good values at the primary outputs.
/// Faults are dropped at first detection in
/// [`run`](FaultSimulator::run).
///
/// Propagation is scheduled through level-bucketed worklists over a CSR
/// consumer array: scheduling a gate is an O(1) push into its level's
/// bucket and the buckets are swept in ascending level order (a
/// consumer always sits at a strictly higher level than its producer,
/// so a single sweep settles the cone). First-detection indices,
/// detection counts and coverage are bit-identical for every supported
/// block width — lane `j * 64 + l` of a wide block is exactly pattern
/// `j * 64 + l` of the corresponding scalar blocks.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_sim::{FaultSimulator, FaultUniverse, RandomPatterns};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let faults = FaultUniverse::collapsed(&c)?;
/// let mut sim = FaultSimulator::new(&c)?;
/// let mut src = RandomPatterns::new(2, 7);
/// let result = sim.run(&mut src, 256, faults.faults())?;
/// assert_eq!(result.coverage(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator {
    sim: LogicSim,
    w: usize,
    mode: DetectionMode,
    // CSR consumer array: gates consuming node `i` are
    // `consumer_idx[consumer_start[i]..consumer_start[i + 1]]`;
    // `consumer_level[k]` caches the level of `consumer_idx[k]`.
    consumer_start: Vec<u32>,
    consumer_idx: Vec<u32>,
    consumer_level: Vec<u32>,
    is_output: Vec<bool>,
    n_inputs: usize,
    n_nodes: usize,
    // Scratch state, reused across faults and blocks (`w` words/node).
    // `values` mirrors `good` between propagations; a propagation writes
    // faulty words in place (each node at most once — level order with
    // queue dedup) and `undo`/`touched` roll them back afterwards, so
    // fanin reads in the hot loop are single unconditional loads instead
    // of a dirty-flag branch over two arrays.
    //
    // `planes` is the *word-major* mirror of `good` (`planes[j * n + i]`
    // = `good[i * w + j]`), rebuilt once per block: the single-word
    // propagation path — every dropping-mode injection and every CPT
    // stem-observability flip — walks it at stride 1, so its event loop
    // reads pack 8 node words per cache line instead of one per
    // `w`-word slot (and the `* w` index arithmetic disappears).
    good: Vec<u64>,
    values: Vec<u64>,
    planes: Vec<u64>,
    undo: Vec<u64>,
    touched: Vec<u32>,
    queued: Vec<bool>,
    buckets: Vec<Vec<u32>>,
    pending: usize,
    input_block: Vec<u64>,
    fill_scratch: Vec<u64>,
    // Critical-path-tracing state (valid within one block).
    // `ffr_root[i]` is the root node of the FFR containing node `i`;
    // `sens[i * w + j]` is line `i`'s *local* sensitization word (path
    // sensitization up to its region root, lane-masked) once its region
    // has been swept (stale and never read for inactive regions).
    // `stem_obs[r * w + j]` caches root `r`'s observability for the
    // current block, computed lazily per word — a flip propagation runs
    // only the first time a locally-detected fault actually asks for
    // that word (`obs_ready[r]` is a per-word bitmask, `w <= 8`).
    ffr_root: Vec<u32>,
    sens: Vec<u64>,
    region_active: Vec<bool>,
    active_roots: Vec<u32>,
    sens_scratch: Vec<u64>,
    stem_obs: Vec<u64>,
    obs_ready: Vec<u8>,
    obs_ready_list: Vec<u32>,
    // Kernel counters: plain u64s (not atomics) so the hot loops pay a
    // register increment, published to an obs registry in bulk by the
    // caller (see `crate::SimCounters`).
    counters: SimCounters,
}

impl FaultSimulator {
    /// Build a simulator for `circuit` with the default options
    /// ([`crate::DEFAULT_BLOCK_WORDS`] words = 256 patterns per pass,
    /// critical path tracing).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<FaultSimulator, NetlistError> {
        FaultSimulator::with_options(circuit, SimOptions::default())
    }

    /// Build a simulator processing `block_words × 64` patterns per
    /// pass. Results are bit-identical for every width; wider blocks
    /// amortise the good-value simulation and propagation sweeps over
    /// more lanes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    ///
    /// # Panics
    ///
    /// Panics if `block_words` is not 1, 2, 4 or 8.
    pub fn with_block_words(
        circuit: &Circuit,
        block_words: usize,
    ) -> Result<FaultSimulator, NetlistError> {
        assert!(
            block_words_supported(block_words),
            "unsupported block width {block_words} words (supported: 1, 2, 4, 8)"
        );
        FaultSimulator::with_options(circuit, SimOptions::with_block_words(block_words))
    }

    /// Build a simulator with explicit [`SimOptions`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    ///
    /// # Panics
    ///
    /// Panics if `options.block_words` is not 0 (auto), 1, 2, 4 or 8,
    /// or if `options.backend` explicitly requests a SIMD backend this
    /// CPU lacks (validate user-supplied choices up front with
    /// [`SimdBackend::resolve`]).
    pub fn with_options(
        circuit: &Circuit,
        options: SimOptions,
    ) -> Result<FaultSimulator, NetlistError> {
        let n = circuit.node_count();
        let w = match options.block_words {
            0 => auto_block_words(n),
            w => w,
        };
        assert!(
            block_words_supported(w),
            "unsupported block width {w} words (supported: 1, 2, 4, 8)"
        );
        let backend = SimdBackend::resolve(options.backend).unwrap_or_else(|e| panic!("{e}"));
        let sim = LogicSim::with_backend(circuit, backend)?;
        let topo = Topology::of(circuit)?;
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for id in circuit.node_ids() {
            for fo in topo.fanouts(id) {
                let gate = fo.gate.index() as u32;
                // Deduplicate gates consuming the same signal twice.
                if per_node[id.index()].last() != Some(&gate) {
                    per_node[id.index()].push(gate);
                }
            }
        }
        let mut consumer_start = Vec::with_capacity(n + 1);
        let mut consumer_idx = Vec::new();
        consumer_start.push(0u32);
        for consumers in &per_node {
            consumer_idx.extend_from_slice(consumers);
            consumer_start.push(consumer_idx.len() as u32);
        }
        let consumer_level: Vec<u32> = consumer_idx
            .iter()
            .map(|&g| sim.level(NodeId::from_index(g as usize)))
            .collect();
        let mut is_output = vec![false; n];
        for &po in circuit.outputs() {
            is_output[po.index()] = true;
        }
        let ffr = FfrDecomposition::of(circuit, &topo);
        let ffr_root: Vec<u32> = (0..n)
            .map(|i| ffr.root_of(NodeId::from_index(i)).index() as u32)
            .collect();
        Ok(FaultSimulator {
            w,
            mode: options.detection,
            consumer_start,
            consumer_idx,
            consumer_level,
            is_output,
            n_inputs: circuit.inputs().len(),
            n_nodes: n,
            good: vec![0; n * w],
            values: vec![0; n * w],
            planes: vec![0; n * w],
            undo: Vec::new(),
            touched: Vec::with_capacity(64),
            queued: vec![false; n],
            buckets: vec![Vec::new(); topo.max_level() as usize + 1],
            pending: 0,
            input_block: vec![0; circuit.inputs().len() * w],
            fill_scratch: vec![0; circuit.inputs().len()],
            ffr_root,
            sens: vec![0; n * w],
            region_active: vec![false; n],
            active_roots: Vec::new(),
            sens_scratch: Vec::new(),
            stem_obs: vec![0; n * w],
            obs_ready: vec![0; n],
            obs_ready_list: Vec::new(),
            counters: SimCounters::default(),
            sim,
        })
    }

    /// The simulated circuit.
    pub fn circuit(&self) -> &Circuit {
        self.sim.circuit()
    }

    /// Block width in 64-bit words (patterns per pass / 64).
    pub fn block_words(&self) -> usize {
        self.w
    }

    /// The configured detection mode.
    pub fn detection(&self) -> DetectionMode {
        self.mode
    }

    /// The resolved SIMD backend driving the wide kernels.
    pub fn backend(&self) -> SimdBackend {
        self.sim.backend()
    }

    /// Kernel counters accumulated since construction (or the last
    /// [`take_counters`](FaultSimulator::take_counters)). Deterministic
    /// for a fixed (circuit, pattern stream, fault list, block width).
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Returns the accumulated kernel counters and resets them to zero.
    pub fn take_counters(&mut self) -> SimCounters {
        std::mem::take(&mut self.counters)
    }

    /// Fault-simulate with fault dropping: apply up to `max_patterns`
    /// patterns from `source`, recording each fault's first detection.
    ///
    /// Stops early when the source is exhausted or every fault is
    /// detected. First-detection indices and the applied-pattern count
    /// are bit-identical across block widths (the count replays where a
    /// width-1 run would have stopped).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` mirrors the
    /// other run methods.
    pub fn run(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<FaultSimResult, NetlistError> {
        self.run_controlled(source, max_patterns, faults, &RunControl::unlimited())
            .map(|run| run.result)
    }

    /// [`run`](FaultSimulator::run) under a [`RunControl`] token: the
    /// token is polled once per pattern block (before the block is
    /// pulled from the source) and applied lanes are charged against any
    /// work budget, so an interrupted run stops within one block and
    /// returns the detections accumulated so far as an anytime result.
    ///
    /// Budget-interrupted runs are deterministic for a fixed block
    /// width; deadline-interrupted runs are not (wall clock).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` mirrors the
    /// other run methods. Interruption is *not* an error — it is
    /// reported in [`ControlledRun::stopped`].
    pub fn run_controlled(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
        control: &RunControl,
    ) -> Result<ControlledRun, NetlistError> {
        let mut first_detected: Vec<Option<u64>> = vec![None; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        // Faults that survived at least one full block (the hard-to-
        // detect tail); explicit mode propagates these full-width.
        let mut hard: Vec<bool> = vec![false; faults.len()];
        let fault_roots: Vec<u32> = match self.mode {
            DetectionMode::Explicit => Vec::new(),
            DetectionMode::CriticalPathTracing => {
                faults.iter().map(|&f| self.fault_root(f)).collect()
            }
        };
        let before = self.counters;
        let mut stopped = None;
        let mut base = 0u64;
        while base < max_patterns && !alive.is_empty() {
            self.counters.polls += 1;
            stopped = control.poll();
            if stopped.is_some() {
                break;
            }
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.counters.blocks += 1;
            self.counters.pattern_lanes += lanes;
            self.simulate_good();
            if self.mode == DetectionMode::CriticalPathTracing {
                for &fi in &alive {
                    self.mark_region(fault_roots[fi]);
                }
                self.cpt_sweep_active(&masks);
            }
            let words = (lanes.div_ceil(64) as usize).min(self.w);
            let mut last_kill = 0u64;
            alive.retain(|&fi| {
                let detect = match self.mode {
                    DetectionMode::CriticalPathTracing => {
                        self.cpt_detect(faults[fi], fault_roots[fi], &masks, true)
                    }
                    DetectionMode::Explicit if hard[fi] && words > 1 => {
                        // A fault that already survived a full block is
                        // in the hard-to-detect tail: it will almost
                        // certainly survive this one too, so a per-word
                        // early exit buys nothing. One full-width pass
                        // amortizes queue management and gate decoding
                        // across all `words` lanes of each event (lanes
                        // are independent, so the detect words are
                        // bit-identical to `words` single-word passes).
                        self.propagate_words(
                            &Injection::Fault(faults[fi]),
                            &masks,
                            0,
                            words,
                            true,
                            |_, _| {},
                        )
                    }
                    DetectionMode::Explicit => {
                        // Evaluate one 64-lane word at a time and stop at
                        // the first detecting word: a fault killed in word
                        // `j` never pays for words `> j`, so dropping
                        // keeps its scalar granularity at any width (lanes
                        // are independent, so per-word propagation yields
                        // the same detect bits as a full-width pass).
                        let mut detect = [0u64; MAX_BLOCK_WORDS];
                        for j in 0..words {
                            detect[j] =
                                self.propagate_word(&Injection::Fault(faults[fi]), masks[j], j);
                            if detect[j] != 0 {
                                break;
                            }
                        }
                        detect
                    }
                };
                match first_lane(&detect) {
                    Some(offset) => {
                        first_detected[fi] = Some(base + offset);
                        last_kill = last_kill.max(offset);
                        self.counters.faults_dropped += 1;
                        false
                    }
                    None => {
                        hard[fi] = true;
                        true
                    }
                }
            });
            self.clear_regions();
            if alive.is_empty() {
                // A width-1 run stops applying patterns after the
                // 64-lane sub-block in which the last live fault died;
                // replay that stopping point so `patterns_applied` is
                // width-invariant.
                base += lanes.min((last_kill / 64 + 1) * 64);
            } else {
                base += lanes;
            }
            control.charge(lanes);
        }
        Ok(ControlledRun {
            result: FaultSimResult::new(first_detected, base),
            stopped,
            counters: self.counters.since(&before),
        })
    }

    /// Count detections per fault without dropping (for detection-
    /// probability estimation). Returns per-fault detection counts and the
    /// number of patterns applied.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_counting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let fault_roots: Vec<u32> = match self.mode {
            DetectionMode::Explicit => Vec::new(),
            DetectionMode::CriticalPathTracing => {
                faults.iter().map(|&f| self.fault_root(f)).collect()
            }
        };
        let mut base = 0u64;
        while base < max_patterns {
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.counters.blocks += 1;
            self.counters.pattern_lanes += lanes;
            self.simulate_good();
            match self.mode {
                DetectionMode::Explicit => {
                    for (fi, &fault) in faults.iter().enumerate() {
                        let detect = self.propagate(fault, &masks, true, |_, _| {});
                        counts[fi] += ones(&detect);
                    }
                }
                DetectionMode::CriticalPathTracing => {
                    for &r in &fault_roots {
                        self.mark_region(r);
                    }
                    self.cpt_sweep_active(&masks);
                    for (fi, &fault) in faults.iter().enumerate() {
                        let detect = self.cpt_detect(fault, fault_roots[fi], &masks, false);
                        counts[fi] += ones(&detect);
                    }
                    self.clear_regions();
                }
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Per-fault, per-pattern detection bitmaps without dropping: bit
    /// `p` of `maps[fi]` (word `p / 64`, lane `p % 64`) is set iff fault
    /// `fi` is detected by pattern `p`. The bitmaps are bit-identical
    /// for every block width (lanes are independent) and are the shared
    /// base state of the batched candidate scorer: a candidate circuit
    /// that is transparent on a pattern replays exactly these detection
    /// bits, so only its non-transparent patterns need re-simulation.
    ///
    /// The `control` token is polled once per block; a stopped run
    /// reports the reason and the bitmaps accumulated so far.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_bitmaps(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
        control: &RunControl,
    ) -> Result<BitmapRun, NetlistError> {
        let mut maps = vec![Vec::new(); faults.len()];
        let fault_roots: Vec<u32> = match self.mode {
            DetectionMode::Explicit => Vec::new(),
            DetectionMode::CriticalPathTracing => {
                faults.iter().map(|&f| self.fault_root(f)).collect()
            }
        };
        let before = self.counters;
        let mut stopped = None;
        let mut base = 0u64;
        while base < max_patterns {
            self.counters.polls += 1;
            stopped = control.poll();
            if stopped.is_some() {
                break;
            }
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.counters.blocks += 1;
            self.counters.pattern_lanes += lanes;
            self.simulate_good();
            let words = (lanes.div_ceil(64) as usize).min(self.w);
            match self.mode {
                DetectionMode::Explicit => {
                    for (fi, &fault) in faults.iter().enumerate() {
                        let detect = self.propagate(fault, &masks, true, |_, _| {});
                        maps[fi].extend_from_slice(&detect[..words]);
                    }
                }
                DetectionMode::CriticalPathTracing => {
                    for &r in &fault_roots {
                        self.mark_region(r);
                    }
                    self.cpt_sweep_active(&masks);
                    for (fi, &fault) in faults.iter().enumerate() {
                        let detect = self.cpt_detect(fault, fault_roots[fi], &masks, false);
                        maps[fi].extend_from_slice(&detect[..words]);
                    }
                    self.clear_regions();
                }
            }
            base += lanes;
            control.charge(lanes);
        }
        Ok(BitmapRun {
            maps,
            patterns_applied: base,
            stopped,
            counters: self.counters.since(&before),
        })
    }

    /// Like [`run_counting`](FaultSimulator::run_counting), but also calls
    /// `visit(fault_index, node, present_mask)` for every 64-lane word in
    /// which a fault's effect is present at a node — the raw material for
    /// propagation profiles (see
    /// [`montecarlo::propagation_profile`](crate::montecarlo::propagation_profile)).
    /// A node may be visited up to `block_words` times per block (once
    /// per word with a nonzero mask); per-node popcount totals are
    /// width-invariant.
    ///
    /// Always propagates explicitly regardless of the configured
    /// [`DetectionMode`]: the visitor needs the per-node fault-effect
    /// words, which critical path tracing never materialises.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_visiting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
        mut visit: impl FnMut(usize, NodeId, u64),
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let mut base = 0u64;
        while base < max_patterns {
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.counters.blocks += 1;
            self.counters.pattern_lanes += lanes;
            self.simulate_good();
            for (fi, &fault) in faults.iter().enumerate() {
                let detect =
                    self.propagate(fault, &masks, false, |node, diff| visit(fi, node, diff));
                counts[fi] += ones(&detect);
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Pull up to `w` 64-pattern words from `source` into the staged
    /// input block (word-major per input), zero-padding unused words.
    /// Stops early at source exhaustion, at a partial word, or once
    /// `remaining` patterns are covered — so the number of `fill` calls
    /// matches what `remaining` sequential scalar blocks would consume.
    fn next_block(&mut self, source: &mut dyn PatternSource, remaining: u64) -> u64 {
        let w = self.w;
        let max_words = w.min(remaining.div_ceil(64) as usize);
        self.input_block.fill(0);
        let mut filled = 0u64;
        for j in 0..max_words {
            let n = source.fill(&mut self.fill_scratch);
            if n == 0 {
                break;
            }
            for i in 0..self.n_inputs {
                self.input_block[i * w + j] = self.fill_scratch[i];
            }
            filled += n as u64;
            if n < 64 {
                break;
            }
        }
        filled
    }

    fn simulate_good(&mut self) {
        self.sim
            .simulate_block_into(&self.input_block, &mut self.good, self.w);
        self.values.copy_from_slice(&self.good);
        // Rebuild the word-major plane mirror (see the field docs): an
        // O(n·w) transpose per block, repaid across every single-word
        // propagation of the block.
        let (w, n) = (self.w, self.n_nodes);
        if w == 1 {
            self.planes.copy_from_slice(&self.good);
        } else {
            for ni in 0..n {
                for j in 0..w {
                    self.planes[j * n + ni] = self.good[ni * w + j];
                }
            }
        }
    }

    /// Inject `fault` against the current good values and propagate its
    /// effects; returns per-word masks of lanes detected at any primary
    /// output. `on_diff` observes every (node, word) whose value differs
    /// (after masking); `saturate` must be `false` when the caller needs
    /// that enumeration to be exhaustive.
    fn propagate(
        &mut self,
        fault: Fault,
        masks: &[u64; MAX_BLOCK_WORDS],
        saturate: bool,
        on_diff: impl FnMut(NodeId, u64),
    ) -> [u64; MAX_BLOCK_WORDS] {
        self.propagate_words(
            &Injection::Fault(fault),
            masks,
            0,
            self.w,
            saturate,
            on_diff,
        )
    }

    /// Event-driven propagation restricted to block words `j0..j1`
    /// (absolute indices; detect and scratch slots stay absolute).
    /// Lanes are independent, so propagating a sub-range yields exactly
    /// the detect bits a full-width pass would produce in those words —
    /// the dropping loop exploits this to stop at the first detecting
    /// word, and the observability pass runs single words.
    ///
    /// With `saturate`, the propagation stops evaluating as soon as
    /// every masked lane of every word in the range has been detected at
    /// some primary output (the detect words cannot grow further;
    /// remaining events only have their queue flags cleared). Detect
    /// words are exact either way, but the `on_diff` enumeration is
    /// truncated — visitors that need every differing node must pass
    /// `false`.
    fn propagate_words(
        &mut self,
        injection: &Injection,
        masks: &[u64; MAX_BLOCK_WORDS],
        j0: usize,
        j1: usize,
        saturate: bool,
        mut on_diff: impl FnMut(NodeId, u64),
    ) -> [u64; MAX_BLOCK_WORDS] {
        debug_assert!(self.touched.is_empty() && self.undo.is_empty() && self.pending == 0);
        let w = self.w;
        let mut injected = [0u64; MAX_BLOCK_WORDS];
        let site = match *injection {
            Injection::Fault(fault) => {
                let stuck_word = if fault.stuck { u64::MAX } else { 0 };
                match fault.site {
                    FaultSite::Stem(v) => {
                        injected[j0..j1].fill(stuck_word);
                        v.index()
                    }
                    FaultSite::Branch { gate, pin } => {
                        self.eval_inject(gate, pin as usize, stuck_word, &mut injected, j0, j1);
                        gate.index()
                    }
                }
            }
            Injection::Flip(ni) => {
                let good = &self.good[ni * w + j0..ni * w + j1];
                for (o, g) in injected[j0..j1].iter_mut().zip(good) {
                    *o = !g;
                }
                ni
            }
        };
        let mut any = 0u64;
        for j in j0..j1 {
            any |= (injected[j] ^ self.good[site * w + j]) & masks[j];
        }
        if any == 0 {
            return [0; MAX_BLOCK_WORDS];
        }
        self.set_value(site, &injected, j0, j1);
        self.push_consumers(site);
        let mut online = [0u64; MAX_BLOCK_WORDS];
        if saturate && self.is_output[site] {
            for j in j0..j1 {
                online[j] = (injected[j] ^ self.good[site * w + j]) & masks[j];
            }
        }
        let mut saturated = saturate && (j0..j1).all(|j| online[j] == masks[j]);

        let mut new_vals = [0u64; MAX_BLOCK_WORDS];
        // Consumers sit strictly above the site's level; the buckets
        // below it are necessarily empty, so skip them.
        let mut level = self.sim.level(NodeId::from_index(site)) as usize;
        while self.pending > 0 {
            debug_assert!(level < self.buckets.len());
            if self.buckets[level].is_empty() {
                level += 1;
                continue;
            }
            // Take the bucket so `push_consumers` (which only ever
            // targets strictly higher levels) can borrow freely.
            let mut bucket = std::mem::take(&mut self.buckets[level]);
            self.pending -= bucket.len();
            self.counters.events += bucket.len() as u64;
            for &gate in &bucket {
                let gi = gate as usize;
                self.queued[gi] = false;
                if saturated {
                    continue;
                }
                self.eval_node(gi, &mut new_vals, j0, j1);
                let changed = (j0..j1).any(|j| new_vals[j] != self.value_word(gi, j));
                if changed {
                    self.set_value(gi, &new_vals, j0, j1);
                    self.push_consumers(gi);
                    if saturate && self.is_output[gi] {
                        for j in j0..j1 {
                            online[j] |= (new_vals[j] ^ self.good[gi * w + j]) & masks[j];
                        }
                        saturated = (j0..j1).all(|j| online[j] == masks[j]);
                    }
                }
            }
            bucket.clear();
            self.buckets[level] = bucket;
            level += 1;
        }

        let mut detect = [0u64; MAX_BLOCK_WORDS];
        if saturated {
            // Every masked lane in range was seen at an output; the
            // detect words cannot be anything other than the masks, so
            // skip the touched scan (`on_diff` is truncated by contract).
            detect[j0..j1].copy_from_slice(&masks[j0..j1]);
            self.cleanup(j0, j1);
            return detect;
        }
        for ti in 0..self.touched.len() {
            let ni = self.touched[ti] as usize;
            let at_output = self.is_output[ni];
            for j in j0..j1 {
                let diff = (self.values[ni * w + j] ^ self.good[ni * w + j]) & masks[j];
                if diff != 0 {
                    if at_output {
                        detect[j] |= diff;
                    }
                    on_diff(NodeId::from_index(ni), diff);
                }
            }
        }
        self.cleanup(j0, j1);
        detect
    }

    /// Scalar specialization of [`Self::propagate_words`] for a single
    /// word `j` with saturation on and no diff visitor — the shape every
    /// dropping propagation and every stem-observability flip takes.
    ///
    /// Runs over the word-major [`Self::planes`] mirror, so every gate
    /// evaluation reads its fanins at stride 1 (eight node words per
    /// cache line regardless of `w`) with no `* w` index arithmetic.
    /// Each node is written at most once per propagation (the queue
    /// dedups and buckets run in level order), so at write time the old
    /// plane word *is* the good word — detect bits accumulate online and
    /// the final touched scan disappears entirely.
    fn propagate_word(&mut self, injection: &Injection, mask: u64, j: usize) -> u64 {
        debug_assert!(self.touched.is_empty() && self.undo.is_empty() && self.pending == 0);
        let n = self.n_nodes;
        let pb = j * n; // base of word `j`'s plane
        let (site, injected) = match *injection {
            Injection::Fault(fault) => {
                let stuck_word = if fault.stuck { u64::MAX } else { 0 };
                match fault.site {
                    FaultSite::Stem(v) => (v.index(), stuck_word),
                    FaultSite::Branch { gate, pin } => {
                        let mut out = [0u64; MAX_BLOCK_WORDS];
                        self.eval_inject(gate, pin as usize, stuck_word, &mut out, j, j + 1);
                        (gate.index(), out[j])
                    }
                }
            }
            Injection::Flip(ni) => (ni, !self.planes[pb + ni]),
        };
        let old = self.planes[pb + site];
        let site_diff = (injected ^ old) & mask;
        if site_diff == 0 {
            return 0;
        }
        self.touched.push(site as u32);
        self.undo.push(old);
        self.planes[pb + site] = injected;
        self.push_consumers(site);
        let mut detect = if self.is_output[site] { site_diff } else { 0 };
        let mut saturated = detect == mask;
        let mut level = self.sim.level(NodeId::from_index(site)) as usize;
        while self.pending > 0 {
            debug_assert!(level < self.buckets.len());
            if self.buckets[level].is_empty() {
                level += 1;
                continue;
            }
            let mut bucket = std::mem::take(&mut self.buckets[level]);
            self.pending -= bucket.len();
            self.counters.events += bucket.len() as u64;
            for &gate in &bucket {
                let gi = gate as usize;
                self.queued[gi] = false;
                if saturated {
                    continue;
                }
                let program = self.sim.program();
                let op_idx = program
                    .op_index(gi)
                    .expect("scheduled node is a compiled gate");
                let new = program.eval_op_word(op_idx, |node| self.planes[pb + node]);
                let old = self.planes[pb + gi];
                if new != old {
                    self.touched.push(gate);
                    self.undo.push(old);
                    self.planes[pb + gi] = new;
                    self.push_consumers(gi);
                    if self.is_output[gi] {
                        // First (and only) write to this node: `old` is
                        // the good word, so the diff is final here.
                        detect |= (new ^ old) & mask;
                        saturated = detect == mask;
                    }
                }
            }
            bucket.clear();
            self.buckets[level] = bucket;
            level += 1;
        }
        while let Some(ni) = self.touched.pop() {
            let old = self.undo.pop().expect("one undo word per touched node");
            self.planes[pb + ni as usize] = old;
        }
        detect
    }

    /// Re-evaluate compiled gate `gi` against the overlaid values for
    /// words `j0..j1` of `out`.
    fn eval_node(&self, gi: usize, out: &mut [u64; MAX_BLOCK_WORDS], j0: usize, j1: usize) {
        let op_idx = self
            .sim
            .program()
            .op_index(gi)
            .expect("scheduled node is a compiled gate");
        self.eval_op(op_idx, out, j0, j1);
    }

    /// Re-evaluate compiled op `op_idx` against the overlaid values for
    /// words `j0..j1` of `out`.
    fn eval_op(&self, op_idx: usize, out: &mut [u64; MAX_BLOCK_WORDS], j0: usize, j1: usize) {
        let w = self.w;
        self.sim.program().eval_op_wide(
            op_idx,
            j1 - j0,
            |node, j| self.values[node * w + j0 + j],
            &mut out[j0..j1],
        );
    }

    /// Evaluate `gate` with fanin `pin` forced to `stuck_word` (branch-
    /// fault injection) against the *good* values, for words `j0..j1`.
    fn eval_inject(
        &self,
        gate: NodeId,
        pin: usize,
        stuck_word: u64,
        out: &mut [u64],
        j0: usize,
        j1: usize,
    ) {
        let w = self.w;
        let kind = self.sim.circuit().kind(gate);
        let fanins = self.sim.circuit().fanins(gate);
        enum FoldOp {
            And,
            Or,
            Xor,
        }
        let (fold, init, invert) = match kind {
            GateKind::Buf | GateKind::And => (FoldOp::And, u64::MAX, false),
            GateKind::Not | GateKind::Nand => (FoldOp::And, u64::MAX, true),
            GateKind::Or => (FoldOp::Or, 0, false),
            GateKind::Nor => (FoldOp::Or, 0, true),
            GateKind::Xor => (FoldOp::Xor, 0, false),
            GateKind::Xnor => (FoldOp::Xor, 0, true),
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => {
                unreachable!("branch faults only exist on gates")
            }
        };
        for (j, o) in out.iter_mut().enumerate().take(j1).skip(j0) {
            let mut acc = init;
            for (pi, f) in fanins.iter().enumerate() {
                let v = if pi == pin {
                    stuck_word
                } else {
                    self.good[f.index() * w + j]
                };
                match fold {
                    FoldOp::And => acc &= v,
                    FoldOp::Or => acc |= v,
                    FoldOp::Xor => acc ^= v,
                }
            }
            *o = if invert { !acc } else { acc };
        }
    }

    fn value_word(&self, ni: usize, j: usize) -> u64 {
        self.values[ni * self.w + j]
    }

    /// Overwrite node `ni`'s words `j0..j1`, logging the old words for
    /// rollback. Each node is written at most once per propagation (the
    /// site once, gates once each via queue dedup), and `cleanup`
    /// restores in reverse order regardless.
    fn set_value(&mut self, ni: usize, words: &[u64; MAX_BLOCK_WORDS], j0: usize, j1: usize) {
        let w = self.w;
        self.touched.push(ni as u32);
        self.undo
            .extend_from_slice(&self.values[ni * w + j0..ni * w + j1]);
        self.values[ni * w + j0..ni * w + j1].copy_from_slice(&words[j0..j1]);
    }

    fn push_consumers(&mut self, ni: usize) {
        let start = self.consumer_start[ni] as usize;
        let end = self.consumer_start[ni + 1] as usize;
        for k in start..end {
            let gate = self.consumer_idx[k];
            let gi = gate as usize;
            if !self.queued[gi] {
                self.queued[gi] = true;
                self.buckets[self.consumer_level[k] as usize].push(gate);
                self.pending += 1;
            }
        }
    }

    /// Roll back every `set_value` of the current propagation (LIFO, so
    /// repeated writes to a node would also unwind correctly).
    fn cleanup(&mut self, j0: usize, j1: usize) {
        let w = self.w;
        let nw = j1 - j0;
        while let Some(ni) = self.touched.pop() {
            let ni = ni as usize;
            let base = self.undo.len() - nw;
            self.values[ni * w + j0..ni * w + j1].copy_from_slice(&self.undo[base..]);
            self.undo.truncate(base);
        }
    }

    // ----- critical path tracing -------------------------------------

    /// Root of the FFR containing `fault`'s site. A branch fault lives on
    /// an input line of its gate, which always belongs to the gate's
    /// region (the driver may be a stem, but the *line* past the fanout
    /// point does not).
    fn fault_root(&self, fault: Fault) -> u32 {
        let anchor = match fault.site {
            FaultSite::Stem(v) => v.index(),
            FaultSite::Branch { gate, .. } => gate.index(),
        };
        self.ffr_root[anchor]
    }

    /// Mark the region rooted at `root` for this block's sweep.
    fn mark_region(&mut self, root: u32) {
        if !self.region_active[root as usize] {
            self.region_active[root as usize] = true;
            self.active_roots.push(root);
        }
    }

    fn clear_regions(&mut self) {
        for r in self.active_roots.drain(..) {
            self.region_active[r as usize] = false;
        }
        for r in self.obs_ready_list.drain(..) {
            self.obs_ready[r as usize] = 0;
        }
    }

    /// Compute this block's *local* line sensitizations for every active
    /// region: seed each root's `sens` slot with the lane masks, then run
    /// one backward sweep distributing path sensitization down to every
    /// line inside the active regions. Stem observability is *not* folded
    /// in here — it is fetched lazily per root by [`Self::cpt_detect`],
    /// so regions whose faults are never locally detected in this block
    /// (unexcited or locally masked — the common case for the
    /// hard-to-detect tail that dominates dropping runs) never pay for a
    /// flip propagation at all.
    fn cpt_sweep_active(&mut self, masks: &[u64; MAX_BLOCK_WORDS]) {
        let w = self.w;
        for k in 0..self.active_roots.len() {
            let r = self.active_roots[k] as usize;
            self.sens[r * w..r * w + w].copy_from_slice(&masks[..w]);
        }
        let FaultSimulator {
            sim,
            sens,
            sens_scratch,
            good,
            ffr_root,
            region_active,
            ..
        } = self;
        simd::sens_sweep(
            sim.backend(),
            sim.program(),
            w,
            sens,
            good,
            sens_scratch,
            ffr_root,
            region_active,
        );
    }

    /// Observability word `j` of stem `r` for the current block: lanes
    /// where flipping `r` is visible at a primary output. Computed by one
    /// dense flip propagation over the stem's cached cone, then memoized
    /// until [`Self::clear_regions`]; all faults collapsing onto the stem
    /// share the cached word, and words a block never asks for (every
    /// fault on the stem already killed by an earlier word, or not
    /// locally detected there) are never computed.
    fn stem_obs_word(&mut self, r: usize, j: usize, masks: &[u64; MAX_BLOCK_WORDS]) -> u64 {
        let w = self.w;
        if self.obs_ready[r] & (1 << j) == 0 {
            self.counters.stem_obs_misses += 1;
            let word = self.flip_obs_word(r, j, masks);
            self.stem_obs[r * w + j] = word;
            if self.obs_ready[r] == 0 {
                self.obs_ready_list.push(r as u32);
            }
            self.obs_ready[r] |= 1 << j;
        } else {
            self.counters.stem_obs_hits += 1;
        }
        self.stem_obs[r * w + j]
    }

    /// One single-word flip propagation from stem `r`: the lanes in
    /// which `!good` at `r` reaches some primary output. Runs the same
    /// event-driven kernel as fault propagation, with saturation enabled
    /// — once every masked lane of the word has been detected at some
    /// output the remaining events only clear their flags.
    fn flip_obs_word(&mut self, r: usize, j: usize, masks: &[u64; MAX_BLOCK_WORDS]) -> u64 {
        self.propagate_word(&Injection::Flip(r), masks[j], j)
    }

    /// Detection words for `fault` from the swept sensitization state:
    /// excitation (lanes whose good value differs from the stuck value)
    /// AND local path sensitization to the region root AND the root's
    /// stem observability. Exact because the line's path to its region
    /// root is unique and all side inputs keep their fault-free values.
    ///
    /// Work is ordered cheapest-first so the hard-to-detect tail that
    /// dominates dropping runs pays almost nothing per block: an
    /// unexcited fault exits before its line sensitization is even
    /// computed, a locally-masked fault exits before any stem
    /// observability is fetched, and the per-word fetch itself is
    /// memoized across the faults collapsing onto the stem (and skipped
    /// wholesale when the root is a primary output, where the local
    /// words are already final). With `first_only`, words after the
    /// first detecting one are left zero — callers that only take the
    /// first set lane (the dropping loop) never pay for them.
    fn cpt_detect(
        &mut self,
        fault: Fault,
        root: u32,
        masks: &[u64; MAX_BLOCK_WORDS],
        first_only: bool,
    ) -> [u64; MAX_BLOCK_WORDS] {
        let w = self.w;
        let mut detect = [0u64; MAX_BLOCK_WORDS];
        let driver = match fault.site {
            FaultSite::Stem(v) => v.index(),
            FaultSite::Branch { gate, pin } => {
                self.sim.circuit().fanins(gate)[pin as usize].index()
            }
        };
        let mut excite = [0u64; MAX_BLOCK_WORDS];
        let mut any = 0u64;
        for j in 0..w {
            let good = self.good[driver * w + j];
            excite[j] = if fault.stuck { !good } else { good } & masks[j];
            any |= excite[j];
        }
        if any == 0 {
            return detect;
        }
        let local = match fault.site {
            FaultSite::Stem(v) => {
                let ni = v.index();
                let mut local = [0u64; MAX_BLOCK_WORDS];
                local[..w].copy_from_slice(&self.sens[ni * w..ni * w + w]);
                local
            }
            FaultSite::Branch { gate, pin } => self.branch_line_obs(gate.index(), pin as usize),
        };
        let root = root as usize;
        let root_is_output = self.is_output[root];
        for j in 0..w {
            let mut d = local[j] & excite[j];
            if d != 0 && !root_is_output {
                d &= self.stem_obs_word(root, j, masks);
            }
            detect[j] = d;
            if first_only && d != 0 {
                break;
            }
        }
        detect
    }

    /// Observability of the branch line feeding `pin` of gate `gi`: the
    /// gate's output observability AND-ed with that pin's sensitivity.
    fn branch_line_obs(&mut self, gi: usize, pin: usize) -> [u64; MAX_BLOCK_WORDS] {
        match self.w {
            1 => self.branch_line_obs_w::<1>(gi, pin),
            2 => self.branch_line_obs_w::<2>(gi, pin),
            4 => self.branch_line_obs_w::<4>(gi, pin),
            8 => self.branch_line_obs_w::<8>(gi, pin),
            _ => unreachable!("width validated at construction"),
        }
    }

    fn branch_line_obs_w<const W: usize>(
        &mut self,
        gi: usize,
        pin: usize,
    ) -> [u64; MAX_BLOCK_WORDS] {
        let op_idx = self
            .sim
            .program()
            .op_index(gi)
            .expect("branch faults only exist on compiled gates");
        let mut out_sens = [0u64; W];
        out_sens.copy_from_slice(&self.sens[gi * W..][..W]);
        let mut obs = [0u64; MAX_BLOCK_WORDS];
        let FaultSimulator {
            sim,
            sens_scratch,
            good,
            ..
        } = self;
        let good: &[u64] = good;
        sim.program().sens_op_wide::<W>(
            op_idx,
            &out_sens,
            good,
            sens_scratch,
            &mut |p, _fanin, line| {
                if p as usize == pin {
                    obs[..W].copy_from_slice(line);
                }
            },
        );
        obs
    }
}

/// Per-word valid-lane masks for a block carrying `lanes` patterns.
fn lane_masks(lanes: u64, w: usize) -> [u64; MAX_BLOCK_WORDS] {
    let mut masks = [0u64; MAX_BLOCK_WORDS];
    for (j, mask) in masks.iter_mut().take(w).enumerate() {
        let lo = j as u64 * 64;
        *mask = if lanes >= lo + 64 {
            u64::MAX
        } else if lanes > lo {
            (1u64 << (lanes - lo)) - 1
        } else {
            0
        };
    }
    masks
}

/// Offset of the first set lane across detect words (word-major).
fn first_lane(detect: &[u64; MAX_BLOCK_WORDS]) -> Option<u64> {
    detect
        .iter()
        .enumerate()
        .find(|(_, &word)| word != 0)
        .map(|(j, &word)| j as u64 * 64 + u64::from(word.trailing_zeros()))
}

/// Total set lanes across detect words.
fn ones(detect: &[u64; MAX_BLOCK_WORDS]) -> u64 {
    detect.iter().map(|word| u64::from(word.count_ones())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExhaustivePatterns, FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("d");
        let g1 = b.gate(GateKind::And, vec![a, c], "g1").unwrap();
        let g2 = b.gate(GateKind::Or, vec![g1, d], "g2").unwrap();
        b.output(g2);
        b.finish().unwrap()
    }

    /// Reference: detect fault by comparing full faulty-circuit evaluation.
    fn reference_detects(c: &Circuit, fault: Fault, assignment: &[bool]) -> bool {
        let good = c.evaluate(assignment).unwrap();
        // Evaluate faulty circuit naively.
        let topo = Topology::of(c).unwrap();
        let mut vals = vec![false; c.node_count()];
        for (&i, &v) in c.inputs().iter().zip(assignment) {
            vals[i.index()] = v;
        }
        for &id in topo.order() {
            let node = c.node(id);
            if !node.kind().is_source() {
                let fanins: Vec<bool> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(pin, f)| {
                        let mut v = vals[f.index()];
                        if let FaultSite::Branch { gate, pin: fp } = fault.site {
                            if gate == id && fp as usize == pin {
                                v = fault.stuck;
                            }
                        }
                        v
                    })
                    .collect();
                vals[id.index()] = node.kind().eval(fanins.iter().copied());
            }
            if let FaultSite::Stem(v) = fault.site {
                if v == id {
                    vals[id.index()] = fault.stuck;
                }
            }
        }
        c.outputs()
            .iter()
            .any(|o| vals[o.index()] != good[o.index()])
    }

    #[test]
    fn matches_reference_exhaustively() {
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, n) = sim.run_counting(&mut src, 8, universe.faults()).unwrap();
        assert_eq!(n, 8);
        for (fi, &fault) in universe.faults().iter().enumerate() {
            let mut expected = 0u64;
            for p in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| p & (1 << i) != 0).collect();
                if reference_detects(&c, fault, &assignment) {
                    expected += 1;
                }
            }
            assert_eq!(counts[fi], expected, "fault {}", fault.describe(&c));
        }
    }

    #[test]
    fn run_with_dropping_covers_everything_detectable() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 42);
        let result = sim.run(&mut src, 512, universe.faults()).unwrap();
        assert_eq!(result.coverage(), 1.0);
        // First detections are within the applied pattern budget.
        for i in 0..universe.len() {
            assert!(result.first_detection(i).unwrap() < result.patterns_applied());
        }
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // a fans out to g1 (AND with x) and g2 (AND with y). Branch SA1 on
        // the a→g1 pin is detectable independently of the a→g2 pin.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let branch = Fault {
            site: FaultSite::Branch { gate: g1, pin: 0 },
            stuck: true,
        };
        let stem = Fault::stem_sa1(a);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, _) = sim.run_counting(&mut src, 8, &[branch, stem]).unwrap();
        // Branch SA1 detected when a=0, x=1 (2 patterns: y free).
        assert_eq!(counts[0], 2);
        // Stem SA1 detected when a=0 and (x=1 or y=1): 3 patterns.
        assert_eq!(counts[1], 3);
    }

    #[test]
    fn undetectable_fault_stays_undetected() {
        // y = OR(x, NOT(x)) is constant 1: y/SA1 is undetectable.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::Or, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        let result = sim.run(&mut src, 2, &[Fault::stem_sa1(y)]).unwrap();
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.patterns_applied(), 2);
    }

    #[test]
    fn max_patterns_respected_mid_block() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 1);
        let result = sim.run(&mut src, 10, universe.faults()).unwrap();
        assert_eq!(result.patterns_applied(), 10);
        for i in 0..universe.len() {
            if let Some(p) = result.first_detection(i) {
                assert!(p < 10);
            }
        }
    }

    #[test]
    fn observation_point_makes_fault_detectable() {
        // Internal node masked from the output; observing it exposes the
        // fault. y = AND(g, 0-ish)? Build: g = XOR(a,b); y = AND(g, c) with
        // c tied low via AND(a, NOT(a)).
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let bb = b.input("b");
        let na = b.gate(GateKind::Not, vec![a], "na").unwrap();
        let zero = b.gate(GateKind::And, vec![a, na], "zero").unwrap();
        let g = b.gate(GateKind::Xor, vec![a, bb], "g").unwrap();
        let y = b.gate(GateKind::And, vec![g, zero], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let fault = Fault::stem_sa0(g);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(2);
        let r = sim.run(&mut src, 4, &[fault]).unwrap();
        assert_eq!(r.detected_count(), 0, "masked without observation");

        let (obs, _) =
            tpi_netlist::transform::apply_plan(&c, &[tpi_netlist::TestPoint::observe(g)]).unwrap();
        let mut sim2 = FaultSimulator::new(&obs).unwrap();
        let mut src2 = ExhaustivePatterns::new(2);
        let r2 = sim2.run(&mut src2, 4, &[fault]).unwrap();
        assert_eq!(r2.detected_count(), 1, "observable after OP");
    }

    #[test]
    fn visiting_reports_fault_effects_at_nodes() {
        let c = sample();
        let g1 = c.find_node("g1").unwrap();
        let fault = Fault::stem_sa1(g1);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let mut at_g1 = 0u64;
        let (_, n) = sim
            .run_visiting(&mut src, 8, &[fault], |fi, node, diff| {
                assert_eq!(fi, 0);
                if node == g1 {
                    at_g1 += u64::from(diff.count_ones());
                }
            })
            .unwrap();
        assert_eq!(n, 8);
        // g1 = AND(a,b): SA1 present whenever g1=0, i.e. 6 of 8 patterns.
        assert_eq!(at_g1, 6);
    }

    #[test]
    fn scratch_state_is_clean_between_faults() {
        // Two consecutive runs give identical results.
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut s1 = ExhaustivePatterns::new(3);
        let (c1, _) = sim.run_counting(&mut s1, 8, universe.faults()).unwrap();
        let mut s2 = ExhaustivePatterns::new(3);
        let (c2, _) = sim.run_counting(&mut s2, 8, universe.faults()).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn gate_consuming_signal_twice() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Xor, vec![a, a], "g").unwrap(); // constant 0
        let h = b.gate(GateKind::Or, vec![g, a], "h").unwrap();
        b.output(h);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        // g/SA1: h = OR(1, a) = 1; good h = a. Detected when a=0.
        let (counts, _) = sim
            .run_counting(&mut src, 2, &[Fault::stem_sa1(g)])
            .unwrap();
        assert_eq!(counts[0], 1);
    }

    /// Wider circuit exercising deep propagation under every width.
    fn tree_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let xs = b.inputs(9, "x");
        let a = b.balanced_tree(GateKind::Nand, &xs[..3], "a").unwrap();
        let o = b.balanced_tree(GateKind::Nor, &xs[3..6], "o").unwrap();
        let x = b.balanced_tree(GateKind::Xor, &xs[6..], "p").unwrap();
        let m = b.gate(GateKind::And, vec![a, o, x], "m").unwrap();
        let y = b.gate(GateKind::Xor, vec![m, a], "y").unwrap();
        b.output(y);
        b.output(o);
        b.finish().unwrap()
    }

    #[test]
    fn wide_blocks_match_narrow_first_detections() {
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(9, 5);
        let reference = narrow.run(&mut src, 1000, universe.faults()).unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            assert_eq!(wide.block_words(), w);
            let mut src = RandomPatterns::new(9, 5);
            let result = wide.run(&mut src, 1000, universe.faults()).unwrap();
            assert_eq!(
                result.patterns_applied(),
                reference.patterns_applied(),
                "w={w}"
            );
            for i in 0..universe.len() {
                assert_eq!(
                    result.first_detection(i),
                    reference.first_detection(i),
                    "fault {i} at w={w}"
                );
            }
        }
    }

    #[test]
    fn wide_blocks_match_narrow_counts_and_visits() {
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = ExhaustivePatterns::new(9);
        let mut visits_narrow = std::collections::HashMap::new();
        let (counts_ref, n_ref) = narrow
            .run_visiting(&mut src, 512, universe.faults(), |fi, node, diff| {
                *visits_narrow.entry((fi, node)).or_insert(0u64) += u64::from(diff.count_ones());
            })
            .unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = ExhaustivePatterns::new(9);
            let mut visits = std::collections::HashMap::new();
            let (counts, n) = wide
                .run_visiting(&mut src, 512, universe.faults(), |fi, node, diff| {
                    *visits.entry((fi, node)).or_insert(0u64) += u64::from(diff.count_ones());
                })
                .unwrap();
            assert_eq!(n, n_ref, "w={w}");
            assert_eq!(counts, counts_ref, "w={w}");
            assert_eq!(visits, visits_narrow, "w={w}");
        }
    }

    #[test]
    fn wide_tail_respects_max_patterns() {
        // 300 is not a multiple of any supported block width × 64.
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(9, 77);
        let (counts_ref, n_ref) = narrow
            .run_counting(&mut src, 300, universe.faults())
            .unwrap();
        assert_eq!(n_ref, 300);
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = RandomPatterns::new(9, 77);
            let (counts, n) = wide.run_counting(&mut src, 300, universe.faults()).unwrap();
            assert_eq!(n, 300, "w={w}");
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    #[test]
    fn partial_source_blocks_stop_a_wide_block_early() {
        // ExhaustivePatterns over 3 inputs yields one 8-lane block; a
        // wide simulator must not mix further (empty) words into it.
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = ExhaustivePatterns::new(3);
            let (counts, n) = wide.run_counting(&mut src, 64, universe.faults()).unwrap();
            assert_eq!(n, 8, "w={w}");
            let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
            let mut src = ExhaustivePatterns::new(3);
            let (counts_ref, _) = narrow
                .run_counting(&mut src, 64, universe.faults())
                .unwrap();
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported block width")]
    fn rejects_unsupported_block_width() {
        let c = sample();
        let _ = FaultSimulator::with_block_words(&c, 3);
    }

    #[test]
    fn default_options_use_cpt() {
        let c = sample();
        let sim = FaultSimulator::new(&c).unwrap();
        assert_eq!(sim.detection(), DetectionMode::CriticalPathTracing);
        assert_eq!(sim.block_words(), DEFAULT_BLOCK_WORDS);
        let opts = SimOptions {
            detection: DetectionMode::Explicit,
            ..SimOptions::default()
        };
        let sim = FaultSimulator::with_options(&c, opts).unwrap();
        assert_eq!(sim.detection(), DetectionMode::Explicit);
    }

    fn explicit(c: &Circuit, w: usize) -> FaultSimulator {
        let opts = SimOptions {
            block_words: w,
            detection: DetectionMode::Explicit,
            ..SimOptions::default()
        };
        FaultSimulator::with_options(c, opts).unwrap()
    }

    fn cpt(c: &Circuit, w: usize) -> FaultSimulator {
        let opts = SimOptions {
            block_words: w,
            detection: DetectionMode::CriticalPathTracing,
            ..SimOptions::default()
        };
        FaultSimulator::with_options(c, opts).unwrap()
    }

    /// CPT equals explicit mode bit for bit — dropping runs (first
    /// detections, patterns applied) and counting runs — on a circuit
    /// mixing reconvergent stems, multi-output regions, XOR trees and
    /// wide gates, at every supported width.
    #[test]
    fn cpt_matches_explicit_on_reconvergent_circuit() {
        let c = tree_circuit();
        let universe = FaultUniverse::full(&c).unwrap();
        for w in [1usize, 2, 4, 8] {
            let mut src = RandomPatterns::new(9, 11);
            let reference = explicit(&c, w)
                .run(&mut src, 1000, universe.faults())
                .unwrap();
            let mut src = RandomPatterns::new(9, 11);
            let result = cpt(&c, w).run(&mut src, 1000, universe.faults()).unwrap();
            assert_eq!(
                result.patterns_applied(),
                reference.patterns_applied(),
                "w={w}"
            );
            for i in 0..universe.len() {
                assert_eq!(
                    result.first_detection(i),
                    reference.first_detection(i),
                    "fault {} at w={w}",
                    universe.faults()[i].describe(&c)
                );
            }

            let mut src = ExhaustivePatterns::new(9);
            let (counts_ref, _) = explicit(&c, w)
                .run_counting(&mut src, 512, universe.faults())
                .unwrap();
            let mut src = ExhaustivePatterns::new(9);
            let (counts, _) = cpt(&c, w)
                .run_counting(&mut src, 512, universe.faults())
                .unwrap();
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    /// CPT handles the degenerate region shapes exactly: gates consuming
    /// a signal twice (pin-level fanout makes the driver a root),
    /// constant drivers, dangling stems and undetectable faults.
    #[test]
    fn cpt_matches_explicit_on_degenerate_shapes() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Xor, vec![a, a], "g").unwrap(); // constant 0
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let t = b.gate(GateKind::Or, vec![x, nx], "t").unwrap(); // constant 1
        let h = b.gate(GateKind::And, vec![g, t, a], "h").unwrap();
        let dangle = b.gate(GateKind::Not, vec![h], "dangle").unwrap();
        let _ = dangle; // no output tap: h is a root via the dangling branch
        b.output(h);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::full(&c).unwrap();
        for w in [1usize, 4] {
            let mut src = ExhaustivePatterns::new(2);
            let (counts_ref, _) = explicit(&c, w)
                .run_counting(&mut src, 4, universe.faults())
                .unwrap();
            let mut src = ExhaustivePatterns::new(2);
            let (counts, _) = cpt(&c, w)
                .run_counting(&mut src, 4, universe.faults())
                .unwrap();
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    /// The explicit word-at-a-time dropping loop is exact at every width
    /// (a fault killed in word j is never evaluated past word j, but its
    /// first detection must not move).
    #[test]
    fn explicit_dropping_matches_across_widths() {
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut src = RandomPatterns::new(9, 5);
        let reference = explicit(&c, 1)
            .run(&mut src, 1000, universe.faults())
            .unwrap();
        for w in [2usize, 4, 8] {
            let mut src = RandomPatterns::new(9, 5);
            let result = explicit(&c, w)
                .run(&mut src, 1000, universe.faults())
                .unwrap();
            assert_eq!(
                result.patterns_applied(),
                reference.patterns_applied(),
                "w={w}"
            );
            for i in 0..universe.len() {
                assert_eq!(
                    result.first_detection(i),
                    reference.first_detection(i),
                    "fault {i} at w={w}"
                );
            }
        }
    }
}
