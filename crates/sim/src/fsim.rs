use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};

use crate::compile::{block_words_supported, DEFAULT_BLOCK_WORDS, MAX_BLOCK_WORDS};
use crate::{Fault, FaultSimResult, FaultSite, LogicSim, PatternSource};

/// Event-driven parallel-pattern single-fault-propagation (PPSFP) fault
/// simulator.
///
/// Per block of `w × 64` patterns (`w` is the *block width* in words,
/// default 4 = 256 patterns) the fault-free circuit is simulated once
/// through the compiled wide kernel; each live fault is then injected
/// and its effects propagated through its fanout cone only, in level
/// order, comparing against the good values at the primary outputs.
/// Faults are dropped at first detection in
/// [`run`](FaultSimulator::run).
///
/// Propagation is scheduled through level-bucketed worklists over a CSR
/// consumer array: scheduling a gate is an O(1) push into its level's
/// bucket and the buckets are swept in ascending level order (a
/// consumer always sits at a strictly higher level than its producer,
/// so a single sweep settles the cone). First-detection indices,
/// detection counts and coverage are bit-identical for every supported
/// block width — lane `j * 64 + l` of a wide block is exactly pattern
/// `j * 64 + l` of the corresponding scalar blocks.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_sim::{FaultSimulator, FaultUniverse, RandomPatterns};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let faults = FaultUniverse::collapsed(&c)?;
/// let mut sim = FaultSimulator::new(&c)?;
/// let mut src = RandomPatterns::new(2, 7);
/// let result = sim.run(&mut src, 256, faults.faults())?;
/// assert_eq!(result.coverage(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator {
    sim: LogicSim,
    w: usize,
    // CSR consumer array: gates consuming node `i` are
    // `consumer_idx[consumer_start[i]..consumer_start[i + 1]]`.
    consumer_start: Vec<u32>,
    consumer_idx: Vec<u32>,
    is_output: Vec<bool>,
    n_inputs: usize,
    // Scratch state, reused across faults and blocks (`w` words/node).
    good: Vec<u64>,
    overlay: Vec<u64>,
    dirty: Vec<bool>,
    touched: Vec<u32>,
    queued: Vec<bool>,
    buckets: Vec<Vec<u32>>,
    pending: usize,
    input_block: Vec<u64>,
    fill_scratch: Vec<u64>,
}

impl FaultSimulator {
    /// Build a simulator for `circuit` at the default block width
    /// ([`crate::DEFAULT_BLOCK_WORDS`] words = 256 patterns per pass).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<FaultSimulator, NetlistError> {
        FaultSimulator::with_block_words(circuit, DEFAULT_BLOCK_WORDS)
    }

    /// Build a simulator processing `block_words × 64` patterns per
    /// pass. Results are bit-identical for every width; wider blocks
    /// amortise the good-value simulation and propagation sweeps over
    /// more lanes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    ///
    /// # Panics
    ///
    /// Panics if `block_words` is not 1, 2, 4 or 8.
    pub fn with_block_words(
        circuit: &Circuit,
        block_words: usize,
    ) -> Result<FaultSimulator, NetlistError> {
        assert!(
            block_words_supported(block_words),
            "unsupported block width {block_words} words (supported: 1, 2, 4, 8)"
        );
        let sim = LogicSim::new(circuit)?;
        let topo = Topology::of(circuit)?;
        let n = circuit.node_count();
        let w = block_words;
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for id in circuit.node_ids() {
            for fo in topo.fanouts(id) {
                let gate = fo.gate.index() as u32;
                // Deduplicate gates consuming the same signal twice.
                if per_node[id.index()].last() != Some(&gate) {
                    per_node[id.index()].push(gate);
                }
            }
        }
        let mut consumer_start = Vec::with_capacity(n + 1);
        let mut consumer_idx = Vec::new();
        consumer_start.push(0u32);
        for consumers in &per_node {
            consumer_idx.extend_from_slice(consumers);
            consumer_start.push(consumer_idx.len() as u32);
        }
        let mut is_output = vec![false; n];
        for &po in circuit.outputs() {
            is_output[po.index()] = true;
        }
        Ok(FaultSimulator {
            w,
            consumer_start,
            consumer_idx,
            is_output,
            n_inputs: circuit.inputs().len(),
            good: vec![0; n * w],
            overlay: vec![0; n * w],
            dirty: vec![false; n],
            touched: Vec::with_capacity(64),
            queued: vec![false; n],
            buckets: vec![Vec::new(); topo.max_level() as usize + 1],
            pending: 0,
            input_block: vec![0; circuit.inputs().len() * w],
            fill_scratch: vec![0; circuit.inputs().len()],
            sim,
        })
    }

    /// The simulated circuit.
    pub fn circuit(&self) -> &Circuit {
        self.sim.circuit()
    }

    /// Block width in 64-bit words (patterns per pass / 64).
    pub fn block_words(&self) -> usize {
        self.w
    }

    /// Fault-simulate with fault dropping: apply up to `max_patterns`
    /// patterns from `source`, recording each fault's first detection.
    ///
    /// Stops early when the source is exhausted or every fault is
    /// detected. First-detection indices and the applied-pattern count
    /// are bit-identical across block widths (the count replays where a
    /// width-1 run would have stopped).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` mirrors the
    /// other run methods.
    pub fn run(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<FaultSimResult, NetlistError> {
        let mut first_detected: Vec<Option<u64>> = vec![None; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        let mut base = 0u64;
        while base < max_patterns && !alive.is_empty() {
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.simulate_good();
            let mut last_kill = 0u64;
            alive.retain(|&fi| {
                let detect = self.propagate(faults[fi], &masks, |_, _| {});
                match first_lane(&detect) {
                    Some(offset) => {
                        first_detected[fi] = Some(base + offset);
                        last_kill = last_kill.max(offset);
                        false
                    }
                    None => true,
                }
            });
            if alive.is_empty() {
                // A width-1 run stops applying patterns after the
                // 64-lane sub-block in which the last live fault died;
                // replay that stopping point so `patterns_applied` is
                // width-invariant.
                base += lanes.min((last_kill / 64 + 1) * 64);
            } else {
                base += lanes;
            }
        }
        Ok(FaultSimResult::new(first_detected, base))
    }

    /// Count detections per fault without dropping (for detection-
    /// probability estimation). Returns per-fault detection counts and the
    /// number of patterns applied.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_counting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let mut base = 0u64;
        while base < max_patterns {
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.simulate_good();
            for (fi, &fault) in faults.iter().enumerate() {
                let detect = self.propagate(fault, &masks, |_, _| {});
                counts[fi] += ones(&detect);
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Like [`run_counting`](FaultSimulator::run_counting), but also calls
    /// `visit(fault_index, node, present_mask)` for every 64-lane word in
    /// which a fault's effect is present at a node — the raw material for
    /// propagation profiles (see
    /// [`montecarlo::propagation_profile`](crate::montecarlo::propagation_profile)).
    /// A node may be visited up to `block_words` times per block (once
    /// per word with a nonzero mask); per-node popcount totals are
    /// width-invariant.
    ///
    /// # Errors
    ///
    /// Infallible after construction (see [`FaultSimulator::run`]).
    pub fn run_visiting(
        &mut self,
        source: &mut dyn PatternSource,
        max_patterns: u64,
        faults: &[Fault],
        mut visit: impl FnMut(usize, NodeId, u64),
    ) -> Result<(Vec<u64>, u64), NetlistError> {
        let mut counts = vec![0u64; faults.len()];
        let mut base = 0u64;
        while base < max_patterns {
            let filled = self.next_block(source, max_patterns - base);
            if filled == 0 {
                break;
            }
            let lanes = filled.min(max_patterns - base);
            let masks = lane_masks(lanes, self.w);
            self.simulate_good();
            for (fi, &fault) in faults.iter().enumerate() {
                let detect = self.propagate(fault, &masks, |node, diff| visit(fi, node, diff));
                counts[fi] += ones(&detect);
            }
            base += lanes;
        }
        Ok((counts, base))
    }

    /// Pull up to `w` 64-pattern words from `source` into the staged
    /// input block (word-major per input), zero-padding unused words.
    /// Stops early at source exhaustion, at a partial word, or once
    /// `remaining` patterns are covered — so the number of `fill` calls
    /// matches what `remaining` sequential scalar blocks would consume.
    fn next_block(&mut self, source: &mut dyn PatternSource, remaining: u64) -> u64 {
        let w = self.w;
        let max_words = w.min(remaining.div_ceil(64) as usize);
        self.input_block.fill(0);
        let mut filled = 0u64;
        for j in 0..max_words {
            let n = source.fill(&mut self.fill_scratch);
            if n == 0 {
                break;
            }
            for i in 0..self.n_inputs {
                self.input_block[i * w + j] = self.fill_scratch[i];
            }
            filled += n as u64;
            if n < 64 {
                break;
            }
        }
        filled
    }

    fn simulate_good(&mut self) {
        self.sim
            .simulate_block_into(&self.input_block, &mut self.good, self.w);
    }

    /// Inject `fault` against the current good values and propagate its
    /// effects; returns per-word masks of lanes detected at any primary
    /// output. `on_diff` observes every (node, word) whose value differs
    /// (after masking).
    fn propagate(
        &mut self,
        fault: Fault,
        masks: &[u64; MAX_BLOCK_WORDS],
        mut on_diff: impl FnMut(NodeId, u64),
    ) -> [u64; MAX_BLOCK_WORDS] {
        debug_assert!(self.touched.is_empty() && self.pending == 0);
        let w = self.w;
        let stuck_word = if fault.stuck { u64::MAX } else { 0 };
        let mut injected = [0u64; MAX_BLOCK_WORDS];
        let site = match fault.site {
            FaultSite::Stem(v) => {
                injected[..w].fill(stuck_word);
                v.index()
            }
            FaultSite::Branch { gate, pin } => {
                self.eval_inject(gate, pin as usize, stuck_word, &mut injected);
                gate.index()
            }
        };
        let mut any = 0u64;
        for (j, &mask) in masks.iter().take(w).enumerate() {
            any |= (injected[j] ^ self.good[site * w + j]) & mask;
        }
        if any == 0 {
            return [0; MAX_BLOCK_WORDS];
        }
        self.set_overlay(site, &injected);
        self.push_consumers(site);

        let mut new_vals = [0u64; MAX_BLOCK_WORDS];
        let mut level = 0usize;
        while self.pending > 0 {
            debug_assert!(level < self.buckets.len());
            if self.buckets[level].is_empty() {
                level += 1;
                continue;
            }
            // Take the bucket so `push_consumers` (which only ever
            // targets strictly higher levels) can borrow freely.
            let mut bucket = std::mem::take(&mut self.buckets[level]);
            self.pending -= bucket.len();
            for &gate in &bucket {
                let gi = gate as usize;
                self.queued[gi] = false;
                self.eval_node(gi, &mut new_vals);
                let changed = (0..w).any(|j| new_vals[j] != self.value_word(gi, j));
                if changed {
                    self.set_overlay(gi, &new_vals);
                    self.push_consumers(gi);
                }
            }
            bucket.clear();
            self.buckets[level] = bucket;
            level += 1;
        }

        let mut detect = [0u64; MAX_BLOCK_WORDS];
        for ti in 0..self.touched.len() {
            let ni = self.touched[ti] as usize;
            if self.is_output[ni] {
                for j in 0..w {
                    detect[j] |= (self.overlay[ni * w + j] ^ self.good[ni * w + j]) & masks[j];
                }
            }
        }
        for ti in 0..self.touched.len() {
            let ni = self.touched[ti] as usize;
            for (j, &mask) in masks.iter().enumerate().take(w) {
                let diff = (self.overlay[ni * w + j] ^ self.good[ni * w + j]) & mask;
                if diff != 0 {
                    on_diff(NodeId::from_index(ni), diff);
                }
            }
        }
        self.cleanup();
        detect
    }

    /// Re-evaluate compiled gate `gi` against the overlaid values.
    fn eval_node(&self, gi: usize, out: &mut [u64; MAX_BLOCK_WORDS]) {
        let w = self.w;
        let op_idx = self
            .sim
            .program()
            .op_index(gi)
            .expect("scheduled node is a compiled gate");
        self.sim.program().eval_op_wide(
            op_idx,
            w,
            |node, j| {
                if self.dirty[node] {
                    self.overlay[node * w + j]
                } else {
                    self.good[node * w + j]
                }
            },
            out,
        );
    }

    /// Evaluate `gate` with fanin `pin` forced to `stuck_word` (branch-
    /// fault injection) against the *good* values.
    fn eval_inject(&self, gate: NodeId, pin: usize, stuck_word: u64, out: &mut [u64]) {
        let w = self.w;
        let kind = self.sim.circuit().kind(gate);
        let fanins = self.sim.circuit().fanins(gate);
        enum FoldOp {
            And,
            Or,
            Xor,
        }
        let (fold, init, invert) = match kind {
            GateKind::Buf | GateKind::And => (FoldOp::And, u64::MAX, false),
            GateKind::Not | GateKind::Nand => (FoldOp::And, u64::MAX, true),
            GateKind::Or => (FoldOp::Or, 0, false),
            GateKind::Nor => (FoldOp::Or, 0, true),
            GateKind::Xor => (FoldOp::Xor, 0, false),
            GateKind::Xnor => (FoldOp::Xor, 0, true),
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => {
                unreachable!("branch faults only exist on gates")
            }
        };
        for (j, o) in out.iter_mut().take(w).enumerate() {
            let mut acc = init;
            for (pi, f) in fanins.iter().enumerate() {
                let v = if pi == pin {
                    stuck_word
                } else {
                    self.good[f.index() * w + j]
                };
                match fold {
                    FoldOp::And => acc &= v,
                    FoldOp::Or => acc |= v,
                    FoldOp::Xor => acc ^= v,
                }
            }
            *o = if invert { !acc } else { acc };
        }
    }

    fn value_word(&self, ni: usize, j: usize) -> u64 {
        if self.dirty[ni] {
            self.overlay[ni * self.w + j]
        } else {
            self.good[ni * self.w + j]
        }
    }

    fn set_overlay(&mut self, ni: usize, words: &[u64; MAX_BLOCK_WORDS]) {
        let w = self.w;
        if !self.dirty[ni] {
            self.dirty[ni] = true;
            self.touched.push(ni as u32);
        }
        self.overlay[ni * w..ni * w + w].copy_from_slice(&words[..w]);
    }

    fn push_consumers(&mut self, ni: usize) {
        let start = self.consumer_start[ni] as usize;
        let end = self.consumer_start[ni + 1] as usize;
        for k in start..end {
            let gate = self.consumer_idx[k];
            let gi = gate as usize;
            if !self.queued[gi] {
                self.queued[gi] = true;
                let level = self.sim.level(NodeId::from_index(gi)) as usize;
                self.buckets[level].push(gate);
                self.pending += 1;
            }
        }
    }

    fn cleanup(&mut self) {
        for ni in self.touched.drain(..) {
            self.dirty[ni as usize] = false;
        }
    }
}

/// Per-word valid-lane masks for a block carrying `lanes` patterns.
fn lane_masks(lanes: u64, w: usize) -> [u64; MAX_BLOCK_WORDS] {
    let mut masks = [0u64; MAX_BLOCK_WORDS];
    for (j, mask) in masks.iter_mut().take(w).enumerate() {
        let lo = j as u64 * 64;
        *mask = if lanes >= lo + 64 {
            u64::MAX
        } else if lanes > lo {
            (1u64 << (lanes - lo)) - 1
        } else {
            0
        };
    }
    masks
}

/// Offset of the first set lane across detect words (word-major).
fn first_lane(detect: &[u64; MAX_BLOCK_WORDS]) -> Option<u64> {
    detect
        .iter()
        .enumerate()
        .find(|(_, &word)| word != 0)
        .map(|(j, &word)| j as u64 * 64 + u64::from(word.trailing_zeros()))
}

/// Total set lanes across detect words.
fn ones(detect: &[u64; MAX_BLOCK_WORDS]) -> u64 {
    detect.iter().map(|word| u64::from(word.count_ones())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExhaustivePatterns, FaultUniverse, RandomPatterns};
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("d");
        let g1 = b.gate(GateKind::And, vec![a, c], "g1").unwrap();
        let g2 = b.gate(GateKind::Or, vec![g1, d], "g2").unwrap();
        b.output(g2);
        b.finish().unwrap()
    }

    /// Reference: detect fault by comparing full faulty-circuit evaluation.
    fn reference_detects(c: &Circuit, fault: Fault, assignment: &[bool]) -> bool {
        let good = c.evaluate(assignment).unwrap();
        // Evaluate faulty circuit naively.
        let topo = Topology::of(c).unwrap();
        let mut vals = vec![false; c.node_count()];
        for (&i, &v) in c.inputs().iter().zip(assignment) {
            vals[i.index()] = v;
        }
        for &id in topo.order() {
            let node = c.node(id);
            if !node.kind().is_source() {
                let fanins: Vec<bool> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(pin, f)| {
                        let mut v = vals[f.index()];
                        if let FaultSite::Branch { gate, pin: fp } = fault.site {
                            if gate == id && fp as usize == pin {
                                v = fault.stuck;
                            }
                        }
                        v
                    })
                    .collect();
                vals[id.index()] = node.kind().eval(fanins.iter().copied());
            }
            if let FaultSite::Stem(v) = fault.site {
                if v == id {
                    vals[id.index()] = fault.stuck;
                }
            }
        }
        c.outputs()
            .iter()
            .any(|o| vals[o.index()] != good[o.index()])
    }

    #[test]
    fn matches_reference_exhaustively() {
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, n) = sim.run_counting(&mut src, 8, universe.faults()).unwrap();
        assert_eq!(n, 8);
        for (fi, &fault) in universe.faults().iter().enumerate() {
            let mut expected = 0u64;
            for p in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| p & (1 << i) != 0).collect();
                if reference_detects(&c, fault, &assignment) {
                    expected += 1;
                }
            }
            assert_eq!(counts[fi], expected, "fault {}", fault.describe(&c));
        }
    }

    #[test]
    fn run_with_dropping_covers_everything_detectable() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 42);
        let result = sim.run(&mut src, 512, universe.faults()).unwrap();
        assert_eq!(result.coverage(), 1.0);
        // First detections are within the applied pattern budget.
        for i in 0..universe.len() {
            assert!(result.first_detection(i).unwrap() < result.patterns_applied());
        }
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // a fans out to g1 (AND with x) and g2 (AND with y). Branch SA1 on
        // the a→g1 pin is detectable independently of the a→g2 pin.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let branch = Fault {
            site: FaultSite::Branch { gate: g1, pin: 0 },
            stuck: true,
        };
        let stem = Fault::stem_sa1(a);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let (counts, _) = sim.run_counting(&mut src, 8, &[branch, stem]).unwrap();
        // Branch SA1 detected when a=0, x=1 (2 patterns: y free).
        assert_eq!(counts[0], 2);
        // Stem SA1 detected when a=0 and (x=1 or y=1): 3 patterns.
        assert_eq!(counts[1], 3);
    }

    #[test]
    fn undetectable_fault_stays_undetected() {
        // y = OR(x, NOT(x)) is constant 1: y/SA1 is undetectable.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::Or, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        let result = sim.run(&mut src, 2, &[Fault::stem_sa1(y)]).unwrap();
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.patterns_applied(), 2);
    }

    #[test]
    fn max_patterns_respected_mid_block() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = RandomPatterns::new(3, 1);
        let result = sim.run(&mut src, 10, universe.faults()).unwrap();
        assert_eq!(result.patterns_applied(), 10);
        for i in 0..universe.len() {
            if let Some(p) = result.first_detection(i) {
                assert!(p < 10);
            }
        }
    }

    #[test]
    fn observation_point_makes_fault_detectable() {
        // Internal node masked from the output; observing it exposes the
        // fault. y = AND(g, 0-ish)? Build: g = XOR(a,b); y = AND(g, c) with
        // c tied low via AND(a, NOT(a)).
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let bb = b.input("b");
        let na = b.gate(GateKind::Not, vec![a], "na").unwrap();
        let zero = b.gate(GateKind::And, vec![a, na], "zero").unwrap();
        let g = b.gate(GateKind::Xor, vec![a, bb], "g").unwrap();
        let y = b.gate(GateKind::And, vec![g, zero], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let fault = Fault::stem_sa0(g);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(2);
        let r = sim.run(&mut src, 4, &[fault]).unwrap();
        assert_eq!(r.detected_count(), 0, "masked without observation");

        let (obs, _) =
            tpi_netlist::transform::apply_plan(&c, &[tpi_netlist::TestPoint::observe(g)]).unwrap();
        let mut sim2 = FaultSimulator::new(&obs).unwrap();
        let mut src2 = ExhaustivePatterns::new(2);
        let r2 = sim2.run(&mut src2, 4, &[fault]).unwrap();
        assert_eq!(r2.detected_count(), 1, "observable after OP");
    }

    #[test]
    fn visiting_reports_fault_effects_at_nodes() {
        let c = sample();
        let g1 = c.find_node("g1").unwrap();
        let fault = Fault::stem_sa1(g1);
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(3);
        let mut at_g1 = 0u64;
        let (_, n) = sim
            .run_visiting(&mut src, 8, &[fault], |fi, node, diff| {
                assert_eq!(fi, 0);
                if node == g1 {
                    at_g1 += u64::from(diff.count_ones());
                }
            })
            .unwrap();
        assert_eq!(n, 8);
        // g1 = AND(a,b): SA1 present whenever g1=0, i.e. 6 of 8 patterns.
        assert_eq!(at_g1, 6);
    }

    #[test]
    fn scratch_state_is_clean_between_faults() {
        // Two consecutive runs give identical results.
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut s1 = ExhaustivePatterns::new(3);
        let (c1, _) = sim.run_counting(&mut s1, 8, universe.faults()).unwrap();
        let mut s2 = ExhaustivePatterns::new(3);
        let (c2, _) = sim.run_counting(&mut s2, 8, universe.faults()).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn gate_consuming_signal_twice() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Xor, vec![a, a], "g").unwrap(); // constant 0
        let h = b.gate(GateKind::Or, vec![g, a], "h").unwrap();
        b.output(h);
        let c = b.finish().unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = ExhaustivePatterns::new(1);
        // g/SA1: h = OR(1, a) = 1; good h = a. Detected when a=0.
        let (counts, _) = sim
            .run_counting(&mut src, 2, &[Fault::stem_sa1(g)])
            .unwrap();
        assert_eq!(counts[0], 1);
    }

    /// Wider circuit exercising deep propagation under every width.
    fn tree_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let xs = b.inputs(9, "x");
        let a = b.balanced_tree(GateKind::Nand, &xs[..3], "a").unwrap();
        let o = b.balanced_tree(GateKind::Nor, &xs[3..6], "o").unwrap();
        let x = b.balanced_tree(GateKind::Xor, &xs[6..], "p").unwrap();
        let m = b.gate(GateKind::And, vec![a, o, x], "m").unwrap();
        let y = b.gate(GateKind::Xor, vec![m, a], "y").unwrap();
        b.output(y);
        b.output(o);
        b.finish().unwrap()
    }

    #[test]
    fn wide_blocks_match_narrow_first_detections() {
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(9, 5);
        let reference = narrow.run(&mut src, 1000, universe.faults()).unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            assert_eq!(wide.block_words(), w);
            let mut src = RandomPatterns::new(9, 5);
            let result = wide.run(&mut src, 1000, universe.faults()).unwrap();
            assert_eq!(
                result.patterns_applied(),
                reference.patterns_applied(),
                "w={w}"
            );
            for i in 0..universe.len() {
                assert_eq!(
                    result.first_detection(i),
                    reference.first_detection(i),
                    "fault {i} at w={w}"
                );
            }
        }
    }

    #[test]
    fn wide_blocks_match_narrow_counts_and_visits() {
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = ExhaustivePatterns::new(9);
        let mut visits_narrow = std::collections::HashMap::new();
        let (counts_ref, n_ref) = narrow
            .run_visiting(&mut src, 512, universe.faults(), |fi, node, diff| {
                *visits_narrow.entry((fi, node)).or_insert(0u64) += u64::from(diff.count_ones());
            })
            .unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = ExhaustivePatterns::new(9);
            let mut visits = std::collections::HashMap::new();
            let (counts, n) = wide
                .run_visiting(&mut src, 512, universe.faults(), |fi, node, diff| {
                    *visits.entry((fi, node)).or_insert(0u64) += u64::from(diff.count_ones());
                })
                .unwrap();
            assert_eq!(n, n_ref, "w={w}");
            assert_eq!(counts, counts_ref, "w={w}");
            assert_eq!(visits, visits_narrow, "w={w}");
        }
    }

    #[test]
    fn wide_tail_respects_max_patterns() {
        // 300 is not a multiple of any supported block width × 64.
        let c = tree_circuit();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = RandomPatterns::new(9, 77);
        let (counts_ref, n_ref) = narrow
            .run_counting(&mut src, 300, universe.faults())
            .unwrap();
        assert_eq!(n_ref, 300);
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = RandomPatterns::new(9, 77);
            let (counts, n) = wide.run_counting(&mut src, 300, universe.faults()).unwrap();
            assert_eq!(n, 300, "w={w}");
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    #[test]
    fn partial_source_blocks_stop_a_wide_block_early() {
        // ExhaustivePatterns over 3 inputs yields one 8-lane block; a
        // wide simulator must not mix further (empty) words into it.
        let c = sample();
        let universe = FaultUniverse::full(&c).unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = ExhaustivePatterns::new(3);
            let (counts, n) = wide.run_counting(&mut src, 64, universe.faults()).unwrap();
            assert_eq!(n, 8, "w={w}");
            let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
            let mut src = ExhaustivePatterns::new(3);
            let (counts_ref, _) = narrow
                .run_counting(&mut src, 64, universe.faults())
                .unwrap();
            assert_eq!(counts, counts_ref, "w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported block width")]
    fn rejects_unsupported_block_width() {
        let c = sample();
        let _ = FaultSimulator::with_block_words(&c, 3);
    }
}
