//! Kernel-level instrumentation: plain-`u64` counters accumulated inside
//! [`FaultSimulator`](crate::FaultSimulator)'s hot loops and published to
//! a [`tpi_obs::Registry`] in bulk.
//!
//! The counters are deliberately *not* atomics: the per-event cost must
//! stay under 1% of W=4 fault-sim throughput (bench-asserted by the
//! `metrics` section of `fsim_throughput`), so the hot paths pay a single
//! register increment and the registry is only touched once per run.
//! Every kernel counter is a deterministic function of (circuit, pattern
//! stream, fault list, block width) — wall clock never feeds one — so
//! equal runs publish bit-identical totals. The two *scheduler* counters
//! ([`steals`](SimCounters::steals) and
//! [`steal_misses`](SimCounters::steal_misses)) are the one exception:
//! they describe which worker happened to execute each work unit, which
//! depends on thread timing. They are always zero for sequential runs,
//! and the simulation *results* stay bit-identical regardless of their
//! values (work units are partition-independent).

use tpi_obs::Registry;

/// Cumulative fault-simulation kernel counters.
///
/// Available on a simulator via
/// [`FaultSimulator::counters`](crate::FaultSimulator::counters) (totals
/// since construction) and per run on
/// [`ControlledRun::counters`](crate::ControlledRun) (that run's delta).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Pattern blocks executed (one good-value simulation each).
    pub blocks: u64,
    /// Pattern lanes applied across those blocks.
    pub pattern_lanes: u64,
    /// Gate evaluations scheduled by event-driven propagation (fault
    /// injections and CPT stem-observability flips alike).
    pub events: u64,
    /// Faults dropped at their first detection.
    pub faults_dropped: u64,
    /// CPT stem-observability words served from the per-block memo.
    pub stem_obs_hits: u64,
    /// CPT stem-observability words computed by a flip propagation.
    pub stem_obs_misses: u64,
    /// Cancellation-token polls (one per pattern block).
    pub polls: u64,
    /// Work units taken from another worker's queue by the parallel
    /// scheduler (zero for sequential runs; scheduling-dependent, see
    /// the module docs).
    pub steals: u64,
    /// Failed full steal scans — a worker checked every other queue and
    /// found all of them empty (zero for sequential runs;
    /// scheduling-dependent, see the module docs).
    pub steal_misses: u64,
}

impl SimCounters {
    /// Adds `other`'s totals into `self` (merging per-worker counters).
    pub fn merge(&mut self, other: &SimCounters) {
        self.blocks += other.blocks;
        self.pattern_lanes += other.pattern_lanes;
        self.events += other.events;
        self.faults_dropped += other.faults_dropped;
        self.stem_obs_hits += other.stem_obs_hits;
        self.stem_obs_misses += other.stem_obs_misses;
        self.polls += other.polls;
        self.steals += other.steals;
        self.steal_misses += other.steal_misses;
    }

    /// The counters accumulated since `earlier` was captured (field-wise
    /// saturating subtraction; counters only grow, so this is exact for
    /// any earlier capture of the same simulator).
    pub fn since(&self, earlier: &SimCounters) -> SimCounters {
        SimCounters {
            blocks: self.blocks.saturating_sub(earlier.blocks),
            pattern_lanes: self.pattern_lanes.saturating_sub(earlier.pattern_lanes),
            events: self.events.saturating_sub(earlier.events),
            faults_dropped: self.faults_dropped.saturating_sub(earlier.faults_dropped),
            stem_obs_hits: self.stem_obs_hits.saturating_sub(earlier.stem_obs_hits),
            stem_obs_misses: self.stem_obs_misses.saturating_sub(earlier.stem_obs_misses),
            polls: self.polls.saturating_sub(earlier.polls),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_misses: self.steal_misses.saturating_sub(earlier.steal_misses),
        }
    }

    /// Adds every counter to `registry` under the `sim.` prefix. All
    /// nine metrics are registered even when zero, so consumers can rely
    /// on the keys being present.
    pub fn publish_to(&self, registry: &Registry) {
        registry.counter("sim.blocks").add(self.blocks);
        registry
            .counter("sim.pattern_lanes")
            .add(self.pattern_lanes);
        registry.counter("sim.events").add(self.events);
        registry
            .counter("sim.faults_dropped")
            .add(self.faults_dropped);
        registry
            .counter("sim.stem_obs_hits")
            .add(self.stem_obs_hits);
        registry
            .counter("sim.stem_obs_misses")
            .add(self.stem_obs_misses);
        registry.counter("sim.polls").add(self.polls);
        registry.counter("sim.steals").add(self.steals);
        registry.counter("sim.steal_misses").add(self.steal_misses);
    }
}
