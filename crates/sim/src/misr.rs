use crate::lfsr::taps_for;

/// A multiple-input signature register (MISR) for test-response
/// compaction.
///
/// Each clock the register performs one maximal-LFSR shift and XORs the
/// response bits of that pattern into its state. The final
/// [`signature`](Misr::signature) summarises the whole response stream;
/// any single differing response bit changes the signature (aliasing
/// probability ≈ `2^-width` for long streams).
///
/// # Example
///
/// ```
/// use tpi_sim::Misr;
/// let mut a = Misr::new(16, 1).unwrap();
/// let mut b = Misr::new(16, 1).unwrap();
/// a.absorb(0b01);
/// b.absorb(0b11); // one response bit differs
/// assert_ne!(a.signature(), b.signature());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    state: u64,
    clocks: u64,
}

impl Misr {
    /// Create a MISR of the given width (2..=32). Returns `None` for
    /// unsupported widths.
    pub fn new(width: u32, seed: u64) -> Option<Misr> {
        if !(2..=32).contains(&width) {
            return None;
        }
        let mask = (1u64 << width) - 1;
        Some(Misr {
            width,
            state: seed & mask,
            clocks: 0,
        })
    }

    /// Absorb one response vector (up to `width` output bits packed into
    /// the low bits of `bits`).
    pub fn absorb(&mut self, bits: u64) {
        let mask = (1u64 << self.width) - 1;
        let mut fb = 0u64;
        for &t in taps_for(self.width) {
            fb ^= (self.state >> (t - 1)) & 1;
        }
        self.state = (((self.state << 1) | fb) & mask) ^ (bits & mask);
        self.clocks += 1;
    }

    /// Absorb a block of bit-parallel simulation results: `output_words[o]`
    /// holds output `o` across lanes; lanes `0..n_patterns` are absorbed in
    /// order.
    pub fn absorb_block(&mut self, output_words: &[u64], n_patterns: usize) {
        debug_assert!(n_patterns <= 64);
        for p in 0..n_patterns {
            let mut bits = 0u64;
            for (o, &w) in output_words.iter().enumerate() {
                bits |= ((w >> p) & 1) << (o as u32 % self.width);
            }
            self.absorb(bits);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Number of response vectors absorbed.
    pub fn clocks(&self) -> u64 {
        self.clocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Misr::new(16, 0xace1).unwrap();
        let mut b = Misr::new(16, 0xace1).unwrap();
        for i in 0..100u64 {
            a.absorb(i * 3);
            b.absorb(i * 3);
        }
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.clocks(), 100);
    }

    #[test]
    fn single_bit_flip_changes_signature() {
        let mut a = Misr::new(16, 0).unwrap();
        let mut b = Misr::new(16, 0).unwrap();
        for i in 0..50u64 {
            a.absorb(i);
            b.absorb(if i == 25 { i ^ 1 } else { i });
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn early_error_not_cancelled_by_shift() {
        // A single error injected early must persist to the end
        // (linearity: signature diff = shifted error ≠ 0).
        let mut a = Misr::new(8, 0).unwrap();
        let mut b = Misr::new(8, 0).unwrap();
        a.absorb(1);
        b.absorb(0);
        for _ in 0..500 {
            a.absorb(0);
            b.absorb(0);
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn absorb_block_matches_manual_lanes() {
        // One output, 3 patterns: values 1,0,1.
        let mut blockwise = Misr::new(8, 0).unwrap();
        blockwise.absorb_block(&[0b101], 3);
        let mut manual = Misr::new(8, 0).unwrap();
        manual.absorb(1);
        manual.absorb(0);
        manual.absorb(1);
        assert_eq!(blockwise.signature(), manual.signature());
    }

    #[test]
    fn invalid_width() {
        assert!(Misr::new(1, 0).is_none());
        assert!(Misr::new(40, 0).is_none());
    }
}
