//! Weighted (biased) random pattern generation.
//!
//! Weighted-random testing — biasing each primary input's 1-probability
//! away from 1/2 — was the main *competitor* to test point insertion in
//! the DAC'87-era literature (Wunderlich's PROTEST line of work). This
//! source exists so the experiments can compare circuit modification
//! against input-distribution modification, and so control-point-biased
//! analyses ([`CopAnalysis::with_input_probs`]) can be validated by
//! simulation.
//!
//! [`CopAnalysis::with_input_probs`]: ../../tpi_testability/struct.CopAnalysis.html#method.with_input_probs

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::patterns::PatternSource;

/// A [`PatternSource`] with a per-input 1-probability.
///
/// # Example
///
/// ```
/// use tpi_sim::{PatternSource, WeightedPatterns};
/// // First input heavily biased to 1, second fair.
/// let mut src = WeightedPatterns::new(vec![0.9, 0.5], 7).unwrap();
/// let mut words = [0u64; 2];
/// let mut ones = [0u32; 2];
/// for _ in 0..256 {
///     src.fill(&mut words);
///     ones[0] += words[0].count_ones();
///     ones[1] += words[1].count_ones();
/// }
/// assert!(ones[0] > ones[1]);
/// ```
#[derive(Clone, Debug)]
pub struct WeightedPatterns {
    weights: Vec<f64>,
    seed: u64,
    rng: StdRng,
}

impl WeightedPatterns {
    /// Create a weighted source; `weights[i]` is input `i`'s
    /// 1-probability.
    ///
    /// Returns `None` if any weight is outside `[0, 1]`.
    pub fn new(weights: Vec<f64>, seed: u64) -> Option<WeightedPatterns> {
        if weights.iter().any(|w| !(0.0..=1.0).contains(w)) {
            return None;
        }
        Some(WeightedPatterns {
            weights,
            seed,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// A uniform-weight source (all inputs at the same probability).
    pub fn uniform(n_inputs: usize, weight: f64, seed: u64) -> Option<WeightedPatterns> {
        WeightedPatterns::new(vec![weight; n_inputs], seed)
    }

    /// The configured weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl PatternSource for WeightedPatterns {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        debug_assert_eq!(words.len(), self.weights.len());
        for (w, &p) in words.iter_mut().zip(&self.weights) {
            *w = match p {
                0.0 => 0,
                1.0 => u64::MAX,
                p if (p - 0.5).abs() < 1e-12 => self.rng.gen::<u64>(),
                p => {
                    let mut word = 0u64;
                    for bit in 0..64 {
                        if self.rng.gen::<f64>() < p {
                            word |= 1 << bit;
                        }
                    }
                    word
                }
            };
        }
        64
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_weights() {
        let weights = vec![0.1, 0.5, 0.9, 0.0, 1.0];
        let mut src = WeightedPatterns::new(weights.clone(), 3).unwrap();
        let mut words = [0u64; 5];
        let mut ones = [0u64; 5];
        let blocks = 400;
        for _ in 0..blocks {
            src.fill(&mut words);
            for (o, w) in ones.iter_mut().zip(&words) {
                *o += u64::from(w.count_ones());
            }
        }
        let total = (blocks * 64) as f64;
        for (i, &expected) in weights.iter().enumerate() {
            let freq = ones[i] as f64 / total;
            assert!(
                (freq - expected).abs() < 0.02,
                "input {i}: freq {freq} vs weight {expected}"
            );
        }
    }

    #[test]
    fn weighted_stream_is_block_width_invariant_under_fault_sim() {
        use crate::{FaultSimulator, FaultUniverse};
        use tpi_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(5, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut narrow = FaultSimulator::with_block_words(&c, 1).unwrap();
        let mut src = WeightedPatterns::uniform(5, 0.8, 11).unwrap();
        let (counts_ref, n_ref) = narrow
            .run_counting(&mut src, 640, universe.faults())
            .unwrap();
        for w in [2usize, 4, 8] {
            let mut wide = FaultSimulator::with_block_words(&c, w).unwrap();
            let mut src = WeightedPatterns::uniform(5, 0.8, 11).unwrap();
            let (counts, n) = wide.run_counting(&mut src, 640, universe.faults()).unwrap();
            assert_eq!((counts, n), (counts_ref.clone(), n_ref), "w={w}");
        }
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(WeightedPatterns::new(vec![0.5, 1.1], 0).is_none());
        assert!(WeightedPatterns::new(vec![-0.1], 0).is_none());
        assert!(WeightedPatterns::uniform(3, 0.25, 0).is_some());
    }

    #[test]
    fn deterministic_and_resettable() {
        let mut a = WeightedPatterns::uniform(2, 0.3, 9).unwrap();
        let mut words1 = [0u64; 2];
        a.fill(&mut words1);
        a.reset();
        let mut words2 = [0u64; 2];
        a.fill(&mut words2);
        assert_eq!(words1, words2);
    }

    #[test]
    fn biased_source_beats_fair_source_on_and_cone() {
        // The classic weighted-random result: biasing inputs toward 1
        // detects AND-cone SA0 faults far sooner.
        use crate::{FaultSimulator, FaultUniverse};
        use tpi_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("and12");
        let xs = b.inputs(12, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();

        let mut fair = crate::RandomPatterns::new(12, 5);
        let fair_result = sim.run(&mut fair, 2_000, universe.faults()).unwrap();

        let mut biased = WeightedPatterns::uniform(12, 0.9, 5).unwrap();
        let biased_result = sim.run(&mut biased, 2_000, universe.faults()).unwrap();

        assert!(
            biased_result.coverage() > fair_result.coverage(),
            "biased {} vs fair {}",
            biased_result.coverage(),
            fair_result.coverage()
        );
    }
}
