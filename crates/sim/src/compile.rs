//! Lowering of a levelised circuit into a flat structure-of-arrays
//! simulation program.
//!
//! [`LogicSim`](crate::LogicSim) walks its evaluation order once at
//! construction and emits a [`Program`]: a contiguous opcode array with
//! the fanins of multi-input gates packed into one CSR index pool. The
//! interpreter loop over the program touches no `Node` structs, no
//! per-gate fanin `Vec`s and no trait objects — each op carries its
//! operand slots inline, so the execute loop is a dense sweep over three
//! flat arrays that LLVM can keep in registers and autovectorise.
//!
//! Values live in a dense slot array of `W` 64-bit words per node
//! (`values[node * W + j]`), where `W` is the *block width* in words:
//! one pass of the kernel simulates `W × 64` patterns. Word `j`, lane
//! `l` of a block is pattern `j * 64 + l`; widening `W` only changes
//! how many 64-pattern sub-blocks share a pass, never the values in any
//! lane, so results are bit-identical across widths.
//!
//! Two-input gates (the overwhelming majority in gate-level netlists)
//! get dedicated opcodes whose operands are node indices; gates with
//! three or more fanins fall back to `*N` opcodes that fold over a CSR
//! slice. Degenerate single-input AND/OR/XOR compile to `Buf` (and
//! their inverting duals to `Not`) — the fold semantics make them exact
//! aliases.

use tpi_netlist::{Circuit, GateKind, NodeId, Topology};

/// Largest supported block width, in 64-bit words per node.
pub const MAX_BLOCK_WORDS: usize = 8;

/// Default block width: 4 words = 256 patterns per kernel pass.
pub const DEFAULT_BLOCK_WORDS: usize = 4;

/// `true` for the block widths the monomorphised kernels support.
pub const fn block_words_supported(w: usize) -> bool {
    matches!(w, 1 | 2 | 4 | 8)
}

/// Gather one node's `W`-word slot into a stack array.
#[inline(always)]
fn load<const W: usize>(values: &[u64], node: u32) -> [u64; W] {
    let mut v = [0u64; W];
    v.copy_from_slice(&values[node as usize * W..][..W]);
    v
}

/// One lowered gate. For two-operand opcodes `a`/`b` are fanin node
/// indices (`b` unused by `Buf`/`Not`); for `*N` opcodes `a` is the
/// start offset into the CSR fanin pool and `b` the fanin count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Op {
    pub(crate) code: OpCode,
    pub(crate) out: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

/// Opcode of a lowered gate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum OpCode {
    Buf,
    Not,
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    AndN,
    NandN,
    OrN,
    NorN,
    XorN,
    XnorN,
}

/// A compiled simulation program: gates in level order, lowered to
/// [`Op`]s over dense value slots.
///
/// Compilation invariant (load-bearing for the `simd` kernels): every
/// node index stored in `ops` (`out`/`a`/`b` of two-operand opcodes) and
/// in `fanin_idx` is `< node_op.len()` — they all come from `NodeId`s of
/// the compiled circuit, whose node count is exactly
/// [`node_limit`](Program::node_limit).
#[derive(Clone, Debug)]
pub(crate) struct Program {
    pub(crate) ops: Vec<Op>,
    pub(crate) fanin_idx: Vec<u32>,
    /// Node index → op index (`u32::MAX` for sources).
    node_op: Vec<u32>,
    /// Constant nodes and their fill words (all lanes equal).
    constants: Vec<(u32, u64)>,
}

impl Program {
    /// Lower `circuit` using the evaluation order of `topo`.
    pub(crate) fn compile(circuit: &Circuit, topo: &Topology) -> Program {
        let mut ops = Vec::new();
        let mut fanin_idx: Vec<u32> = Vec::new();
        let mut node_op = vec![u32::MAX; circuit.node_count()];
        let mut constants = Vec::new();
        for &id in topo.order() {
            let node = circuit.node(id);
            let kind = node.kind();
            match kind {
                GateKind::Const0 => {
                    constants.push((id.index() as u32, 0));
                    continue;
                }
                GateKind::Const1 => {
                    constants.push((id.index() as u32, u64::MAX));
                    continue;
                }
                GateKind::Input => continue,
                _ => {}
            }
            let out = id.index() as u32;
            let fanins = node.fanins();
            let op = match (kind, fanins.len()) {
                (GateKind::Buf | GateKind::And | GateKind::Or | GateKind::Xor, 1) => Op {
                    code: OpCode::Buf,
                    out,
                    a: fanins[0].index() as u32,
                    b: 0,
                },
                (GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor, 1) => Op {
                    code: OpCode::Not,
                    out,
                    a: fanins[0].index() as u32,
                    b: 0,
                },
                (kind, 2) => Op {
                    code: match kind {
                        GateKind::And => OpCode::And2,
                        GateKind::Nand => OpCode::Nand2,
                        GateKind::Or => OpCode::Or2,
                        GateKind::Nor => OpCode::Nor2,
                        GateKind::Xor => OpCode::Xor2,
                        GateKind::Xnor => OpCode::Xnor2,
                        _ => unreachable!("two-input {kind:?} cannot exist"),
                    },
                    out,
                    a: fanins[0].index() as u32,
                    b: fanins[1].index() as u32,
                },
                (kind, len) => {
                    let start = fanin_idx.len() as u32;
                    fanin_idx.extend(fanins.iter().map(|f| f.index() as u32));
                    Op {
                        code: match kind {
                            GateKind::And => OpCode::AndN,
                            GateKind::Nand => OpCode::NandN,
                            GateKind::Or => OpCode::OrN,
                            GateKind::Nor => OpCode::NorN,
                            GateKind::Xor => OpCode::XorN,
                            GateKind::Xnor => OpCode::XnorN,
                            _ => unreachable!("{len}-input {kind:?} cannot exist"),
                        },
                        out,
                        a: start,
                        b: len as u32,
                    }
                }
            };
            node_op[id.index()] = ops.len() as u32;
            ops.push(op);
        }
        Program {
            ops,
            fanin_idx,
            node_op,
            constants,
        }
    }

    /// Constant nodes and their (all-lanes-equal) fill words.
    pub(crate) fn constants(&self) -> &[(u32, u64)] {
        &self.constants
    }

    /// Op index computing `node`, if it is a compiled gate.
    pub(crate) fn op_index(&self, node: usize) -> Option<usize> {
        let op = self.node_op[node];
        (op != u32::MAX).then_some(op as usize)
    }

    /// Number of lowered ops.
    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Exclusive upper bound on every node index the program touches
    /// (the compiled circuit's node count) — the bounds witness the
    /// raw-pointer SIMD kernels assert value-buffer lengths against.
    pub(crate) fn node_limit(&self) -> usize {
        self.node_op.len()
    }

    /// Output node index of the op at `op_idx`.
    pub(crate) fn op_out(&self, op_idx: usize) -> u32 {
        self.ops[op_idx].out
    }

    /// Backward sensitization kernel for the op at `op_idx`,
    /// monomorphised over the block width `W`.
    ///
    /// Given the observability words of the op's *output* line
    /// (`out_sens`) and the fault-free values of the block (`good`,
    /// `node * W + j` layout), computes for every input pin the
    /// observability of that *input* line — `out_sens` AND-ed with the
    /// pin's boolean sensitivity under the good side-input values — and
    /// calls `emit(pin, fanin_node, line_obs)` once per pin (pin order
    /// unspecified). Sensitivity is exact for a single-line change:
    ///
    /// * AND/NAND: pin sensitive where every *other* fanin is 1;
    /// * OR/NOR: pin sensitive where every other fanin is 0;
    /// * XOR/XNOR, Buf/Not: always sensitive (output inversion never
    ///   affects whether a flip propagates).
    ///
    /// N-ary ops use a prefix/suffix product over the CSR fanin slice
    /// (`scratch` holds the prefix rows), so the whole gate costs
    /// `O(fanins)` instead of `O(fanins²)`.
    ///
    /// `#[inline(always)]` so the kernel re-instantiates inside the
    /// `#[target_feature]` wrappers of the `simd` module and its `W`-lane
    /// loops pick up the wider registers.
    #[inline(always)]
    pub(crate) fn sens_op_wide<const W: usize>(
        &self,
        op_idx: usize,
        out_sens: &[u64; W],
        good: &[u64],
        scratch: &mut Vec<u64>,
        emit: &mut impl FnMut(u32, u32, &[u64; W]),
    ) {
        let op = self.ops[op_idx];
        macro_rules! binary_sens {
            (|$x:ident| $side:expr) => {{
                let a = load::<W>(good, op.a);
                let b = load::<W>(good, op.b);
                let mut s = [0u64; W];
                for j in 0..W {
                    let $x = b[j];
                    s[j] = out_sens[j] & $side;
                }
                emit(0, op.a, &s);
                for j in 0..W {
                    let $x = a[j];
                    s[j] = out_sens[j] & $side;
                }
                emit(1, op.b, &s);
            }};
        }
        macro_rules! nary_sens {
            (|$x:ident| $side:expr) => {{
                let fanins = &self.fanin_idx[op.a as usize..(op.a + op.b) as usize];
                // Prefix rows: scratch[i] = out_sens & side(0) & .. & side(i-1).
                scratch.clear();
                scratch.reserve(fanins.len() * W);
                let mut acc = *out_sens;
                for &f in fanins {
                    scratch.extend_from_slice(&acc);
                    let v = load::<W>(good, f);
                    for j in 0..W {
                        let $x = v[j];
                        acc[j] &= $side;
                    }
                }
                // Suffix sweep emits line_obs(i) = prefix(i) & side(i+1..).
                let mut suffix = [u64::MAX; W];
                for (i, &f) in fanins.iter().enumerate().rev() {
                    let mut line = [0u64; W];
                    for j in 0..W {
                        line[j] = scratch[i * W + j] & suffix[j];
                    }
                    emit(i as u32, f, &line);
                    let v = load::<W>(good, f);
                    for j in 0..W {
                        let $x = v[j];
                        suffix[j] &= $side;
                    }
                }
            }};
        }
        match op.code {
            OpCode::Buf | OpCode::Not => emit(0, op.a, out_sens),
            OpCode::And2 | OpCode::Nand2 => binary_sens!(|x| x),
            OpCode::Or2 | OpCode::Nor2 => binary_sens!(|x| !x),
            OpCode::Xor2 | OpCode::Xnor2 => {
                emit(0, op.a, out_sens);
                emit(1, op.b, out_sens);
            }
            OpCode::AndN | OpCode::NandN => nary_sens!(|x| x),
            OpCode::OrN | OpCode::NorN => nary_sens!(|x| !x),
            OpCode::XorN | OpCode::XnorN => {
                let fanins = &self.fanin_idx[op.a as usize..(op.a + op.b) as usize];
                for (i, &f) in fanins.iter().enumerate() {
                    emit(i as u32, f, out_sens);
                }
            }
        }
    }

    /// Run the whole program over `values` (`node_count * w` words,
    /// inputs and constants already seeded), dispatching to a
    /// monomorphised kernel for the supported widths.
    ///
    /// # Panics
    ///
    /// Panics for unsupported `w` (see [`block_words_supported`]).
    pub(crate) fn execute_block(&self, values: &mut [u64], w: usize) {
        match w {
            1 => self.execute::<1>(values),
            2 => self.execute::<2>(values),
            4 => self.execute::<4>(values),
            8 => self.execute::<8>(values),
            _ => panic!("unsupported block width {w} words (supported: 1, 2, 4, 8)"),
        }
    }

    /// The monomorphised kernel. Operand slots are *gathered* into
    /// fixed-size stack arrays before the result slot is written —
    /// circuit transforms may rewire an existing gate to consume a
    /// later-appended node (control points re-drive branch pins), so no
    /// index ordering between operands and outputs is assumed; the
    /// levelised op order alone guarantees operands are settled. The
    /// `W`-lane loops run over exact-length arrays, so LLVM unrolls and
    /// autovectorises them without per-word bounds checks.
    fn execute<const W: usize>(&self, values: &mut [u64]) {
        macro_rules! unary {
            ($op:expr, |$x:ident| $e:expr) => {{
                let a = load::<W>(values, $op.a);
                let mut r = [0u64; W];
                for j in 0..W {
                    let $x = a[j];
                    r[j] = $e;
                }
                r
            }};
        }
        macro_rules! binary {
            ($op:expr, |$x:ident, $y:ident| $e:expr) => {{
                let a = load::<W>(values, $op.a);
                let b = load::<W>(values, $op.b);
                let mut r = [0u64; W];
                for j in 0..W {
                    let $x = a[j];
                    let $y = b[j];
                    r[j] = $e;
                }
                r
            }};
        }
        macro_rules! nary {
            ($op:expr, $init:expr, |$acc:ident, $x:ident| $fold:expr, $inv:expr) => {{
                let mut r = [$init; W];
                let fanins = &self.fanin_idx[$op.a as usize..($op.a + $op.b) as usize];
                for &f in fanins {
                    let fs = load::<W>(values, f);
                    for j in 0..W {
                        let $acc = r[j];
                        let $x = fs[j];
                        r[j] = $fold;
                    }
                }
                if $inv {
                    for j in 0..W {
                        r[j] = !r[j];
                    }
                }
                r
            }};
        }
        for op in &self.ops {
            let result = match op.code {
                OpCode::Buf => unary!(op, |x| x),
                OpCode::Not => unary!(op, |x| !x),
                OpCode::And2 => binary!(op, |x, y| x & y),
                OpCode::Nand2 => binary!(op, |x, y| !(x & y)),
                OpCode::Or2 => binary!(op, |x, y| x | y),
                OpCode::Nor2 => binary!(op, |x, y| !(x | y)),
                OpCode::Xor2 => binary!(op, |x, y| x ^ y),
                OpCode::Xnor2 => binary!(op, |x, y| !(x ^ y)),
                OpCode::AndN => nary!(op, u64::MAX, |acc, x| acc & x, false),
                OpCode::NandN => nary!(op, u64::MAX, |acc, x| acc & x, true),
                OpCode::OrN => nary!(op, 0, |acc, x| acc | x, false),
                OpCode::NorN => nary!(op, 0, |acc, x| acc | x, true),
                OpCode::XorN => nary!(op, 0, |acc, x| acc ^ x, false),
                OpCode::XnorN => nary!(op, 0, |acc, x| acc ^ x, true),
            };
            values[op.out as usize * W..][..W].copy_from_slice(&result);
        }
    }

    /// Evaluate the single op at `op_idx` into `out[..w]`, reading
    /// operand words through `resolve(node_index, word)` — the
    /// event-driven fault simulator resolves against its overlay here.
    pub(crate) fn eval_op_wide(
        &self,
        op_idx: usize,
        w: usize,
        resolve: impl Fn(usize, usize) -> u64,
        out: &mut [u64],
    ) {
        let op = self.ops[op_idx];
        let out = &mut out[..w];
        macro_rules! nary {
            ($init:expr, |$acc:ident, $x:ident| $fold:expr, $inv:expr) => {{
                out.fill($init);
                let fanins = &self.fanin_idx[op.a as usize..(op.a + op.b) as usize];
                for &f in fanins {
                    for (j, o) in out.iter_mut().enumerate() {
                        let $acc = *o;
                        let $x = resolve(f as usize, j);
                        *o = $fold;
                    }
                }
                if $inv {
                    for o in out.iter_mut() {
                        *o = !*o;
                    }
                }
            }};
        }
        let (a, b) = (op.a as usize, op.b as usize);
        match op.code {
            OpCode::Buf => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = resolve(a, j);
                }
            }
            OpCode::Not => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = !resolve(a, j);
                }
            }
            OpCode::And2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = resolve(a, j) & resolve(b, j);
                }
            }
            OpCode::Nand2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = !(resolve(a, j) & resolve(b, j));
                }
            }
            OpCode::Or2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = resolve(a, j) | resolve(b, j);
                }
            }
            OpCode::Nor2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = !(resolve(a, j) | resolve(b, j));
                }
            }
            OpCode::Xor2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = resolve(a, j) ^ resolve(b, j);
                }
            }
            OpCode::Xnor2 => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = !(resolve(a, j) ^ resolve(b, j));
                }
            }
            OpCode::AndN => nary!(u64::MAX, |acc, x| acc & x, false),
            OpCode::NandN => nary!(u64::MAX, |acc, x| acc & x, true),
            OpCode::OrN => nary!(0, |acc, x| acc | x, false),
            OpCode::NorN => nary!(0, |acc, x| acc | x, true),
            OpCode::XorN => nary!(0, |acc, x| acc ^ x, false),
            OpCode::XnorN => nary!(0, |acc, x| acc ^ x, true),
        }
    }

    /// Single-word variant of [`Self::eval_op_wide`]: returns the value
    /// word directly instead of filling a slice. The dropping and
    /// observability paths propagate one word at a time, and this skips
    /// the per-word loop plumbing on that hot path.
    pub(crate) fn eval_op_word(&self, op_idx: usize, resolve: impl Fn(usize) -> u64) -> u64 {
        let op = self.ops[op_idx];
        macro_rules! nary {
            ($init:expr, |$acc:ident, $x:ident| $fold:expr, $inv:expr) => {{
                let mut folded = $init;
                for &f in &self.fanin_idx[op.a as usize..(op.a + op.b) as usize] {
                    let $acc = folded;
                    let $x = resolve(f as usize);
                    folded = $fold;
                }
                if $inv {
                    !folded
                } else {
                    folded
                }
            }};
        }
        let (a, b) = (op.a as usize, op.b as usize);
        match op.code {
            OpCode::Buf => resolve(a),
            OpCode::Not => !resolve(a),
            OpCode::And2 => resolve(a) & resolve(b),
            OpCode::Nand2 => !(resolve(a) & resolve(b)),
            OpCode::Or2 => resolve(a) | resolve(b),
            OpCode::Nor2 => !(resolve(a) | resolve(b)),
            OpCode::Xor2 => resolve(a) ^ resolve(b),
            OpCode::Xnor2 => !(resolve(a) ^ resolve(b)),
            OpCode::AndN => nary!(u64::MAX, |acc, x| acc & x, false),
            OpCode::NandN => nary!(u64::MAX, |acc, x| acc & x, true),
            OpCode::OrN => nary!(0, |acc, x| acc | x, false),
            OpCode::NorN => nary!(0, |acc, x| acc | x, true),
            OpCode::XorN => nary!(0, |acc, x| acc ^ x, false),
            OpCode::XnorN => nary!(0, |acc, x| acc ^ x, true),
        }
    }
}

/// Stamp node `id`'s `w`-word slot in a dense value array.
pub(crate) fn fill_slot(values: &mut [u64], id: NodeId, w: usize, word: u64) {
    values[id.index() * w..id.index() * w + w].fill(word);
}

/// One backward pass over the compiled program (reverse level order, so
/// a gate's output observability is final before the gate is processed),
/// AND-ing each active region's root observability down through per-pin
/// sensitivity words. Writes stay within the region: a fanin whose root
/// differs is a stem, whose own observability is *not* the one path
/// through this gate.
///
/// A free function (rather than a `FaultSimulator` method) so the
/// `simd` module's `#[target_feature]` wrappers can re-instantiate it —
/// `#[inline(always)]` makes the whole sweep compile with the wrapper's
/// vector features enabled while this scalar instantiation remains the
/// oracle.
#[inline(always)]
pub(crate) fn sens_sweep<const W: usize>(
    program: &Program,
    sens: &mut [u64],
    good: &[u64],
    scratch: &mut Vec<u64>,
    ffr_root: &[u32],
    region_active: &[bool],
) {
    for op_idx in (0..program.op_count()).rev() {
        let out = program.op_out(op_idx) as usize;
        let r = ffr_root[out];
        if !region_active[r as usize] {
            continue;
        }
        let mut out_sens = [0u64; W];
        out_sens.copy_from_slice(&sens[out * W..][..W]);
        program.sens_op_wide::<W>(
            op_idx,
            &out_sens,
            good,
            scratch,
            &mut |_pin, fanin, line| {
                let fi = fanin as usize;
                if ffr_root[fi] == r {
                    sens[fi * W..][..W].copy_from_slice(line);
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::CircuitBuilder;

    #[test]
    fn single_input_gates_lower_to_buf_and_not() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let g1 = b.gate(GateKind::And, vec![x], "g1").unwrap();
        let g2 = b.gate(GateKind::Nor, vec![x], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let topo = Topology::of(&c).unwrap();
        let p = Program::compile(&c, &topo);
        assert_eq!(p.ops.len(), 2);
        let i1 = p.op_index(g1.index()).unwrap();
        let i2 = p.op_index(g2.index()).unwrap();
        assert_eq!(p.ops[i1].code, OpCode::Buf);
        assert_eq!(p.ops[i2].code, OpCode::Not);
        assert_eq!(p.op_index(x.index()), None);
    }

    #[test]
    fn wide_gates_share_the_csr_pool() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(4, "x");
        let g = b.gate(GateKind::Nand, xs.clone(), "g").unwrap();
        let h = b.gate(GateKind::Xor, vec![xs[0], xs[1], g], "h").unwrap();
        b.output(h);
        let c = b.finish().unwrap();
        let topo = Topology::of(&c).unwrap();
        let p = Program::compile(&c, &topo);
        assert_eq!(p.fanin_idx.len(), 7);
        let og = p.ops[p.op_index(g.index()).unwrap()];
        assert_eq!((og.code, og.b), (OpCode::NandN, 4));
        let oh = p.ops[p.op_index(h.index()).unwrap()];
        assert_eq!((oh.code, oh.b), (OpCode::XorN, 3));
    }
}
