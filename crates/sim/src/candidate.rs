//! Batched candidate-group scoring for the test-point search loop.
//!
//! The constructive optimizers referee candidate test-point groups by
//! fault simulation. The legacy scorer clones the circuit, compiles a
//! fresh simulator and re-simulates **every** undetected fault for
//! **every** candidate group — `O(groups × faults × patterns)` even
//! though a test point only perturbs its fanout cone. This module makes
//! scoring `C` single-point candidates cost **one compile plus `C`
//! cone/lane-sized deltas**:
//!
//! * the group is validated against the base circuit *before* any clone
//!   (see [`group_applies`]) — invalid groups cost a hash-map walk, not
//!   a full circuit copy;
//! * one **augmented circuit** is built per batch: every candidate site
//!   `v` gets a pattern-controlled bypass mux `OR(AND(v, a), b)`
//!   re-driving `v`'s consumers, where `a` and `b` are fresh enable
//!   inputs. Under the *passthrough* stimulus (`a = 1`, `b = 0`) the
//!   mux is an identity buffer and the augmented circuit replays the
//!   base circuit bit-exactly, so the whole batch compiles **one**
//!   simulator (plus one clone per worker thread) instead of one per
//!   candidate;
//! * `r` is the stream of the one auxiliary input the real candidate
//!   circuit would append: every single-point control/full candidate
//!   appends exactly one input, so its index — and therefore its
//!   [`IndependentPatterns`] stream — is known without building the
//!   candidate;
//! * one **presence pass** per batch (explicit propagation under the
//!   passthrough stimulus, [`FaultSimulator::run_visiting`]) records,
//!   for every scored fault, the set of candidate sites its effect
//!   ever reaches within the pattern budget. A pure observe tap
//!   changes no value, so an observe candidate at `v` detects exactly
//!   `base-detected ∨ present-at-v` — every observe candidate in the
//!   batch is scored by this single pass, with **zero** per-candidate
//!   simulation. Undetected faults propagate barely at all (that is
//!   *why* they are undetected), so the pass costs a fraction of one
//!   ordinary fault-sim run;
//! * one **merged forcing run** per site scores the remaining three
//!   kinds. Driving *both* mux enables with the candidate stream
//!   (`a = b = r`) makes the mux output `r` on every lane: the
//!   site is forced to 0 exactly on an AND point's forcing lanes
//!   (`r = 0`), to 1 exactly on an OR point's (`r = 1`), and the
//!   consumers see the fresh-input stream `r` on *all* lanes — which
//!   is precisely the full point's cut. One no-dropping bitmap run
//!   ([`FaultSimulator::run_bitmaps`]) therefore yields per-lane
//!   detection words `d(f)` from which all three candidates read off
//!   their counts:
//!
//!   | kind         | detected(f)                                    |
//!   |--------------|------------------------------------------------|
//!   | `ControlAnd` | `d(f) ∧ ¬r ≠ 0  ∨  base(f) ∧ r ≠ 0`            |
//!   | `ControlOr`  | `d(f) ∧ r ≠ 0  ∨  base(f) ∧ ¬r ≠ 0`            |
//!   | `Full`       | `d(f) ≠ 0  ∨  present-at-v(f)`                 |
//!
//!   The base term is the transparency argument: on a control point's
//!   non-forcing lanes the inserted gate is an identity buffer — good
//!   values, fault excitation and propagation are bit-identical to
//!   the base circuit, so the candidate's detection bits there *are*
//!   the base bitmaps (simulated once under
//!   [`BaseDetections::Simulate`], identically zero under
//!   [`BaseDetections::AssumeUndetected`]). The full point's tap term
//!   reuses the presence pass: `v`'s fanin cone is upstream of the
//!   cut (the circuit is acyclic), so the effect reaches `v` in the
//!   cut circuit iff it does in the base circuit;
//! * the merged run only pays off when several candidates split it. A
//!   site hosting a *single* control or full candidate takes a
//!   narrower solo run instead: a control point re-simulates only its
//!   forcing lanes, compacted into dense pattern words (~half the
//!   budget under the unbiased stream), and a full point re-simulates
//!   only the faults *not* present at the site (those are detected
//!   via the tap regardless of the cut), with dropping.
//!
//! Multi-point groups (and any group the augmented build cannot cover)
//! fall back to the legacy path: clone, apply, compile, and re-simulate
//! the group's *dirty* faults, crediting clean faults with their base
//! detections by the same cone-delta argument the incremental engine
//! uses.
//!
//! Scoring uses [`IndependentPatterns`], whose per-input streams are
//! invariant under input insertion: the auxiliary inputs a control
//! point adds do not shift the patterns any base input sees, so the
//! shared base run and every per-candidate run observe the same input
//! stimulus. (The legacy `RandomPatterns` source draws all inputs from
//! one sequential PRNG and has no such invariance — sharing anything
//! across candidates under it would be unsound.)
//!
//! Groups are scored either sequentially (bit-identical to the legacy
//! loop's early-stop behaviour under [`RunControl`]) or by a pool of
//! worker threads pulling group indices from a shared queue. The merge
//! is by group index, so the *scores* — and therefore the selected
//! group — are bit-identical at every thread count. Under a work-budget
//! token the parallel path may observe exhaustion at a different group
//! than the sequential path (workers charge the shared budget
//! concurrently), but a stopped batch reports no scores at all, so
//! callers never commit a partially-refereed pick in either mode.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tpi_netlist::analysis::fanout_cone_mask;
use tpi_netlist::transform::apply_test_point;
use tpi_netlist::{Circuit, NetlistError, NodeId, TestPoint, TestPointKind, Topology};

use crate::compile::MAX_BLOCK_WORDS;
use crate::control::{RunControl, StopReason};
use crate::fault::{Fault, FaultSite};
use crate::fsim::{FaultSimulator, SimOptions};
use crate::metrics::SimCounters;
use crate::patterns::{IndependentPatterns, PatternSource};

/// How faults outside a candidate's dirty cone are accounted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BaseDetections {
    /// Simulate the base circuit once under the scoring stream and
    /// credit each candidate with the base detections of its clean
    /// faults. Required when the scoring stream differs from the
    /// stream that classified the faults as undetected (the
    /// from-scratch optimizer's situation).
    Simulate,
    /// Assume every scored fault is undetected on the base circuit
    /// under the scoring stream, so clean faults contribute zero
    /// detections. Sound when the caller measured coverage with the
    /// *same* source, seed and pattern count (the engine's situation);
    /// skips the base run entirely.
    AssumeUndetected,
}

/// Per-group outcome of a batch scoring call.
#[derive(Copy, Clone, Debug, Default)]
pub struct GroupScore {
    /// Faults detected within the pattern budget on the candidate
    /// circuit, or `None` when the group was empty, failed validation,
    /// or was abandoned because the run was stopped.
    pub detected: Option<u64>,
    /// Wall-clock spent evaluating this group, in microseconds.
    pub eval_us: u64,
}

/// Result of [`score_candidate_groups`].
#[derive(Clone, Debug)]
pub struct BatchScores {
    /// One entry per input group, in input order.
    pub scores: Vec<GroupScore>,
    /// `Some` when the control token fired mid-batch; scores are then
    /// not comparable and callers must not commit a selection.
    pub stopped: Option<StopReason>,
    /// Kernel counters merged over the base run and every group run.
    pub counters: SimCounters,
}

/// Check that applying every point of `group`, in order, to `circuit`
/// would succeed — without cloning the circuit.
///
/// `apply_test_point` only fails when a control or full point finds no
/// consumer to re-drive (`rewire` matches zero pins and zero output
/// entries). That reference count evolves per site as the group's
/// points stack, so the check replays the group against a per-site
/// counter: initially the site's fanout pins plus its output entry;
/// a control point re-drives all of them and leaves exactly one (its
/// own gate's pin); a full point leaves one pin reference on the new
/// input and re-adds the site as an output. Points at distinct sites
/// never interact (`rewire` only touches pins equal to the site).
///
/// Nodes outside the circuit are reported as not applicable.
pub fn group_applies(circuit: &Circuit, topo: &Topology, group: &[TestPoint]) -> bool {
    // (refs to the site's raw output, site currently an output entry).
    let mut sites: HashMap<NodeId, (usize, bool)> = HashMap::new();
    for tp in group {
        if tp.node.index() >= circuit.node_count() {
            return false;
        }
        let (refs, out) = sites.entry(tp.node).or_insert_with(|| {
            let out = circuit.is_output(tp.node);
            (topo.fanout_count(tp.node) + usize::from(out), out)
        });
        match tp.kind {
            TestPointKind::Observe => {
                if !*out {
                    *out = true;
                    *refs += 1;
                }
            }
            TestPointKind::ControlAnd | TestPointKind::ControlOr => {
                if *refs == 0 {
                    return false;
                }
                *refs = 1; // the inserted gate's own pin
                *out = false; // output entries were re-driven too
            }
            TestPointKind::Full => {
                if *refs == 0 {
                    return false;
                }
                *refs = 1; // the observing output entry added back
                *out = true;
            }
        }
    }
    true
}

/// Node-level dirtiness after applying a candidate group that appended
/// nodes `old_nodes..` and tapped `observed` as new outputs: the same
/// upstream-flowing mask the incremental engine uses. A fault anchored
/// on a clean line provably keeps its detection behaviour — no value,
/// sensitization side-input or observing output in its cone changed.
fn dirty_lines(
    circuit: &Circuit,
    topo: &Topology,
    old_nodes: usize,
    observed: &[NodeId],
) -> Vec<bool> {
    let n = circuit.node_count();
    let new_nodes: Vec<NodeId> = (old_nodes..n).map(NodeId::from_index).collect();
    let marked = fanout_cone_mask(circuit, topo, &new_nodes);
    let mut dirty = vec![false; n];
    for &id in topo.order().iter().rev() {
        let i = id.index();
        let seeded = marked[i]
            || observed.contains(&id)
            || circuit.fanins(id).iter().any(|f| marked[f.index()]);
        dirty[i] = seeded || topo.fanouts(id).iter().any(|fo| dirty[fo.gate.index()]);
    }
    dirty
}

/// The line a fault's detection is anchored to, resolved against the
/// candidate circuit (control points may have re-driven a branch).
fn fault_anchor(circuit: &Circuit, fault: Fault) -> NodeId {
    match fault.site {
        FaultSite::Stem(node) => node,
        FaultSite::Branch { gate, pin } => circuit.fanins(gate)[pin as usize],
    }
}

/// Per-word masks selecting the first `patterns` lanes.
fn tail_masks(patterns: u64, pattern_words: usize) -> Vec<u64> {
    (0..pattern_words)
        .map(|w| {
            let rem = patterns.saturating_sub(64 * w as u64);
            if rem >= 64 {
                !0u64
            } else if rem == 0 {
                0
            } else {
                (1u64 << rem) - 1
            }
        })
        .collect()
}

/// Gather the bits of `src` at `sel`'s set lanes into a dense prefix of
/// `out_words` packed words (lane order preserved).
fn compact_words(src: &[u64], sel: &[u64], out_words: usize) -> Vec<u64> {
    let mut out = vec![0u64; out_words];
    let mut cursor = 0usize;
    for (w, &s0) in sel.iter().enumerate() {
        let mut s = s0;
        while s != 0 {
            let lane = s.trailing_zeros();
            if (src[w] >> lane) & 1 == 1 {
                out[cursor >> 6] |= 1u64 << (cursor & 63);
            }
            cursor += 1;
            s &= s - 1;
        }
    }
    out
}

/// A fully materialised stimulus block: one word stream per augmented
/// input, `patterns` lanes total. Feeds a candidate's stimulus to the
/// shared augmented simulator.
struct PackedSource {
    streams: Vec<Vec<u64>>,
    patterns: u64,
    word: usize,
}

impl PatternSource for PackedSource {
    fn fill(&mut self, words: &mut [u64]) -> usize {
        let remaining = self.patterns.saturating_sub(64 * self.word as u64);
        if remaining == 0 {
            return 0;
        }
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.streams[i][self.word];
        }
        self.word += 1;
        remaining.min(64) as usize
    }

    fn reset(&mut self) {
        self.word = 0;
    }
}

/// Input positions (in augmented-input order) of one site's bypass-mux
/// enables `a`/`b` (absent when the site has no consumer to re-drive)
/// plus the site's column in the presence matrix.
#[derive(Copy, Clone, Debug)]
struct SiteLines {
    a: Option<usize>,
    b: Option<usize>,
    si: usize,
}

/// Batch-shared scoring state for single-point groups: the augmented
/// circuit's compiled simulator, the instrumentation line positions per
/// site, and the passthrough stimulus template (see module docs).
struct FastPrep {
    /// Compiled simulator over the augmented circuit. Workers clone it
    /// once each; every candidate then runs on an already-compiled
    /// kernel.
    sim: FaultSimulator,
    /// Instrumentation input positions per candidate site.
    sites: HashMap<NodeId, SiteLines>,
    /// Word streams in augmented-input order under which the augmented
    /// circuit replays the base circuit bit-exactly: base inputs carry
    /// their [`IndependentPatterns`] words, every `a` enable is
    /// all-ones, every `b`/`o` enable all-zeros.
    passthrough: Vec<Vec<u64>>,
    /// Base-circuit primary-input count — also the input index (and
    /// therefore the stream) of the one auxiliary input any single
    /// control/full candidate appends to the base circuit.
    n_base_inputs: usize,
    /// `patterns.div_ceil(64)`.
    pattern_words: usize,
    /// Per-(fault, site) effect-presence matrix, one packed row of
    /// [`site_words`](FastPrep::site_words) words per fault: bit `si`
    /// of row `fi` is set iff fault `fi`'s effect reaches site `si`
    /// on some lane within the pattern budget. Empty until
    /// [`compute_presence`](FastPrep::compute_presence) fills it
    /// (skipped when the batch holds no observe or full candidate).
    presence: Vec<u64>,
    /// Presence row width: `sites.len().div_ceil(64)`.
    site_words: usize,
}

impl FastPrep {
    /// Presence bit for fault row `fi`, site column `si`.
    fn present(&self, fi: usize, si: usize) -> bool {
        debug_assert!(!self.presence.is_empty(), "presence pass not run");
        (self.presence[fi * self.site_words + (si >> 6)] >> (si & 63)) & 1 == 1
    }

    /// Fill the presence matrix: one explicit-propagation pass over the
    /// augmented circuit under the passthrough stimulus (≡ the base
    /// circuit bit-exactly) recording, per scored fault, every
    /// candidate site its effect reaches. This single pass scores all
    /// observe candidates outright and supplies the full point's tap
    /// term (see module docs). Runs in block-sized chunks so `control`
    /// is polled and charged at the same granularity as a simulation
    /// run; on a stop the partial matrix is discarded.
    fn compute_presence(
        &mut self,
        base: &Circuit,
        faults: &[Fault],
        patterns: u64,
        control: &RunControl,
    ) -> Result<(Option<StopReason>, SimCounters), NetlistError> {
        let row_words = self.site_words;
        let mut site_of = vec![u32::MAX; base.node_count()];
        for (v, lines) in &self.sites {
            site_of[v.index()] = lines.si as u32;
        }
        let mut presence = vec![0u64; faults.len() * row_words];
        let mut src = PackedSource {
            streams: self.passthrough.clone(),
            patterns,
            word: 0,
        };
        let before = *self.sim.counters();
        let mut stopped = None;
        let mut applied = 0u64;
        while applied < patterns {
            stopped = control.poll();
            if stopped.is_some() {
                break;
            }
            let chunk = (patterns - applied).min(64 * MAX_BLOCK_WORDS as u64);
            let (_, n) = self
                .sim
                .run_visiting(&mut src, chunk, faults, |fi, node, _| {
                    let i = node.index();
                    if i < site_of.len() && site_of[i] != u32::MAX {
                        let si = site_of[i] as usize;
                        presence[fi * row_words + (si >> 6)] |= 1u64 << (si & 63);
                    }
                })?;
            if n == 0 {
                break;
            }
            applied += n;
            control.charge(n);
        }
        if stopped.is_none() {
            self.presence = presence;
        }
        Ok((stopped, self.sim.counters().since(&before)))
    }
}

/// Build the augmented circuit over every distinct valid single-point
/// site and compile it once. `None` (no fast path; every group falls
/// back to the legacy evaluator) if there are no such sites or any
/// construction step fails.
fn build_fast_prep(
    base: &Circuit,
    topo: &Topology,
    groups: &[Vec<TestPoint>],
    valid: &[bool],
    patterns: u64,
    seed: u64,
    options: SimOptions,
) -> Option<FastPrep> {
    let mut site_list: Vec<NodeId> = groups
        .iter()
        .zip(valid)
        .filter(|&(g, &ok)| ok && g.len() == 1)
        .map(|(g, _)| g[0].node)
        .collect();
    site_list.sort_unstable();
    site_list.dedup();
    if site_list.is_empty() {
        return None;
    }
    let mut aug = base.clone();
    let mut sites = HashMap::with_capacity(site_list.len());
    for (si, &v) in site_list.iter().enumerate() {
        // Mirrors the `rewire` success condition (see `group_applies`):
        // sites with no consumer and no output entry cannot host a mux
        // (control/full points there are invalid anyway; observe taps
        // need no mux).
        let can_mux = topo.fanout_count(v) + usize::from(base.is_output(v)) > 0;
        let (a, b) = if can_mux {
            let and =
                apply_test_point(&mut aug, TestPoint::new(v, TestPointKind::ControlAnd)).ok()?;
            let a = aug.inputs().len() - 1;
            apply_test_point(
                &mut aug,
                TestPoint::new(and.cp_gate?, TestPointKind::ControlOr),
            )
            .ok()?;
            (Some(a), Some(aug.inputs().len() - 1))
        } else {
            (None, None)
        };
        sites.insert(v, SiteLines { a, b, si });
    }
    let sim = FaultSimulator::with_options(&aug, options).ok()?;
    let pattern_words = patterns.div_ceil(64) as usize;
    let n_base_inputs = base.inputs().len();
    let mut passthrough = vec![vec![0u64; pattern_words]; aug.inputs().len()];
    for (i, stream) in passthrough.iter_mut().take(n_base_inputs).enumerate() {
        for (w, lanes) in stream.iter_mut().enumerate() {
            *lanes = IndependentPatterns::word(seed, i as u64, w as u64);
        }
    }
    for lines in sites.values() {
        if let Some(a) = lines.a {
            passthrough[a] = vec![!0u64; pattern_words];
        }
    }
    let site_words = site_list.len().div_ceil(64);
    Some(FastPrep {
        sim,
        sites,
        passthrough,
        n_base_inputs,
        pattern_words,
        presence: Vec::new(),
        site_words,
    })
}

struct GroupEval {
    detected: Option<u64>,
    stopped: Option<StopReason>,
    counters: SimCounters,
}

/// A schedule lane's cache of its most recent merged forcing run:
/// `(site, per-fault detection words)`. Candidate kinds of one site
/// typically arrive adjacently in a batch, so a depth-1 cache captures
/// the sharing while bounding memory at one site's bitmaps per worker
/// (an unbounded map would hold `sites × faults × words` on the
/// optimizers' full-circuit sweeps).
type MergedMemo = Option<(NodeId, Vec<Vec<u64>>)>;

/// Score one valid single-point candidate from the batch-shared passes
/// (the per-kind formulas and their soundness arguments are laid out in
/// the module docs). Observe candidates read the presence matrix and
/// run nothing. Control and full candidates at a `shared` site (two or
/// more of them in the batch) split one merged forcing run, lazily
/// executed on this lane's `sim` clone and cached in `memo`; a lone
/// candidate instead takes the narrower run its kind permits — forcing
/// lanes only for a control point, non-present faults with dropping
/// for a full point — which costs less than a merged run nobody else
/// will read.
#[allow(clippy::too_many_arguments)]
fn eval_fast(
    prep: &FastPrep,
    fast_sim: &mut Option<FaultSimulator>,
    memo: &mut MergedMemo,
    lines: SiteLines,
    tp: TestPoint,
    shared: bool,
    base: &Circuit,
    faults: &[Fault],
    base_maps: Option<&[Vec<u64>]>,
    patterns: u64,
    seed: u64,
    control: &RunControl,
) -> Result<GroupEval, NetlistError> {
    let mut counters = SimCounters::default();
    let pw = prep.pattern_words;
    let in_base = |fi: usize| base_maps.is_some_and(|m| m[fi].iter().any(|&w| w != 0));
    if tp.kind == TestPointKind::Observe {
        let pre = (0..faults.len()).filter(|&fi| in_base(fi)).count() as u64;
        // Observing an existing output is a structural no-op, so the
        // candidate detects exactly the base detections.
        let detected = if base.is_output(tp.node) {
            pre
        } else {
            pre + (0..faults.len())
                .filter(|&fi| !in_base(fi) && prep.present(fi, lines.si))
                .count() as u64
        };
        return Ok(GroupEval {
            detected: Some(detected),
            stopped: None,
            counters,
        });
    }
    let a = lines.a.expect("validated control/full site has a mux");
    let b = lines.b.expect("validated control/full site has a mux");
    let aux = prep.n_base_inputs as u64;
    let r: Vec<u64> = (0..pw)
        .map(|w| IndependentPatterns::word(seed, aux, w as u64))
        .collect();
    if !shared {
        return match tp.kind {
            TestPointKind::Observe => unreachable!("handled above"),
            TestPointKind::ControlAnd | TestPointKind::ControlOr => {
                let forcing_and = tp.kind == TestPointKind::ControlAnd;
                let tail = tail_masks(patterns, pw);
                // Forcing lanes: where the candidate's control stream
                // overrides the site (`r = 0` for an AND point, `r = 1`
                // for an OR point). On the complementary (transparent)
                // lanes the inserted gate is an identity buffer and the
                // candidate's detection bits are the base bitmaps
                // verbatim.
                let sel: Vec<u64> = (0..pw)
                    .map(|w| {
                        if forcing_and {
                            !r[w] & tail[w]
                        } else {
                            r[w] & tail[w]
                        }
                    })
                    .collect();
                let mut pre = 0u64;
                let mut run_faults: Vec<Fault> = Vec::new();
                for (fi, &f) in faults.iter().enumerate() {
                    let transparent_hit = base_maps
                        .is_some_and(|m| m[fi].iter().zip(&sel).any(|(&d, &s)| d & !s != 0));
                    if transparent_hit {
                        pre += 1;
                    } else {
                        run_faults.push(f);
                    }
                }
                let m: u64 = sel.iter().map(|w| u64::from(w.count_ones())).sum();
                if m == 0 || run_faults.is_empty() {
                    return Ok(GroupEval {
                        detected: Some(pre),
                        stopped: None,
                        counters,
                    });
                }
                let out_words = m.div_ceil(64) as usize;
                let mut streams: Vec<Vec<u64>> = prep
                    .passthrough
                    .iter()
                    .map(|s| compact_words(s, &sel, out_words))
                    .collect();
                if forcing_and {
                    streams[a] = vec![0u64; out_words];
                } else {
                    streams[b] = vec![!0u64; out_words];
                }
                let mut src = PackedSource {
                    streams,
                    patterns: m,
                    word: 0,
                };
                let sim = fast_sim.get_or_insert_with(|| prep.sim.clone());
                let run = sim.run_controlled(&mut src, m, &run_faults, control)?;
                counters.merge(&run.counters);
                if let Some(reason) = run.stopped {
                    return Ok(GroupEval {
                        detected: None,
                        stopped: Some(reason),
                        counters,
                    });
                }
                Ok(GroupEval {
                    detected: Some(pre + run.result.detected_count() as u64),
                    stopped: None,
                    counters,
                })
            }
            TestPointKind::Full => {
                // Faults already present at the site are detected via
                // the tap no matter what the cut does; only the rest
                // need the cut circuit simulated (with dropping — the
                // per-lane split of the merged run is not needed here).
                let run_faults: Vec<Fault> = faults
                    .iter()
                    .enumerate()
                    .filter(|&(fi, _)| !prep.present(fi, lines.si))
                    .map(|(_, &f)| f)
                    .collect();
                let pre = (faults.len() - run_faults.len()) as u64;
                if run_faults.is_empty() {
                    return Ok(GroupEval {
                        detected: Some(pre),
                        stopped: None,
                        counters,
                    });
                }
                let mut streams = prep.passthrough.clone();
                streams[a] = vec![0u64; pw];
                streams[b] = r.clone();
                let mut src = PackedSource {
                    streams,
                    patterns,
                    word: 0,
                };
                let sim = fast_sim.get_or_insert_with(|| prep.sim.clone());
                let run = sim.run_controlled(&mut src, patterns, &run_faults, control)?;
                counters.merge(&run.counters);
                if let Some(reason) = run.stopped {
                    return Ok(GroupEval {
                        detected: None,
                        stopped: Some(reason),
                        counters,
                    });
                }
                Ok(GroupEval {
                    detected: Some(pre + run.result.detected_count() as u64),
                    stopped: None,
                    counters,
                })
            }
        };
    }
    if memo.as_ref().map(|(v, _)| *v) != Some(tp.node) {
        let mut streams = prep.passthrough.clone();
        streams[a] = r.clone();
        streams[b] = r.clone();
        let mut src = PackedSource {
            streams,
            patterns,
            word: 0,
        };
        let sim = fast_sim.get_or_insert_with(|| prep.sim.clone());
        let run = sim.run_bitmaps(&mut src, patterns, faults, control)?;
        counters.merge(&run.counters);
        if let Some(reason) = run.stopped {
            return Ok(GroupEval {
                detected: None,
                stopped: Some(reason),
                counters,
            });
        }
        *memo = Some((tp.node, run.maps));
    }
    let bits = &memo.as_ref().expect("merged run just cached").1;
    // The merged detection words are lane-masked to the pattern budget,
    // so `∧ r` needs no tail mask; the base bitmaps likewise.
    let detected = match tp.kind {
        TestPointKind::Observe => unreachable!("handled above"),
        TestPointKind::ControlAnd | TestPointKind::ControlOr => {
            let forcing_and = tp.kind == TestPointKind::ControlAnd;
            let on = |word: u64, rw: u64, forcing: bool| {
                word & if forcing == forcing_and { !rw } else { rw }
            };
            faults
                .iter()
                .enumerate()
                .filter(|&(fi, _)| {
                    bits[fi]
                        .iter()
                        .zip(&r)
                        .any(|(&d, &rw)| on(d, rw, true) != 0)
                        || base_maps.is_some_and(|m| {
                            m[fi].iter().zip(&r).any(|(&d, &rw)| on(d, rw, false) != 0)
                        })
                })
                .count() as u64
        }
        TestPointKind::Full => (0..faults.len())
            .filter(|&fi| bits[fi].iter().any(|&d| d != 0) || prep.present(fi, lines.si))
            .count() as u64,
    };
    Ok(GroupEval {
        detected: Some(detected),
        stopped: None,
        counters,
    })
}

/// Score every candidate group by faults detected within `patterns`
/// patterns of the seeded [`IndependentPatterns`] stream, simulating
/// only each group's dirty faults / forcing lanes (see the module docs
/// for why this is bit-identical to re-simulating everything).
///
/// Returns one [`GroupScore`] per group, in group order, regardless of
/// evaluation schedule: with `threads > 1` groups are pulled from a
/// shared queue by a worker pool and merged by index. When `control`
/// stops the run, `stopped` carries the reason from the lowest-indexed
/// stopped group and no selection should be committed.
///
/// # Errors
///
/// [`NetlistError`] if the base circuit (or a candidate circuit) fails
/// simulator construction — cyclic or malformed structure.
#[allow(clippy::too_many_arguments)]
pub fn score_candidate_groups(
    base: &Circuit,
    faults: &[Fault],
    groups: &[Vec<TestPoint>],
    patterns: u64,
    seed: u64,
    options: SimOptions,
    threads: usize,
    base_detections: BaseDetections,
    control: &RunControl,
) -> Result<BatchScores, NetlistError> {
    let mut counters = SimCounters::default();
    let topo = Topology::of(base)?;
    let valid: Vec<bool> = groups
        .iter()
        .map(|g| !g.is_empty() && group_applies(base, &topo, g))
        .collect();
    let mut scores: Vec<GroupScore> = vec![GroupScore::default(); groups.len()];

    let base_maps: Option<Vec<Vec<u64>>> = match base_detections {
        BaseDetections::AssumeUndetected => None,
        BaseDetections::Simulate => {
            let mut sim = FaultSimulator::with_options(base, options)?;
            let mut src = IndependentPatterns::new(base.inputs().len(), seed);
            let run = sim.run_bitmaps(&mut src, patterns, faults, control)?;
            counters.merge(&run.counters);
            if let Some(reason) = run.stopped {
                return Ok(BatchScores {
                    scores,
                    stopped: Some(reason),
                    counters,
                });
            }
            Some(run.maps)
        }
    };
    let base_detected: Option<Vec<bool>> = base_maps
        .as_ref()
        .map(|maps| maps.iter().map(|m| m.iter().any(|&w| w != 0)).collect());

    let mut fast = build_fast_prep(base, &topo, groups, &valid, patterns, seed, options);
    if let Some(prep) = &mut fast {
        // The presence pass is only read by observe and full
        // candidates; a controls-only batch skips it.
        let needed = groups.iter().zip(&valid).any(|(g, &ok)| {
            ok && g.len() == 1 && matches!(g[0].kind, TestPointKind::Observe | TestPointKind::Full)
        });
        if needed {
            let (reason, pass) = prep.compute_presence(base, faults, patterns, control)?;
            counters.merge(&pass);
            if reason.is_some() {
                return Ok(BatchScores {
                    scores,
                    stopped: reason,
                    counters,
                });
            }
        }
    }
    let fast = fast;
    // Sites hosting two or more control/full fast-path candidates split
    // one merged forcing run; a lone candidate takes its narrower solo
    // run instead (see `eval_fast`).
    let mut mux_groups: HashMap<NodeId, u32> = HashMap::new();
    if fast.is_some() {
        for (g, &ok) in groups.iter().zip(&valid) {
            if ok && g.len() == 1 && g[0].kind != TestPointKind::Observe {
                *mux_groups.entry(g[0].node).or_insert(0) += 1;
            }
        }
    }

    let eval_group = |gi: usize| -> Result<GroupEval, NetlistError> {
        let mut counters = SimCounters::default();
        let none = |counters| {
            Ok(GroupEval {
                detected: None,
                stopped: None,
                counters,
            })
        };
        if !valid[gi] {
            return none(counters);
        }
        let old_nodes = base.node_count();
        let mut scratch = base.clone();
        let mut observed: Vec<NodeId> = Vec::new();
        for &tp in &groups[gi] {
            match apply_test_point(&mut scratch, tp) {
                Ok(applied) => observed.extend(applied.observed),
                // Unreachable after `group_applies`, but stay aligned
                // with the legacy scorer: skip, never fail the batch.
                Err(_) => return none(counters),
            }
        }
        let scratch_topo = Topology::of(&scratch)?;
        let dirty = dirty_lines(&scratch, &scratch_topo, old_nodes, &observed);
        let mut dirty_faults: Vec<Fault> = Vec::new();
        let mut clean_detected = 0u64;
        for (i, &f) in faults.iter().enumerate() {
            if dirty[fault_anchor(&scratch, f).index()] {
                dirty_faults.push(f);
            } else if let Some(bd) = &base_detected {
                clean_detected += u64::from(bd[i]);
            }
        }
        if dirty_faults.is_empty() {
            return Ok(GroupEval {
                detected: Some(clean_detected),
                stopped: None,
                counters,
            });
        }
        let mut sim = FaultSimulator::with_options(&scratch, options)?;
        let mut src = IndependentPatterns::new(scratch.inputs().len(), seed);
        let run = sim.run_controlled(&mut src, patterns, &dirty_faults, control)?;
        counters.merge(&run.counters);
        if let Some(reason) = run.stopped {
            return Ok(GroupEval {
                detected: None,
                stopped: Some(reason),
                counters,
            });
        }
        Ok(GroupEval {
            detected: Some(run.result.detected_count() as u64 + clean_detected),
            stopped: None,
            counters,
        })
    };

    // Fast path for valid single-point groups; everything else takes
    // the legacy clone-and-resimulate path. `fast_sim` is each
    // schedule lane's lazily-cloned copy of the compiled augmented
    // simulator, `memo` its cached merged forcing run.
    let eval_any = |gi: usize,
                    fast_sim: &mut Option<FaultSimulator>,
                    memo: &mut MergedMemo|
     -> Result<GroupEval, NetlistError> {
        if let Some(prep) = &fast {
            if valid[gi] && groups[gi].len() == 1 {
                let tp = groups[gi][0];
                if let Some(&lines) = prep.sites.get(&tp.node) {
                    if tp.kind == TestPointKind::Observe || lines.a.is_some() {
                        let shared = mux_groups.get(&tp.node).copied().unwrap_or(0) >= 2;
                        return eval_fast(
                            prep,
                            fast_sim,
                            memo,
                            lines,
                            tp,
                            shared,
                            base,
                            faults,
                            base_maps.as_deref(),
                            patterns,
                            seed,
                            control,
                        );
                    }
                }
            }
        }
        eval_group(gi)
    };

    let mut stopped: Option<StopReason> = None;
    let threads = threads.max(1).min(groups.len().max(1));
    if threads == 1 {
        let mut fast_sim: Option<FaultSimulator> = None;
        let mut memo: MergedMemo = None;
        for (gi, slot) in scores.iter_mut().enumerate() {
            let start = Instant::now();
            let eval = eval_any(gi, &mut fast_sim, &mut memo)?;
            counters.merge(&eval.counters);
            *slot = GroupScore {
                detected: eval.detected,
                eval_us: start.elapsed().as_micros() as u64,
            };
            if let Some(reason) = eval.stopped {
                stopped = Some(reason);
                break;
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let bail = AtomicBool::new(false);
        type Slot = (usize, Result<GroupEval, NetlistError>, u64);
        let results: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(groups.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut fast_sim: Option<FaultSimulator> = None;
                    let mut memo: MergedMemo = None;
                    loop {
                        if bail.load(Ordering::Relaxed) {
                            break;
                        }
                        let gi = next.fetch_add(1, Ordering::Relaxed);
                        if gi >= groups.len() {
                            break;
                        }
                        let start = Instant::now();
                        let eval = eval_any(gi, &mut fast_sim, &mut memo);
                        let us = start.elapsed().as_micros() as u64;
                        let failed = eval.is_err() || matches!(&eval, Ok(e) if e.stopped.is_some());
                        results.lock().expect("scorer mutex").push((gi, eval, us));
                        if failed {
                            bail.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        let mut results = results.into_inner().expect("scorer mutex");
        // Index-ordered merge: scores, the first error and the reported
        // stop reason are all taken in group order, independent of the
        // schedule that produced them.
        results.sort_by_key(|(gi, _, _)| *gi);
        for (gi, eval, us) in results {
            let eval = eval?;
            counters.merge(&eval.counters);
            scores[gi] = GroupScore {
                detected: eval.detected,
                eval_us: us,
            };
            if let Some(reason) = eval.stopped {
                stopped.get_or_insert(reason);
            }
        }
    }

    Ok(BatchScores {
        scores,
        stopped,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use tpi_netlist::{CircuitBuilder, GateKind};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(4, "x");
        let g0 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g0").unwrap();
        let g1 = b.gate(GateKind::Or, vec![xs[2], xs[3]], "g1").unwrap();
        let y = b.gate(GateKind::And, vec![g0, g1], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    /// Reference scorer: apply the group to a fresh clone and fully
    /// re-simulate every fault; `None` if any point fails to apply.
    fn reference_score(
        base: &Circuit,
        group: &[TestPoint],
        faults: &[Fault],
        patterns: u64,
        seed: u64,
    ) -> Option<u64> {
        if group.is_empty() {
            return None;
        }
        let mut scratch = base.clone();
        for &tp in group {
            apply_test_point(&mut scratch, tp).ok()?;
        }
        let mut sim = FaultSimulator::new(&scratch).unwrap();
        let mut src = IndependentPatterns::new(scratch.inputs().len(), seed);
        let full = sim.run(&mut src, patterns, faults).unwrap();
        Some(full.detected_count() as u64)
    }

    #[test]
    fn validation_matches_apply() {
        let c = sample();
        let topo = Topology::of(&c).unwrap();
        let y = c.outputs()[0];
        for group in [
            vec![TestPoint::new(y, TestPointKind::Observe)],
            vec![TestPoint::new(y, TestPointKind::ControlAnd)],
            vec![TestPoint::new(y, TestPointKind::Full)],
            vec![
                TestPoint::new(y, TestPointKind::Full),
                TestPoint::new(y, TestPointKind::ControlAnd),
                TestPoint::new(y, TestPointKind::Full),
            ],
            vec![
                TestPoint::new(y, TestPointKind::Observe),
                TestPoint::new(y, TestPointKind::Observe),
            ],
        ] {
            let predicted = group_applies(&c, &topo, &group);
            let mut scratch = c.clone();
            let actual = group
                .iter()
                .all(|&tp| apply_test_point(&mut scratch, tp).is_ok());
            assert_eq!(predicted, actual, "group {group:?}");
        }
    }

    #[test]
    fn batched_counts_match_full_resimulation() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let faults = universe.faults();
        let groups: Vec<Vec<TestPoint>> = c
            .node_ids()
            .flat_map(|n| {
                TestPointKind::ALL
                    .iter()
                    .map(move |&k| vec![TestPoint::new(n, k)])
            })
            .collect();
        let control = RunControl::unlimited();
        for threads in [1usize, 3] {
            let batch = score_candidate_groups(
                &c,
                faults,
                &groups,
                64,
                7,
                SimOptions::default(),
                threads,
                BaseDetections::Simulate,
                &control,
            )
            .unwrap();
            assert!(batch.stopped.is_none());
            for (group, score) in groups.iter().zip(&batch.scores) {
                assert_eq!(
                    score.detected,
                    reference_score(&c, group, faults, 64, 7),
                    "group {group:?} (threads {threads})"
                );
            }
        }
    }

    #[test]
    fn multi_point_and_dangling_groups_match_full_resimulation() {
        // `dead` has no consumer and no output entry: observe points on
        // it are valid, control/full points are not (nothing to rewire).
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(3, "x");
        let g0 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g0").unwrap();
        let g1 = b.gate(GateKind::Or, vec![g0, xs[2]], "g1").unwrap();
        let dead = b.gate(GateKind::Nand, vec![xs[0], xs[2]], "dead").unwrap();
        b.output(g1);
        let c = b.finish().unwrap();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let faults = universe.faults();
        let mut groups: Vec<Vec<TestPoint>> = TestPointKind::ALL
            .iter()
            .map(|&k| vec![TestPoint::new(dead, k)])
            .collect();
        groups.push(vec![
            TestPoint::new(g0, TestPointKind::ControlAnd),
            TestPoint::new(g1, TestPointKind::Observe),
        ]);
        groups.push(vec![
            TestPoint::new(g1, TestPointKind::Full),
            TestPoint::new(g0, TestPointKind::ControlOr),
        ]);
        groups.push(vec![]);
        let control = RunControl::unlimited();
        for threads in [1usize, 2] {
            let batch = score_candidate_groups(
                &c,
                faults,
                &groups,
                64,
                11,
                SimOptions::default(),
                threads,
                BaseDetections::Simulate,
                &control,
            )
            .unwrap();
            assert!(batch.stopped.is_none());
            for (group, score) in groups.iter().zip(&batch.scores) {
                assert_eq!(
                    score.detected,
                    reference_score(&c, group, faults, 64, 11),
                    "group {group:?} (threads {threads})"
                );
            }
        }
    }

    #[test]
    fn solo_sites_match_full_resimulation() {
        // One candidate per site, kinds rotating, so every control and
        // full group takes the solo path (no merged-run sharing) and
        // observes still read the presence pass.
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let faults = universe.faults();
        let groups: Vec<Vec<TestPoint>> = c
            .node_ids()
            .enumerate()
            .map(|(i, n)| vec![TestPoint::new(n, TestPointKind::ALL[i % 4])])
            .collect();
        let control = RunControl::unlimited();
        for threads in [1usize, 2] {
            let batch = score_candidate_groups(
                &c,
                faults,
                &groups,
                64,
                13,
                SimOptions::default(),
                threads,
                BaseDetections::Simulate,
                &control,
            )
            .unwrap();
            assert!(batch.stopped.is_none());
            for (group, score) in groups.iter().zip(&batch.scores) {
                assert_eq!(
                    score.detected,
                    reference_score(&c, group, faults, 64, 13),
                    "group {group:?} (threads {threads})"
                );
            }
        }
    }

    #[test]
    fn assume_undetected_matches_simulate_on_undetected_faults() {
        let c = sample();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let mut sim = FaultSimulator::new(&c).unwrap();
        let mut src = IndependentPatterns::new(c.inputs().len(), 7);
        let base = sim.run(&mut src, 6, universe.faults()).unwrap();
        let undetected: Vec<Fault> = (0..universe.len())
            .filter(|&i| base.first_detection(i).is_none())
            .map(|i| universe.faults()[i])
            .collect();
        assert!(!undetected.is_empty(), "test needs undetected faults");
        let groups: Vec<Vec<TestPoint>> = c
            .node_ids()
            .flat_map(|n| {
                TestPointKind::ALL
                    .iter()
                    .map(move |&k| vec![TestPoint::new(n, k)])
            })
            .collect();
        let control = RunControl::unlimited();
        let score = |mode| {
            score_candidate_groups(
                &c,
                &undetected,
                &groups,
                6,
                7,
                SimOptions::default(),
                1,
                mode,
                &control,
            )
            .unwrap()
        };
        let assumed = score(BaseDetections::AssumeUndetected);
        let simulated = score(BaseDetections::Simulate);
        for (gi, group) in groups.iter().enumerate() {
            assert_eq!(
                assumed.scores[gi].detected, simulated.scores[gi].detected,
                "group {group:?}"
            );
            assert_eq!(
                assumed.scores[gi].detected,
                reference_score(&c, group, &undetected, 6, 7),
                "group {group:?}"
            );
        }
    }
}
