//! Plain-data snapshots of a registry: the [`Snapshot`] map, the
//! per-metric [`MetricValue`], histogram summaries, and snapshot
//! differencing for interval (per-request, per-job) views.

use std::collections::BTreeMap;

/// A plain-data copy of one histogram: exact count/sum/min/max plus the
/// non-empty log₂ buckets as `(lower_bound, samples)` pairs sorted by
/// lower bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (`0` when empty).
    pub min: u64,
    /// Largest recorded sample (`0` when empty).
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, samples)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper
    /// edge of the first bucket whose cumulative count reaches
    /// `⌈q·count⌉`. Tight to within the 2× bucket width.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Upper edge of the bucket starting at `lo`, clipped to
                // the observed maximum.
                let hi = if lo == 0 {
                    0
                } else {
                    (lo << 1).wrapping_sub(1)
                };
                return hi.min(self.max).max(lo);
            }
        }
        self.max
    }

    /// Subtracts an earlier snapshot of the same histogram, yielding the
    /// interval view. Counts, sums and buckets subtract exactly; `min`
    /// and `max` cannot be reconstructed for the interval alone, so the
    /// later (cumulative) values are kept.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let before: BTreeMap<u64, u64> = earlier.buckets.iter().copied().collect();
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(lo, n)| {
                let d = n.saturating_sub(before.get(&lo).copied().unwrap_or(0));
                (d != 0).then_some((lo, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing total.
    Counter(u64),
    /// A signed instantaneous value.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, plain-data copy of every metric in a registry, keyed
/// by metric name in sorted order (so every sink is deterministic).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a metric.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        self.metrics.insert(name.into(), value);
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// The value of a counter, if `name` is one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Drops every metric whose name does not satisfy `keep`. Useful to
    /// strip wall-clock histograms before comparing snapshots for
    /// determinism.
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.metrics.retain(|name, _| keep(name));
    }

    /// Subtracts an `earlier` snapshot, yielding the interval view:
    /// counters and histograms subtract, gauges keep the later value.
    /// Metrics present only in `self` are passed through unchanged;
    /// metrics present only in `earlier` are dropped.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, value)| {
                let diffed = match (value, earlier.metrics.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(before))) => {
                        MetricValue::Counter(now.saturating_sub(*before))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(before))) => {
                        MetricValue::Histogram(now.diff(before))
                    }
                    // Gauges are instantaneous; kind changes fall back to
                    // the later value as well.
                    (value, _) => value.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        Snapshot { metrics }
    }
}

impl FromIterator<(String, MetricValue)> for Snapshot {
    fn from_iter<T: IntoIterator<Item = (String, MetricValue)>>(iter: T) -> Self {
        Snapshot {
            metrics: iter.into_iter().collect(),
        }
    }
}
