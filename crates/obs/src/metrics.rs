//! The metric primitives: atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed
//! [`Histogram`]s, and the RAII [`ScopedTimer`] that feeds a histogram on
//! drop.
//!
//! All primitives are lock-free and use `Relaxed` atomics: metrics never
//! synchronize program state, they only have to converge to the correct
//! totals once writers quiesce. A [`Histogram::record`] touches several
//! atomics non-transactionally, so a snapshot taken *while* writers are
//! active can observe a count that is ahead of the matching sum by a few
//! in-flight samples; once recording stops, every read is exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::snapshot::HistogramSnapshot;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A last-write-wins signed instantaneous value (queue depth, cache
/// entries, resident faults).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    /// Adds `n` (use a negative `n` to decrement).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// Number of histogram buckets: one for the value `0` plus one per power
/// of two up to `2^63`, so every `u64` maps to exactly one bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in µs, sizes in
/// elements), mergeable across threads.
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b - 1]`. Alongside the buckets the histogram tracks the
/// exact `count`, `sum`, `min` and `max`, so means are exact and only
/// quantiles are approximate (to within a factor of two, by
/// construction).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The smallest value mapping to bucket `index`.
    pub fn bucket_lower_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// The largest value mapping to bucket `index`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Folds every sample of `other` into `self`. Merging the per-thread
    /// histograms of `N` workers yields bit-identical buckets, count and
    /// sum to recording the union of their samples on a single histogram
    /// (the property test in `lib.rs` pins this down).
    pub fn merge_from(&self, other: &Histogram) {
        let n = other.count.load(Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let add = theirs.load(Relaxed);
            if add != 0 {
                mine.fetch_add(add, Relaxed);
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A plain-data copy of the current state (empty buckets elided).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n != 0).then_some((Self::bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
            buckets,
        }
    }

    /// Starts an RAII timer that records into this histogram (in µs) when
    /// dropped.
    pub fn start_timer(self: &Arc<Self>) -> ScopedTimer {
        ScopedTimer {
            histogram: Some(Arc::clone(self)),
            start: Instant::now(),
        }
    }
}

/// RAII timer: created by [`Histogram::start_timer`] (or
/// [`crate::Registry::timer_us`]), records the elapsed wall-clock time in
/// whole microseconds into its histogram when dropped.
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Option<Arc<Histogram>>,
    start: Instant,
}

impl ScopedTimer {
    /// Stops the timer without recording anything (e.g. on an error path
    /// that should not pollute the latency distribution).
    pub fn discard(mut self) {
        self.histogram = None;
    }

    /// Stops the timer now and records the elapsed time, returning it.
    pub fn observe(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(h) = self.histogram.take() {
            h.record_duration(elapsed);
        }
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some(h) = self.histogram.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}
