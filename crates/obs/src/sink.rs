//! Snapshot sinks: a deterministic JSON object and an aligned pretty
//! table. Both render metrics in sorted name order so byte-identical
//! registries produce byte-identical output.

use std::fmt::Write as _;

use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};

impl Snapshot {
    /// Renders the snapshot as one JSON object keyed by metric name:
    ///
    /// ```json
    /// {
    ///   "engine.full_sims": {"type":"counter","value":3},
    ///   "serve.request_us.load": {"type":"histogram","count":2,"sum":91,
    ///     "min":38,"max":53,"buckets":[[32,2]]}
    /// }
    /// ```
    ///
    /// Keys are sorted, every number is an integer, and no trailing
    /// newline is emitted; the output parses with any JSON reader.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => write_json_histogram(&mut out, h),
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot as an aligned two-column table, histograms
    /// summarised as count/mean/min/max plus log₂-bucket quantile upper
    /// bounds:
    ///
    /// ```text
    /// metric                   value
    /// engine.full_sims         3
    /// serve.request_us.load    n=2 mean=45.5 min=38 max=53 p50<=53 p99<=53
    /// ```
    pub fn to_table(&self) -> String {
        let rows: Vec<(String, String)> = self
            .iter()
            .map(|(name, value)| {
                let rendered = match value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => format_histogram(h),
                };
                (name.to_string(), rendered)
            })
            .collect();
        let width = rows
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let mut out = String::new();
        let _ = writeln!(out, "{:<width$}  value", "metric");
        for (name, rendered) in rows {
            let _ = writeln!(out, "{name:<width$}  {rendered}");
        }
        out
    }
}

fn format_histogram(h: &HistogramSnapshot) -> String {
    if h.count == 0 {
        return "n=0".to_string();
    }
    format!(
        "n={} mean={:.1} min={} max={} p50<={} p99<={}",
        h.count,
        h.mean(),
        h.min,
        h.max,
        h.quantile_upper_bound(0.5),
        h.quantile_upper_bound(0.99),
    )
}

fn write_json_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count, h.sum, h.min, h.max
    );
    for (i, (lo, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lo},{n}]");
    }
    out.push_str("]}");
}

/// Writes `s` as a JSON string literal with the escapes required by RFC
/// 8259 (quote, backslash, control characters).
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
