//! # tpi-obs
//!
//! Zero-dependency observability for the TPI workspace: a thread-safe
//! metrics [`Registry`] of atomic [`Counter`]s, [`Gauge`]s and
//! log₂-bucketed [`Histogram`]s, RAII [`ScopedTimer`]s, plain-data
//! [`Snapshot`]s with interval [`Snapshot::diff`], and two deterministic
//! sinks ([`Snapshot::to_json`], [`Snapshot::to_table`]).
//!
//! ## Design
//!
//! * **Zero dependencies.** The crate sits below everything else in the
//!   workspace (the sim kernels included), so it may not pull in anything
//!   — not even the workspace's own JSON module. The JSON sink is ~40
//!   lines of hand-rolled escaping.
//! * **Cheap to write.** All primitives are lock-free `Relaxed` atomics;
//!   handle lookup (`registry.counter("name")`) takes a read lock on a
//!   sorted map and is meant for set-up paths. Hot loops hold on to the
//!   returned `Arc` handles — or, like the fault-sim kernels, accumulate
//!   into plain `u64` fields and publish once per run, keeping the
//!   per-event cost at a register increment.
//! * **Mergeable.** Histograms merge exactly ([`Histogram::merge_from`]):
//!   per-thread recording followed by a merge is bit-identical to
//!   single-threaded recording of the same samples.
//! * **Deterministic sinks.** Snapshots are sorted maps; equal registry
//!   states render to byte-identical JSON/tables.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use tpi_obs::Registry;
//!
//! let registry = Arc::new(Registry::new());
//! registry.counter("engine.full_sims").inc();
//! {
//!     let _timer = registry.timer_us("engine.full_sim_us");
//!     // ... timed work ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("engine.full_sims"), Some(1));
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sink;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, ScopedTimer, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot};

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One registered metric (the registry's internal storage).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, shareable across threads.
///
/// Handles are get-or-create: the first `counter("x")` registers the
/// metric, later calls return the same underlying atomic. Requesting an
/// existing name as a *different* kind is a programming error and
/// panics — metric names are static identifiers, not data.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.metrics.read().expect("obs registry lock").get(name) {
            return match m {
                Metric::Counter(c) => Arc::clone(c),
                other => kind_mismatch(name, "counter", other),
            };
        }
        let mut map = self.metrics.write().expect("obs registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => kind_mismatch(name, "counter", other),
        }
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.metrics.read().expect("obs registry lock").get(name) {
            return match m {
                Metric::Gauge(g) => Arc::clone(g),
                other => kind_mismatch(name, "gauge", other),
            };
        }
        let mut map = self.metrics.write().expect("obs registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => kind_mismatch(name, "gauge", other),
        }
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(m) = self.metrics.read().expect("obs registry lock").get(name) {
            return match m {
                Metric::Histogram(h) => Arc::clone(h),
                other => kind_mismatch(name, "histogram", other),
            };
        }
        let mut map = self.metrics.write().expect("obs registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => kind_mismatch(name, "histogram", other),
        }
    }

    /// Starts an RAII timer recording into the histogram `name` (in
    /// microseconds) when dropped.
    pub fn timer_us(&self, name: &str) -> ScopedTimer {
        self.histogram(name).start_timer()
    }

    /// A point-in-time plain-data copy of every metric, keyed by name.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }
}

fn kind_mismatch(name: &str, wanted: &str, found: &Metric) -> ! {
    let found = match found {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    };
    panic!("metric {name:?} requested as a {wanted} but registered as a {found}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        r.gauge("g").set(-7);
        r.gauge("g").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(4));
        assert_eq!(snap.get("g"), Some(&MetricValue::Gauge(-5)));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lower_bound(b)), b);
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper_bound(b)), b);
        }
    }

    #[test]
    fn histogram_summary_is_exact_for_count_sum_min_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 130, 9000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 9141);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 9000);
        // 0 → bucket 0; 1 → [1,1]; 5,5 → [4,7]; 130 → [128,255];
        // 9000 → [8192,16383].
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (4, 2), (128, 1), (8192, 1)]);
        assert_eq!(s.quantile_upper_bound(0.5), 7);
        assert_eq!(s.quantile_upper_bound(1.0), 9000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_histograms() {
        let r = Registry::new();
        r.counter("c").add(10);
        r.histogram("h").record(100);
        let before = r.snapshot();
        r.counter("c").add(5);
        r.histogram("h").record(100);
        r.histogram("h").record(3);
        r.gauge("g").set(42);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("c"), Some(5));
        assert_eq!(d.get("g"), Some(&MetricValue::Gauge(42)));
        match d.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 103);
                assert_eq!(h.buckets, vec![(2, 1), (64, 1)]);
            }
            other => panic!("expected histogram diff, got {other:?}"),
        }
    }

    #[test]
    fn scoped_timer_records_on_drop_and_discard_does_not() {
        let r = Registry::new();
        {
            let _t = r.timer_us("op_us");
        }
        r.timer_us("op_us").discard();
        let snap = r.snapshot();
        match snap.get("op_us") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_sink_is_deterministic_and_escaped() {
        let r = Registry::new();
        r.counter("b.total").add(2);
        r.gauge("a \"quoted\"\n").set(-1);
        r.histogram("h").record(5);
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"a \\\"quoted\\\"\\n\":{\"type\":\"gauge\",\"value\":-1}"));
        assert!(a.contains("\"b.total\":{\"type\":\"counter\",\"value\":2}"));
        assert!(a.contains("\"buckets\":[[4,1]]"));
    }

    #[test]
    fn table_sink_aligns_names() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("a.much.longer.name").add(7);
        let table = r.snapshot().to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("metric"));
        // Both value columns start at the same offset.
        let col = lines[1].find("  7").unwrap();
        assert_eq!(lines[2].find("  1").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "requested as a gauge but registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("x");
    }

    #[test]
    fn concurrent_writers_converge() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("h");
                    for v in 0..1000u64 {
                        c.inc();
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), Some(4000));
        match snap.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 4000);
                assert_eq!(h.sum, 4 * (999 * 1000 / 2));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    proptest! {
        /// Sharding samples across N per-thread histograms and merging is
        /// bit-identical to recording them all on one histogram — the
        /// property the parallel fault-sim merge relies on.
        #[test]
        fn merge_of_shards_equals_single_thread(
            samples in prop::collection::vec(0u64..=u64::MAX, 0..200),
            shards in 1usize..6,
        ) {
            let single = Histogram::new();
            for &v in &samples {
                single.record(v);
            }
            let parts: Vec<Histogram> =
                (0..shards).map(|_| Histogram::new()).collect();
            for (i, &v) in samples.iter().enumerate() {
                parts[i % shards].record(v);
            }
            let merged = Histogram::new();
            for p in &parts {
                merged.merge_from(p);
            }
            prop_assert_eq!(merged.snapshot(), single.snapshot());
        }

        /// Quantile upper bounds never undershoot the true quantile and
        /// stay within the observed range.
        #[test]
        fn quantile_bounds_are_sound(
            raw in prop::collection::vec(0u64..1_000_000, 1..100),
            q in 0.0f64..1.001,
        ) {
            let h = Histogram::new();
            for &v in &raw {
                h.record(v);
            }
            let s = h.snapshot();
            let mut samples = raw.clone();
            samples.sort_unstable();
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let true_q = samples[rank - 1];
            let bound = s.quantile_upper_bound(q);
            prop_assert!(bound >= true_q);
            prop_assert!(bound <= s.max);
        }
    }
}
