//! Whole-circuit testability reports, as printed in benchmark tables.

use tpi_netlist::{Circuit, NetlistError};
use tpi_sim::FaultUniverse;

use crate::detect::DetectionProfile;

/// A testability summary of one circuit under the equiprobable
/// random-pattern model.
#[derive(Clone, Debug)]
pub struct TestabilityReport {
    /// Circuit name.
    pub name: String,
    /// Collapsed fault count (the table denominator).
    pub faults: usize,
    /// Uncollapsed fault count.
    pub faults_uncollapsed: usize,
    /// Minimum COP detection probability over all faults.
    pub min_detection_probability: f64,
    /// Median COP detection probability.
    pub median_detection_probability: f64,
    /// Number of faults below the given resistance threshold.
    pub resistant_faults: usize,
    /// The threshold used for `resistant_faults`.
    pub resistance_threshold: f64,
    /// COP-predicted fault coverage after 1 000 random patterns.
    pub expected_coverage_1k: f64,
    /// COP-predicted fault coverage after 32 000 random patterns.
    pub expected_coverage_32k: f64,
}

impl TestabilityReport {
    /// Analyse `circuit` with the collapsed fault universe and the given
    /// resistance threshold.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn analyse(circuit: &Circuit, threshold: f64) -> Result<TestabilityReport, NetlistError> {
        let universe = FaultUniverse::collapsed(circuit)?;
        let profile = DetectionProfile::estimate(circuit, universe.faults())?;
        let mut sorted: Vec<f64> = profile.probabilities().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("probabilities are finite"));
        let median = if sorted.is_empty() {
            1.0
        } else {
            sorted[sorted.len() / 2]
        };
        Ok(TestabilityReport {
            name: circuit.name().to_string(),
            faults: universe.len(),
            faults_uncollapsed: universe.total_uncollapsed(),
            min_detection_probability: profile.min_probability(),
            median_detection_probability: median,
            resistant_faults: profile.resistant_indices(threshold).len(),
            resistance_threshold: threshold,
            expected_coverage_1k: profile.expected_coverage(1_000),
            expected_coverage_32k: profile.expected_coverage(32_000),
        })
    }

    /// One row of a benchmark table, tab-separated.
    pub fn table_row(&self) -> String {
        format!(
            "{}\t{}\t{:.2e}\t{}\t{:.2}%\t{:.2}%",
            self.name,
            self.faults,
            self.min_detection_probability,
            self.resistant_faults,
            self.expected_coverage_1k * 100.0,
            self.expected_coverage_32k * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn report_on_resistant_circuit() {
        let mut b = CircuitBuilder::new("and16");
        let xs = b.inputs(16, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let r = TestabilityReport::analyse(&c, 1e-3).unwrap();
        assert_eq!(r.name, "and16");
        assert!(r.faults > 0);
        assert!(r.faults_uncollapsed >= r.faults);
        assert!(r.min_detection_probability <= 2f64.powi(-16) + 1e-15);
        assert!(r.resistant_faults >= 1);
        assert!(r.expected_coverage_32k > r.expected_coverage_1k - 1e-12);
        let row = r.table_row();
        assert!(row.starts_with("and16\t"));
    }

    #[test]
    fn easy_circuit_has_no_resistant_faults() {
        let mut b = CircuitBuilder::new("xor4");
        let xs = b.inputs(4, "x");
        let root = b.balanced_tree(GateKind::Xor, &xs, "g").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let r = TestabilityReport::analyse(&c, 1e-3).unwrap();
        assert_eq!(r.resistant_faults, 0);
        assert!(r.expected_coverage_1k > 0.999);
    }
}
