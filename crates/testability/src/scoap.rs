use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};

/// Sentinel for "uncontrollable / unobservable" SCOAP values (e.g. the
/// 1-controllability of a constant-0 net).
pub const SCOAP_INF: u32 = u32::MAX / 4;

/// Classic SCOAP testability measures: integer combinational
/// controllabilities `CC0`/`CC1` (effort to set a line to 0/1) and
/// observability `CO` (effort to propagate a line to an output).
///
/// Provided for period-appropriate comparisons against the probabilistic
/// COP measures; the DP itself reasons in probabilities.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_testability::ScoapAnalysis;
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let scoap = ScoapAnalysis::new(&c)?;
/// let y = c.outputs()[0];
/// assert_eq!(scoap.cc1(y), 3); // both inputs to 1: 1 + 1 + 1
/// assert_eq!(scoap.cc0(y), 2); // one input to 0:   1 + 1
/// assert_eq!(scoap.co(y), 0);  // it is an output
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ScoapAnalysis {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl ScoapAnalysis {
    /// Compute SCOAP measures for a circuit.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<ScoapAnalysis, NetlistError> {
        let topo = Topology::of(circuit)?;
        let n = circuit.node_count();
        let mut cc0 = vec![SCOAP_INF; n];
        let mut cc1 = vec![SCOAP_INF; n];

        for &id in topo.order() {
            let node = circuit.node(id);
            let (c0, c1) = match node.kind() {
                GateKind::Input => (1, 1),
                GateKind::Const0 => (1, SCOAP_INF),
                GateKind::Const1 => (SCOAP_INF, 1),
                GateKind::Buf => {
                    let f = node.fanins()[0];
                    (sat_add(cc0[f.index()], 1), sat_add(cc1[f.index()], 1))
                }
                GateKind::Not => {
                    let f = node.fanins()[0];
                    (sat_add(cc1[f.index()], 1), sat_add(cc0[f.index()], 1))
                }
                GateKind::And => and_cc(node.fanins(), &cc0, &cc1),
                GateKind::Nand => swap(and_cc(node.fanins(), &cc0, &cc1)),
                GateKind::Or => swap(and_cc(node.fanins(), &cc1, &cc0)),
                GateKind::Nor => and_cc(node.fanins(), &cc1, &cc0),
                GateKind::Xor => xor_cc(node.fanins(), &cc0, &cc1, false),
                GateKind::Xnor => xor_cc(node.fanins(), &cc0, &cc1, true),
            };
            cc0[id.index()] = c0;
            cc1[id.index()] = c1;
        }

        let mut co = vec![SCOAP_INF; n];
        for &o in circuit.outputs() {
            co[o.index()] = 0;
        }
        for &id in topo.order().iter().rev() {
            let node = circuit.node(id);
            if node.kind().is_source() || co[id.index()] >= SCOAP_INF {
                continue;
            }
            let fanins = node.fanins();
            for (pin, &f) in fanins.iter().enumerate() {
                let side_cost: u32 = match node.kind() {
                    GateKind::And | GateKind::Nand => sum_others(fanins, pin, &cc1),
                    GateKind::Or | GateKind::Nor => sum_others(fanins, pin, &cc0),
                    GateKind::Buf | GateKind::Not => 0,
                    GateKind::Xor | GateKind::Xnor => fanins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pin)
                        .map(|(_, &s)| cc0[s.index()].min(cc1[s.index()]))
                        .fold(0, sat_add),
                    _ => 0,
                };
                let via = sat_add(sat_add(co[id.index()], side_cost), 1);
                if via < co[f.index()] {
                    co[f.index()] = via;
                }
            }
        }
        Ok(ScoapAnalysis { cc0, cc1, co })
    }

    /// Effort to drive the line to 0 (1 at a primary input).
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// Effort to drive the line to 1.
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Effort to observe the line at an output (0 at a primary output).
    pub fn co(&self, id: NodeId) -> u32 {
        self.co[id.index()]
    }

    /// Combined SCOAP testability of the line's hardest stuck-at fault:
    /// `max(cc0, cc1) + co` (saturating).
    pub fn hardest_fault_effort(&self, id: NodeId) -> u32 {
        sat_add(
            self.cc0[id.index()].max(self.cc1[id.index()]),
            self.co[id.index()],
        )
    }
}

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_INF)
}

fn swap((a, b): (u32, u32)) -> (u32, u32) {
    (b, a)
}

/// `(cc0, cc1)` of an AND-like gate over the given controllability tables
/// (`lo` = cost of the controlling value, `hi` = cost of the
/// non-controlling value). Passing `(cc1, cc0)` computes the NOR case.
fn and_cc(fanins: &[NodeId], lo: &[u32], hi: &[u32]) -> (u32, u32) {
    let easiest_zero = fanins
        .iter()
        .map(|f| lo[f.index()])
        .min()
        .unwrap_or(SCOAP_INF);
    let all_ones = fanins.iter().map(|f| hi[f.index()]).fold(0, sat_add);
    (sat_add(easiest_zero, 1), sat_add(all_ones, 1))
}

/// `(cc0, cc1)` of an XOR/XNOR by folding pairwise.
fn xor_cc(fanins: &[NodeId], cc0: &[u32], cc1: &[u32], invert: bool) -> (u32, u32) {
    let mut acc0 = 0u32; // cost to make partial parity 0 (empty parity = 0)
    let mut acc1 = SCOAP_INF;
    for (i, f) in fanins.iter().enumerate() {
        let (f0, f1) = (cc0[f.index()], cc1[f.index()]);
        if i == 0 {
            acc0 = f0;
            acc1 = f1;
        } else {
            let n0 = sat_add(acc0, f0).min(sat_add(acc1, f1));
            let n1 = sat_add(acc0, f1).min(sat_add(acc1, f0));
            acc0 = n0;
            acc1 = n1;
        }
    }
    if invert {
        (sat_add(acc1, 1), sat_add(acc0, 1))
    } else {
        (sat_add(acc0, 1), sat_add(acc1, 1))
    }
}

fn sum_others(fanins: &[NodeId], pin: usize, table: &[u32]) -> u32 {
    fanins
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != pin)
        .map(|(_, &s)| table[s.index()])
        .fold(0, sat_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::CircuitBuilder;

    #[test]
    fn primary_input_baseline() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!((s.cc0(a), s.cc1(a)), (1, 1));
        assert_eq!((s.cc0(g), s.cc1(g)), (2, 2));
        assert_eq!(s.co(g), 0);
        assert_eq!(s.co(a), 1);
    }

    #[test]
    fn wide_and_controllability_grows_linearly() {
        for width in [2usize, 4, 8] {
            let mut b = CircuitBuilder::new("c");
            let xs = b.inputs(width, "x");
            let g = b.gate(GateKind::And, xs.clone(), "g").unwrap();
            b.output(g);
            let c = b.finish().unwrap();
            let s = ScoapAnalysis::new(&c).unwrap();
            assert_eq!(s.cc1(g), width as u32 + 1);
            assert_eq!(s.cc0(g), 2);
        }
    }

    #[test]
    fn nand_nor_duality() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(2, "x");
        let nand = b.gate(GateKind::Nand, xs.clone(), "nand").unwrap();
        let nor = b.gate(GateKind::Nor, xs.clone(), "nor").unwrap();
        b.output(nand);
        b.output(nor);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.cc0(nand), 3); // both 1 then invert
        assert_eq!(s.cc1(nand), 2);
        assert_eq!(s.cc1(nor), 3);
        assert_eq!(s.cc0(nor), 2);
    }

    #[test]
    fn xor_controllability() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(2, "x");
        let g = b.gate(GateKind::Xor, xs.clone(), "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.cc1(g), 3); // one input 1, other 0
        assert_eq!(s.cc0(g), 3); // both equal
    }

    #[test]
    fn observability_accumulates_side_costs() {
        // y = AND(x0, x1, x2): observing x0 requires x1=1 and x2=1.
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(3, "x");
        let g = b.gate(GateKind::And, xs.clone(), "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.co(xs[0]), 3); // CO(out)=0 + CC1(x1) + CC1(x2) + 1
        assert_eq!(s.hardest_fault_effort(xs[0]), 1 + 3);
    }

    #[test]
    fn constants_are_one_sided() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![one, x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.cc1(one), 1);
        assert_eq!(s.cc0(one), SCOAP_INF);
        // Forcing g to 0 must go through x (the constant can't be 0).
        assert_eq!(s.cc0(g), 2);
    }

    #[test]
    fn unobservable_logic_is_infinite() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let dead = b.gate(GateKind::Not, vec![a], "dead").unwrap();
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.co(dead), SCOAP_INF);
    }

    #[test]
    fn co_takes_cheapest_path() {
        // a reaches the output directly (BUF) and through an AND; CO must
        // use the cheap path.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::Buf, vec![a], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let s = ScoapAnalysis::new(&c).unwrap();
        assert_eq!(s.co(a), 1); // via the buffer
    }
}
