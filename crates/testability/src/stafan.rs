//! STAFAN-style statistical testability analysis.
//!
//! Where COP *computes* probabilities assuming signal independence, STAFAN
//! (Jain & Agrawal, 1985) *measures* them: signal probabilities come from
//! logic-simulating a sample of random patterns, and per-pin sensitisation
//! frequencies — the probability that a gate's side inputs hold
//! non-controlling values — are counted rather than derived. The backward
//! observability pass then chains measured frequencies, so first-order
//! input correlations (the thing COP gets wrong under reconvergent fanout)
//! are captured for free.
//!
//! On fanout-free circuits STAFAN converges to COP as the sample grows;
//! on reconvergent circuits it is usually the better estimate — the
//! property tests quantify both statements.

use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};
use tpi_sim::{Fault, FaultSite, LogicSim, PatternSource};

/// Statistical (simulation-measured) testability measures.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_sim::RandomPatterns;
/// use tpi_testability::StafanAnalysis;
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let mut src = RandomPatterns::new(2, 7);
/// let stafan = StafanAnalysis::estimate(&c, &mut src, 64_000)?;
/// let y = c.outputs()[0];
/// assert!((stafan.c1(y) - 0.25).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StafanAnalysis {
    c1: Vec<f64>,
    obs: Vec<f64>,
    pin_obs: Vec<Vec<f64>>,
    patterns: u64,
}

impl StafanAnalysis {
    /// Measure over `n_patterns` patterns from `source`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn estimate(
        circuit: &Circuit,
        source: &mut dyn PatternSource,
        n_patterns: u64,
    ) -> Result<StafanAnalysis, NetlistError> {
        let sim = LogicSim::new(circuit)?;
        let topo = Topology::of(circuit)?;
        let n = circuit.node_count();
        let mut one_counts = vec![0u64; n];
        // Per gate, per pin: patterns where all *other* pins hold
        // non-controlling values.
        let mut sens_counts: Vec<Vec<u64>> = circuit
            .node_ids()
            .map(|id| vec![0u64; circuit.fanins(id).len()])
            .collect();

        let mut words = vec![0u64; circuit.inputs().len()];
        let mut values = vec![0u64; n];
        let mut applied = 0u64;
        while applied < n_patterns {
            let filled = source.fill(&mut words) as u64;
            if filled == 0 {
                break;
            }
            let lanes = filled.min(n_patterns - applied);
            let mask = if lanes >= 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            sim.simulate_into(&words, &mut values);
            for id in circuit.node_ids() {
                one_counts[id.index()] += u64::from((values[id.index()] & mask).count_ones());
                let node = circuit.node(id);
                let sens = &mut sens_counts[id.index()];
                match node.kind() {
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                        // For pin p: all other pins at non-controlling
                        // value. Compute via prefix/suffix masks.
                        let noncontrolling: Vec<u64> = node
                            .fanins()
                            .iter()
                            .map(|f| {
                                let v = values[f.index()];
                                if node.kind().controlling_value() == Some(false) {
                                    v // AND-like: non-controlling = 1
                                } else {
                                    !v
                                }
                            })
                            .collect();
                        let k = noncontrolling.len();
                        let mut prefix = vec![u64::MAX; k + 1];
                        for i in 0..k {
                            prefix[i + 1] = prefix[i] & noncontrolling[i];
                        }
                        let mut suffix = vec![u64::MAX; k + 1];
                        for i in (0..k).rev() {
                            suffix[i] = suffix[i + 1] & noncontrolling[i];
                        }
                        for p in 0..k {
                            let m = prefix[p] & suffix[p + 1] & mask;
                            sens[p] += u64::from(m.count_ones());
                        }
                    }
                    GateKind::Buf | GateKind::Not | GateKind::Xor | GateKind::Xnor => {
                        // Always sensitised.
                        for s in sens.iter_mut() {
                            *s += lanes;
                        }
                    }
                    _ => {}
                }
            }
            applied += lanes;
        }
        let denom = applied.max(1) as f64;
        let c1: Vec<f64> = one_counts.iter().map(|&c| c as f64 / denom).collect();

        // Backward observability pass with measured sensitisation ratios.
        let mut obs = vec![0.0f64; n];
        let mut pin_obs: Vec<Vec<f64>> = circuit
            .node_ids()
            .map(|id| vec![0.0; circuit.fanins(id).len()])
            .collect();
        for &o in circuit.outputs() {
            obs[o.index()] = 1.0;
        }
        for &id in topo.order().iter().rev() {
            let node = circuit.node(id);
            if node.kind().is_source() {
                continue;
            }
            for (p, &fanin) in node.fanins().iter().enumerate() {
                let sens_ratio = sens_counts[id.index()][p] as f64 / denom;
                let branch = obs[id.index()] * sens_ratio;
                pin_obs[id.index()][p] = branch;
                if branch > obs[fanin.index()] {
                    obs[fanin.index()] = branch;
                }
            }
        }
        Ok(StafanAnalysis {
            c1,
            obs,
            pin_obs,
            patterns: applied,
        })
    }

    /// Measured 1-probability of the signal.
    pub fn c1(&self, id: NodeId) -> f64 {
        self.c1[id.index()]
    }

    /// Measured 0-probability of the signal.
    pub fn c0(&self, id: NodeId) -> f64 {
        1.0 - self.c1[id.index()]
    }

    /// Estimated observability (measured sensitisation frequencies chained
    /// along the best path).
    pub fn observability(&self, id: NodeId) -> f64 {
        self.obs[id.index()]
    }

    /// Observability of the branch line entering `gate` at `pin`.
    pub fn branch_observability(&self, gate: NodeId, pin: u32) -> f64 {
        self.pin_obs[gate.index()][pin as usize]
    }

    /// Patterns the estimate was measured over.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Estimated detection probability: excitation × observability.
    pub fn detection_probability(&self, circuit: &Circuit, fault: Fault) -> f64 {
        match fault.site {
            FaultSite::Stem(v) => {
                let exc = if fault.stuck { self.c0(v) } else { self.c1(v) };
                exc * self.obs[v.index()]
            }
            FaultSite::Branch { gate, pin } => {
                let driver = circuit.fanins(gate)[pin as usize];
                let exc = if fault.stuck {
                    self.c0(driver)
                } else {
                    self.c1(driver)
                };
                exc * self.pin_obs[gate.index()][pin as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CopAnalysis;
    use tpi_netlist::CircuitBuilder;
    use tpi_sim::RandomPatterns;

    #[test]
    fn converges_to_cop_on_trees() {
        let mut b = CircuitBuilder::new("t");
        let xs = b.inputs(6, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..3], "a").unwrap();
        let o = b.balanced_tree(GateKind::Nor, &xs[3..], "o").unwrap();
        let y = b.gate(GateKind::Xor, vec![a, o], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let mut src = RandomPatterns::new(6, 11);
        let stafan = StafanAnalysis::estimate(&c, &mut src, 120_000).unwrap();
        for id in c.node_ids() {
            assert!(
                (cop.c1(id) - stafan.c1(id)).abs() < 0.01,
                "c1({}): cop {} stafan {}",
                c.node_name(id),
                cop.c1(id),
                stafan.c1(id)
            );
            assert!(
                (cop.observability(id) - stafan.observability(id)).abs() < 0.01,
                "obs({}): cop {} stafan {}",
                c.node_name(id),
                cop.observability(id),
                stafan.observability(id)
            );
        }
    }

    #[test]
    fn captures_correlation_cop_misses() {
        // y = AND(x, NOT(x)) is constant 0. COP says c1 = 0.25; STAFAN
        // measures 0.
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let nx = b.gate(GateKind::Not, vec![x], "nx").unwrap();
        let y = b.gate(GateKind::And, vec![x, nx], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let mut src = RandomPatterns::new(1, 3);
        let stafan = StafanAnalysis::estimate(&c, &mut src, 10_000).unwrap();
        assert!((cop.c1(y) - 0.25).abs() < 1e-12, "COP's known blind spot");
        assert_eq!(stafan.c1(y), 0.0, "STAFAN measures the truth");
    }

    #[test]
    fn detection_probability_close_to_ground_truth_on_dag() {
        use tpi_sim::{montecarlo, FaultUniverse};
        let c = tpi_gen_free_dag();
        let universe = FaultUniverse::collapsed(&c).unwrap();
        let exact = montecarlo::exact_detection_probabilities(&c, universe.faults()).unwrap();
        let mut src = RandomPatterns::new(c.inputs().len(), 13);
        let stafan = StafanAnalysis::estimate(&c, &mut src, 60_000).unwrap();
        let mut total_err = 0.0;
        for (i, &fault) in universe.faults().iter().enumerate() {
            total_err += (stafan.detection_probability(&c, fault) - exact[i]).abs();
        }
        let mean_err = total_err / universe.len() as f64;
        assert!(mean_err < 0.08, "mean error {mean_err}");
    }

    /// A small reconvergent circuit (built inline — `tpi-gen` would be a
    /// dependency cycle).
    fn tpi_gen_free_dag() -> Circuit {
        let mut b = CircuitBuilder::new("dag");
        let xs = b.inputs(4, "x");
        let g1 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g1").unwrap();
        let g2 = b.gate(GateKind::Or, vec![g1, xs[2]], "g2").unwrap();
        let g3 = b.gate(GateKind::Nand, vec![g1, xs[3]], "g3").unwrap();
        let y = b.gate(GateKind::Xor, vec![g2, g3], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn patterns_reported() {
        let c = tpi_gen_free_dag();
        let mut src = RandomPatterns::new(4, 1);
        let s = StafanAnalysis::estimate(&c, &mut src, 130).unwrap();
        assert_eq!(s.patterns(), 130);
    }
}
