//! Escape probability ↔ test length ↔ detection threshold arithmetic.
//!
//! Under the random-pattern model a fault with per-pattern detection
//! probability `p` escapes an `L`-pattern test with probability
//! `(1 − p)^L`. The DAC'87-era test-point-insertion objective "every fault
//! detected with confidence `c` within `L` patterns" therefore translates
//! into a per-pattern detection-probability threshold
//! `δ = 1 − (1 − c)^{1/L}` — the bridge between a BIST test-length budget
//! and the threshold handed to the optimizers in `tpi-core`.

/// Probability that a fault with per-pattern detection probability `p`
/// survives `n` independent random patterns.
///
/// # Example
///
/// ```
/// use tpi_testability::testlen::escape_probability;
/// assert!((escape_probability(0.5, 2) - 0.25).abs() < 1e-12);
/// assert_eq!(escape_probability(0.0, 1000), 1.0);
/// assert_eq!(escape_probability(1.0, 1), 0.0);
/// ```
pub fn escape_probability(p: f64, n: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p >= 1.0 {
        return 0.0;
    }
    // ln-form avoids underfow surprises for large n.
    let log = (n as f64) * (1.0 - p).ln();
    log.exp()
}

/// Number of random patterns needed to detect a fault of per-pattern
/// probability `p` with confidence `confidence`.
///
/// Returns `u64::MAX` for untestable faults (`p == 0`).
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)`.
///
/// # Example
///
/// ```
/// use tpi_testability::testlen::test_length_for_confidence;
/// // Detecting a p = 0.001 fault with 98% confidence needs ~3 911 patterns.
/// let l = test_length_for_confidence(0.001, 0.98);
/// assert!((3_800..4_000).contains(&l));
/// ```
pub fn test_length_for_confidence(p: f64, confidence: f64) -> u64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let l = (1.0 - confidence).ln() / (1.0 - p).ln();
    l.ceil() as u64
}

/// The per-pattern detection-probability threshold implied by a test
/// length `l` and a per-fault confidence `confidence`:
/// `δ = 1 − (1 − confidence)^{1/l}`.
///
/// # Panics
///
/// Panics if `l == 0` or `confidence` is not in `(0, 1)`.
///
/// # Example
///
/// ```
/// use tpi_testability::testlen::{threshold_for_length, escape_probability};
/// let delta = threshold_for_length(32_000, 0.98);
/// // A fault exactly at the threshold escapes 32k patterns with prob 2%.
/// assert!((escape_probability(delta, 32_000) - 0.02).abs() < 1e-9);
/// ```
pub fn threshold_for_length(l: u64, confidence: f64) -> f64 {
    assert!(l > 0, "test length must be positive");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    1.0 - (1.0 - confidence).powf(1.0 / l as f64)
}

/// Expected number of patterns until first detection (`1/p`), or
/// `f64::INFINITY` for untestable faults.
pub fn expected_patterns_to_detect(p: f64) -> f64 {
    if p <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_edge_cases() {
        assert_eq!(escape_probability(1.0, 0), 0.0);
        assert_eq!(escape_probability(0.0, u64::MAX), 1.0);
        assert!((escape_probability(0.5, 10) - 0.5f64.powi(10)).abs() < 1e-15);
    }

    #[test]
    fn length_and_threshold_are_inverses() {
        for &p in &[1e-4, 1e-3, 0.01, 0.2] {
            let l = test_length_for_confidence(p, 0.95);
            // A fault at exactly the implied threshold for length l needs
            // at most l patterns at that confidence.
            let delta = threshold_for_length(l, 0.95);
            assert!(delta <= p + 1e-9, "p {p}: threshold {delta} > p");
            assert!(escape_probability(p, l) <= 0.05 + 1e-9);
        }
    }

    #[test]
    fn untestable_fault_needs_infinite_patterns() {
        assert_eq!(test_length_for_confidence(0.0, 0.9), u64::MAX);
        assert_eq!(expected_patterns_to_detect(0.0), f64::INFINITY);
    }

    #[test]
    fn certain_fault_needs_one_pattern() {
        assert_eq!(test_length_for_confidence(1.0, 0.999), 1);
        assert_eq!(expected_patterns_to_detect(1.0), 1.0);
    }

    #[test]
    fn threshold_decreases_with_length() {
        let d1 = threshold_for_length(1_000, 0.98);
        let d2 = threshold_for_length(32_000, 0.98);
        assert!(d2 < d1);
        assert!(d2 > 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        threshold_for_length(100, 1.0);
    }

    #[test]
    #[should_panic(expected = "test length must be positive")]
    fn zero_length_panics() {
        threshold_for_length(0, 0.5);
    }
}
