//! Per-fault detection probabilities and random-pattern-resistance
//! screens built on [`CopAnalysis`].

use tpi_netlist::{Circuit, NetlistError};
use tpi_sim::{montecarlo, Fault, PatternSource};

use crate::CopAnalysis;

/// Detection probabilities for a fault list — COP-estimated
/// ([`estimate`](DetectionProfile::estimate)) or measured by wide-block
/// fault simulation ([`measured`](DetectionProfile::measured)) — with
/// convenience queries used throughout the insertion algorithms.
#[derive(Clone, Debug)]
pub struct DetectionProfile {
    probabilities: Vec<f64>,
}

impl DetectionProfile {
    /// Estimate detection probabilities for `faults` on `circuit`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn estimate(circuit: &Circuit, faults: &[Fault]) -> Result<DetectionProfile, NetlistError> {
        let cop = CopAnalysis::new(circuit)?;
        Ok(DetectionProfile::from_analysis(&cop, circuit, faults))
    }

    /// *Measure* detection probabilities by fault simulation instead of
    /// the analytic COP estimate: `n_patterns` patterns from `source`
    /// through the compiled wide-block fault simulator (no dropping).
    /// Same queries, simulation-grade numbers — use this to screen
    /// random-pattern-resistant faults when COP's independence
    /// assumption is too coarse (reconvergent fanout).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn measured(
        circuit: &Circuit,
        faults: &[Fault],
        source: &mut dyn PatternSource,
        n_patterns: u64,
    ) -> Result<DetectionProfile, NetlistError> {
        Ok(DetectionProfile {
            probabilities: montecarlo::detection_probabilities(
                circuit, faults, source, n_patterns,
            )?,
        })
    }

    /// Build from an existing analysis (avoids recomputing COP).
    pub fn from_analysis(
        cop: &CopAnalysis,
        circuit: &Circuit,
        faults: &[Fault],
    ) -> DetectionProfile {
        DetectionProfile {
            probabilities: faults
                .iter()
                .map(|&f| cop.detection_probability(circuit, f))
                .collect(),
        }
    }

    /// Detection probability of fault `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// All probabilities, fault-list order.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The minimum detection probability over all faults (0 if any fault
    /// is untestable; 1 for an empty list).
    pub fn min_probability(&self) -> f64 {
        self.probabilities.iter().copied().fold(1.0, f64::min)
    }

    /// Indices of faults whose detection probability is below `threshold`
    /// — the *random-pattern-resistant* set targeted by test point
    /// insertion.
    pub fn resistant_indices(&self, threshold: f64) -> Vec<usize> {
        self.probabilities
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (p < threshold).then_some(i))
            .collect()
    }

    /// Fraction of faults meeting `threshold`.
    pub fn fraction_meeting(&self, threshold: f64) -> f64 {
        if self.probabilities.is_empty() {
            return 1.0;
        }
        let ok = self
            .probabilities
            .iter()
            .filter(|&&p| p >= threshold)
            .count();
        ok as f64 / self.probabilities.len() as f64
    }

    /// Expected fault coverage after `n_patterns` random patterns,
    /// assuming per-pattern independence: `mean(1 − (1 − p)^n)`.
    pub fn expected_coverage(&self, n_patterns: u64) -> f64 {
        if self.probabilities.is_empty() {
            return 1.0;
        }
        let sum: f64 = self
            .probabilities
            .iter()
            .map(|&p| 1.0 - crate::testlen::escape_probability(p, n_patterns))
            .sum();
        sum / self.probabilities.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind};
    use tpi_sim::FaultUniverse;

    fn and8() -> Circuit {
        let mut b = CircuitBuilder::new("and8");
        let xs = b.inputs(8, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        b.finish().unwrap()
    }

    #[test]
    fn resistant_faults_identified() {
        let c = and8();
        let u = FaultUniverse::collapsed(&c).unwrap();
        let profile = DetectionProfile::estimate(&c, u.faults()).unwrap();
        // The root SA0 has detection probability 2^-8.
        let resistant = profile.resistant_indices(0.01);
        assert!(!resistant.is_empty());
        assert!(profile.min_probability() <= 2f64.powi(-8) + 1e-12);
        // Everything is at least detectable (no zero-prob faults).
        assert!(profile.min_probability() > 0.0);
    }

    #[test]
    fn measured_profile_matches_exact_probabilities() {
        let c = and8();
        let u = FaultUniverse::collapsed(&c).unwrap();
        // Exhaustive patterns make the "measurement" exact, so it must
        // agree with brute-force enumeration bit for bit.
        let mut src = tpi_sim::ExhaustivePatterns::new(8);
        let measured = DetectionProfile::measured(&c, u.faults(), &mut src, 256).unwrap();
        let exact = tpi_sim::montecarlo::exact_detection_probabilities(&c, u.faults()).unwrap();
        for (i, (&m, &e)) in measured.probabilities().iter().zip(&exact).enumerate() {
            assert!(
                (m - e).abs() < 1e-12,
                "fault {i}: measured {m} vs exact {e}"
            );
        }
        // The same queries work on a measured profile.
        assert!(measured.min_probability() > 0.0);
        assert!(!measured.resistant_indices(0.01).is_empty());
    }

    #[test]
    fn fraction_meeting_bounds() {
        let c = and8();
        let u = FaultUniverse::collapsed(&c).unwrap();
        let profile = DetectionProfile::estimate(&c, u.faults()).unwrap();
        assert_eq!(profile.fraction_meeting(0.0), 1.0);
        assert!(profile.fraction_meeting(0.5) < 1.0);
        assert!(profile.fraction_meeting(2.0) == 0.0);
    }

    #[test]
    fn expected_coverage_increases_with_patterns() {
        let c = and8();
        let u = FaultUniverse::collapsed(&c).unwrap();
        let profile = DetectionProfile::estimate(&c, u.faults()).unwrap();
        let c10 = profile.expected_coverage(10);
        let c1000 = profile.expected_coverage(1000);
        assert!(c1000 > c10);
        assert!(c1000 <= 1.0);
    }

    #[test]
    fn empty_fault_list() {
        let c = and8();
        let profile = DetectionProfile::estimate(&c, &[]).unwrap();
        assert_eq!(profile.min_probability(), 1.0);
        assert_eq!(profile.expected_coverage(10), 1.0);
        assert_eq!(profile.fraction_meeting(0.9), 1.0);
    }
}
