use std::collections::HashMap;

use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, Topology};
use tpi_sim::{Fault, FaultSite};

/// COP-style probabilistic testability analysis.
///
/// Forward pass: the 1-probability (`c1`) of every signal under independent
/// random inputs. Backward pass: the probability (`observability`) that a
/// value change on the signal propagates to some primary output, taking the
/// best (maximum) fanout path.
///
/// On fanout-free circuits both quantities — and hence
/// [`detection_probability`](CopAnalysis::detection_probability) — are
/// **exact**, because the signals entering any gate come from disjoint
/// subtrees and are therefore independent. With reconvergent fanout COP is
/// the classical first-order approximation.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
/// use tpi_testability::CopAnalysis;
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\ny = OR(a, b)\nOUTPUT(y)\n")?;
/// let cop = CopAnalysis::new(&c)?;
/// let y = c.outputs()[0];
/// assert!((cop.c1(y) - 0.75).abs() < 1e-12);
/// let a = c.inputs()[0];
/// // a is observable when b = 0.
/// assert!((cop.observability(a) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CopAnalysis {
    c1: Vec<f64>,
    obs: Vec<f64>,
    /// `pin_obs[g][p]`: observability of the *branch line* entering gate
    /// `g` at pin `p` (i.e. `obs(g) ×` the propagation factor through `g`).
    pin_obs: Vec<Vec<f64>>,
}

impl CopAnalysis {
    /// Analyse with every primary input at probability 1/2 (the standard
    /// equiprobable random-pattern model).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits.
    pub fn new(circuit: &Circuit) -> Result<CopAnalysis, NetlistError> {
        CopAnalysis::with_input_probs(circuit, &HashMap::new())
    }

    /// Analyse with explicit 1-probabilities for selected primary inputs
    /// (others default to 1/2). Useful for weighted-random studies and for
    /// modelling control points driven by biased sources.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] for cyclic circuits;
    /// [`NetlistError::InvalidTransform`] if a probability is outside
    /// `[0, 1]` or assigned to a non-input node.
    pub fn with_input_probs(
        circuit: &Circuit,
        input_probs: &HashMap<NodeId, f64>,
    ) -> Result<CopAnalysis, NetlistError> {
        for (&id, &p) in input_probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetlistError::InvalidTransform {
                    message: format!("input probability {p} outside [0, 1]"),
                });
            }
            if circuit.kind(id) != GateKind::Input {
                return Err(NetlistError::InvalidTransform {
                    message: format!("node {id} is not a primary input"),
                });
            }
        }
        let topo = Topology::of(circuit)?;
        let n = circuit.node_count();
        let mut c1 = vec![0.0f64; n];

        for &id in topo.order() {
            let node = circuit.node(id);
            c1[id.index()] = match node.kind() {
                GateKind::Input => input_probs.get(&id).copied().unwrap_or(0.5),
                GateKind::Const0 => 0.0,
                GateKind::Const1 => 1.0,
                kind => {
                    let probs = node.fanins().iter().map(|f| c1[f.index()]);
                    gate_c1(kind, probs)
                }
            };
        }

        let mut obs = vec![0.0f64; n];
        let mut pin_obs: Vec<Vec<f64>> = circuit
            .node_ids()
            .map(|id| vec![0.0; circuit.fanins(id).len()])
            .collect();
        for &o in circuit.outputs() {
            obs[o.index()] = 1.0;
        }
        for &id in topo.order().iter().rev() {
            let node = circuit.node(id);
            if node.kind().is_source() {
                continue;
            }
            let factors = pin_factors(node.kind(), node.fanins(), &c1);
            for (p, (&fanin, factor)) in node.fanins().iter().zip(&factors).enumerate() {
                let branch = obs[id.index()] * factor;
                pin_obs[id.index()][p] = branch;
                if branch > obs[fanin.index()] {
                    obs[fanin.index()] = branch;
                }
            }
        }
        Ok(CopAnalysis { c1, obs, pin_obs })
    }

    /// Probability the signal is 1 under one random pattern.
    pub fn c1(&self, id: NodeId) -> f64 {
        self.c1[id.index()]
    }

    /// Probability the signal is 0 under one random pattern.
    pub fn c0(&self, id: NodeId) -> f64 {
        1.0 - self.c1[id.index()]
    }

    /// Probability a value change on the signal reaches an output (best
    /// single fanout path; exact on trees).
    pub fn observability(&self, id: NodeId) -> f64 {
        self.obs[id.index()]
    }

    /// Observability of the branch line entering `gate` at `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for `gate`.
    pub fn branch_observability(&self, gate: NodeId, pin: u32) -> f64 {
        self.pin_obs[gate.index()][pin as usize]
    }

    /// Raw per-node 1-probabilities, indexed by node id (for the
    /// incremental probe in [`crate::cop_delta`]).
    pub(crate) fn c1_raw(&self) -> &[f64] {
        &self.c1
    }

    /// Raw per-node observabilities, indexed by node id.
    pub(crate) fn obs_raw(&self) -> &[f64] {
        &self.obs
    }

    /// Raw per-gate branch observabilities, indexed by node id then pin.
    pub(crate) fn pin_obs_raw(&self) -> &[Vec<f64>] {
        &self.pin_obs
    }

    /// Estimated probability that one random pattern detects `fault`:
    /// excitation × observability. Exact on trees.
    ///
    /// `circuit` must be the circuit this analysis was computed for (needed
    /// to resolve branch drivers).
    pub fn detection_probability(&self, circuit: &Circuit, fault: Fault) -> f64 {
        match fault.site {
            FaultSite::Stem(v) => {
                let exc = if fault.stuck { self.c0(v) } else { self.c1(v) };
                exc * self.obs[v.index()]
            }
            FaultSite::Branch { gate, pin } => {
                let driver = circuit.fanins(gate)[pin as usize];
                let exc = if fault.stuck {
                    self.c0(driver)
                } else {
                    self.c1(driver)
                };
                exc * self.pin_obs[gate.index()][pin as usize]
            }
        }
    }
}

/// The 1-probability of a gate output given independent fanin
/// 1-probabilities.
pub(crate) fn gate_c1<I: Iterator<Item = f64>>(kind: GateKind, probs: I) -> f64 {
    match kind {
        GateKind::And => probs.product(),
        GateKind::Nand => 1.0 - probs.product::<f64>(),
        GateKind::Or => 1.0 - probs.map(|p| 1.0 - p).product::<f64>(),
        GateKind::Nor => probs.map(|p| 1.0 - p).product(),
        GateKind::Buf => probs.last().unwrap_or(0.0),
        GateKind::Not => 1.0 - probs.last().unwrap_or(0.0),
        GateKind::Xor => probs.fold(0.0, |acc, p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Xnor => 1.0 - probs.fold(0.0, |acc, p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Const0 | GateKind::Input => 0.0,
        GateKind::Const1 => 1.0,
    }
}

/// Per-pin propagation factors through a gate: the probability that the
/// remaining fanins hold non-controlling values. Computed with
/// prefix/suffix products to stay `O(arity)` without dividing by zero.
pub(crate) fn pin_factors(kind: GateKind, fanins: &[NodeId], c1: &[f64]) -> Vec<f64> {
    let k = fanins.len();
    let side: Vec<f64> = match kind {
        GateKind::And | GateKind::Nand => fanins.iter().map(|f| c1[f.index()]).collect(),
        GateKind::Or | GateKind::Nor => fanins.iter().map(|f| 1.0 - c1[f.index()]).collect(),
        GateKind::Buf | GateKind::Not | GateKind::Xor | GateKind::Xnor => {
            return vec![1.0; k];
        }
        _ => return vec![0.0; k],
    };
    let mut prefix = vec![1.0; k + 1];
    for i in 0..k {
        prefix[i + 1] = prefix[i] * side[i];
    }
    let mut suffix = vec![1.0; k + 1];
    for i in (0..k).rev() {
        suffix[i] = suffix[i + 1] * side[i];
    }
    (0..k).map(|i| prefix[i] * suffix[i + 1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::CircuitBuilder;
    use tpi_sim::{montecarlo, FaultUniverse};

    #[test]
    fn signal_probabilities_basic_gates() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(2, "x");
        let and = b.gate(GateKind::And, vec![xs[0], xs[1]], "and").unwrap();
        let nor = b.gate(GateKind::Nor, vec![xs[0], xs[1]], "nor").unwrap();
        let xor = b.gate(GateKind::Xor, vec![xs[0], xs[1]], "xor").unwrap();
        b.output(and);
        b.output(nor);
        b.output(xor);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        assert!((cop.c1(and) - 0.25).abs() < 1e-12);
        assert!((cop.c1(nor) - 0.25).abs() < 1e-12);
        assert!((cop.c1(xor) - 0.5).abs() < 1e-12);
        assert!((cop.c0(and) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_on_trees_vs_exhaustive_fault_sim() {
        // A mixed-kind tree; COP detection probabilities must equal the
        // exhaustive fault-simulation ground truth.
        let mut b = CircuitBuilder::new("tree");
        let xs = b.inputs(6, "x");
        let g1 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g1").unwrap();
        let g2 = b.gate(GateKind::Nor, vec![xs[2], xs[3]], "g2").unwrap();
        let g3 = b.gate(GateKind::Xor, vec![xs[4], xs[5]], "g3").unwrap();
        let g4 = b.gate(GateKind::Nand, vec![g1, g2], "g4").unwrap();
        let g5 = b.gate(GateKind::Or, vec![g4, g3], "g5").unwrap();
        b.output(g5);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let universe = FaultUniverse::full(&c).unwrap();
        let exact = montecarlo::exact_detection_probabilities(&c, universe.faults()).unwrap();
        for (i, &fault) in universe.faults().iter().enumerate() {
            let est = cop.detection_probability(&c, fault);
            assert!(
                (est - exact[i]).abs() < 1e-9,
                "fault {}: cop {est} vs exact {}",
                fault.describe(&c),
                exact[i]
            );
        }
    }

    #[test]
    fn observability_through_and_chain_decays() {
        let mut b = CircuitBuilder::new("chain");
        let mut prev = b.input("x0");
        for i in 1..=4 {
            let xi = b.input(format!("x{i}"));
            prev = b
                .gate(GateKind::And, vec![prev, xi], format!("g{i}"))
                .unwrap();
        }
        b.output(prev);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let x0 = c.inputs()[0];
        // x0 must pass 4 AND gates whose side inputs have c1 = 1/2, 1/2,
        // 1/2, 1/2 — but the side inputs of later gates are gate outputs:
        // side c1s are x1..x4? No: side of g1 is x1 (0.5); side of g2 is x2
        // (0.5)… all sides are fresh inputs.  obs(x0) = 0.5^4.
        assert!((cop.observability(x0) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn branch_observability_differs_per_pin() {
        // stem a feeds AND(a, x) and OR(a, y): branch through the AND needs
        // x=1 (0.5), through the OR needs y=0 (0.5), both outputs observed.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, vec![a, x], "g1").unwrap();
        let g2 = b.gate(GateKind::Or, vec![a, y], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        assert!((cop.branch_observability(g1, 0) - 0.5).abs() < 1e-12);
        assert!((cop.branch_observability(g1, 1) - 0.5).abs() < 1e-12);
        assert!((cop.observability(a) - 0.5).abs() < 1e-12);
        // Branch fault SA1 on a→g1: excitation c0(a)=0.5, obs 0.5.
        let f = Fault {
            site: FaultSite::Branch { gate: g1, pin: 0 },
            stuck: true,
        };
        assert!((cop.detection_probability(&c, f) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn custom_input_probabilities() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![a, x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let mut probs = HashMap::new();
        probs.insert(a, 1.0);
        let cop = CopAnalysis::with_input_probs(&c, &probs).unwrap();
        assert!((cop.c1(g) - 0.5).abs() < 1e-12);
        // x's observability is now 1 (a always non-controlling).
        assert!((cop.observability(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let mut probs = HashMap::new();
        probs.insert(a, 1.5);
        assert!(CopAnalysis::with_input_probs(&c, &probs).is_err());
        let mut probs2 = HashMap::new();
        probs2.insert(g, 0.5);
        assert!(CopAnalysis::with_input_probs(&c, &probs2).is_err());
    }

    #[test]
    fn xor_propagates_transparently() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(3, "x");
        let root = b.balanced_tree(GateKind::Xor, &xs, "p").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        for &x in c.inputs() {
            assert!((cop.observability(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unobserved_logic_has_zero_observability() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let dead = b.gate(GateKind::Not, vec![a], "dead").unwrap();
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        assert_eq!(cop.observability(dead), 0.0);
        assert_eq!(cop.detection_probability(&c, Fault::stem_sa0(dead)), 0.0);
    }

    #[test]
    fn wide_gate_pin_factors_with_zero_side() {
        // One side input is constant 0: other pins of the AND have factor 0
        // but the constant's own pin keeps a nonzero factor.
        let mut b = CircuitBuilder::new("c");
        let zero = b.constant(false, "zero").unwrap();
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate(GateKind::And, vec![zero, x, y], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        assert_eq!(cop.observability(x), 0.0);
        assert!((cop.branch_observability(g, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diamond_approximation_is_bounded() {
        // Reconvergence: y = AND(a, NOT(a)) ≡ 0. COP is approximate but
        // must stay within [0, 1].
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let na = b.gate(GateKind::Not, vec![a], "na").unwrap();
        let y = b.gate(GateKind::And, vec![a, na], "y").unwrap();
        b.output(y);
        let c = b.finish().unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        assert!((cop.c1(y) - 0.25).abs() < 1e-12); // approximation, truly 0
        for id in c.node_ids() {
            assert!(cop.observability(id) >= 0.0 && cop.observability(id) <= 1.0);
            assert!(cop.c1(id) >= 0.0 && cop.c1(id) <= 1.0);
        }
    }
}
