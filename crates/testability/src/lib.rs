//! Testability measures for random-pattern test: COP, SCOAP, detection
//! probabilities and test-length arithmetic.
//!
//! The dynamic-programming test point inserter in `tpi-core` reasons about
//! *detection probabilities*: the chance that one random pattern both
//! excites a stuck-at fault and propagates its effect to an observed
//! output. This crate provides:
//!
//! * [`CopAnalysis`] — COP-style signal probabilities and observabilities.
//!   **Exact on fanout-free (tree) circuits** (signals in disjoint subtrees
//!   are independent); the usual first-order approximation elsewhere;
//! * [`ScoapAnalysis`] — classic SCOAP integer controllability /
//!   observability, for period-appropriate comparisons;
//! * [`detect`] — per-fault detection probabilities and random-pattern-
//!   resistance screens built on COP;
//! * [`testlen`] — escape probability ↔ test length ↔ detection-threshold
//!   conversions;
//! * [`profile`] — whole-circuit testability reports for benchmark tables.
//!
//! # Example
//!
//! ```
//! use tpi_netlist::{CircuitBuilder, GateKind};
//! use tpi_testability::CopAnalysis;
//!
//! # fn main() -> Result<(), tpi_netlist::NetlistError> {
//! let mut b = CircuitBuilder::new("and4");
//! let xs = b.inputs(4, "x");
//! let root = b.balanced_tree(GateKind::And, &xs, "g")?;
//! b.output(root);
//! let c = b.finish()?;
//!
//! let cop = CopAnalysis::new(&c)?;
//! assert!((cop.c1(root) - 0.0625).abs() < 1e-12); // 2^-4
//! assert_eq!(cop.observability(root), 1.0);       // it is the output
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cop;
pub mod cop_delta;
pub mod detect;
pub mod profile;
mod scoap;
mod stafan;
pub mod testlen;

pub use cop::CopAnalysis;
pub use cop_delta::CopProbe;
pub use scoap::ScoapAnalysis;
pub use stafan::StafanAnalysis;
