//! Incremental COP recompute for test-point candidate probing.
//!
//! The greedy optimizer asks, for every `(node, kind)` candidate each
//! round, "what would the COP detection probabilities be if this one test
//! point were added?". Answering by `apply_plan` + full
//! [`CopAnalysis`] costs O(n) per candidate. A test point, however, only
//! perturbs its *cone*:
//!
//! * controllabilities (`c1`) change only strictly downstream of the
//!   candidate line (forward through its output cone), because every
//!   other node's fanin values are untouched;
//! * observabilities (`obs` / `pin_obs`) change only on nodes whose
//!   factor inputs changed or that lie upstream of a changed branch —
//!   backward through the fanin support of the changed region.
//!
//! [`CopProbe`] exploits this: it keeps scratch copies of the base
//! analysis and, per candidate, runs a bitwise-pruned forward worklist
//! (stop as soon as a recomputed `c1` is bit-identical to the stored one)
//! followed by a level-ordered backward worklist, then rolls every touched
//! entry back. The inserted auxiliary nodes (`tp_r*`, `tp_cp*`) are
//! evaluated *virtually* — the modified circuit is never materialised.
//!
//! The recomputation calls the same [`gate_c1`]/[`pin_factors`] kernels as
//! the full analysis on operand lists that are element-for-element
//! identical to what the full pass would see, and `obs` is a max over the
//! same contribution multiset (max over non-negative floats is
//! order-insensitive), so every probed probability is **bit-identical** to
//! `CopAnalysis::with_input_probs(apply_test_point(circuit, tp), …)` —
//! the property the `--candidate-eval` A/B oracle tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tpi_netlist::{Circuit, GateKind, NetlistError, NodeId, TestPoint, TestPointKind, Topology};

use crate::cop::{gate_c1, pin_factors};
use crate::CopAnalysis;

/// Incremental per-candidate COP evaluation over a fixed base circuit.
///
/// Construct once per committed-plan state (the analysis snapshot), then
/// call [`probe`](CopProbe::probe) for each candidate test point. Between
/// calls the scratch state always equals the base analysis.
#[derive(Clone, Debug)]
pub struct CopProbe<'a> {
    circuit: &'a Circuit,
    topo: &'a Topology,
    /// `(stem node, stuck-at value)` per target, in problem target order.
    targets: Vec<(NodeId, bool)>,
    // Scratch state, equal to the base analysis between probes.
    c1: Vec<f64>,
    obs: Vec<f64>,
    pin_obs: Vec<Vec<f64>>,
    // Worklist membership markers (index n is the virtual control gate).
    queued_fwd: Vec<bool>,
    queued_bwd: Vec<bool>,
}

impl<'a> CopProbe<'a> {
    /// Build a probe over `circuit` with its `topo` and base `cop`
    /// analysis. `targets` are the stem-fault sites whose detection
    /// probabilities each probe reports, in order.
    pub fn new(
        circuit: &'a Circuit,
        topo: &'a Topology,
        cop: &CopAnalysis,
        targets: &[(NodeId, bool)],
    ) -> CopProbe<'a> {
        let n = circuit.node_count();
        CopProbe {
            circuit,
            topo,
            targets: targets.to_vec(),
            c1: cop.c1_raw().to_vec(),
            obs: cop.obs_raw().to_vec(),
            pin_obs: cop.pin_obs_raw().to_vec(),
            queued_fwd: vec![false; n],
            queued_bwd: vec![false; n + 1],
        }
    }

    /// Detection probabilities of the targets on the *unmodified* base
    /// circuit (bit-identical to the base analysis).
    pub fn base_probabilities(&self) -> Vec<f64> {
        self.target_probabilities()
    }

    /// Per-target detection probabilities as if `tp` were applied to the
    /// base circuit — bit-identical to a full re-analysis of the modified
    /// circuit, at O(cone) instead of O(n) cost.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoSuchNode`] for an out-of-range node and
    /// [`NetlistError::InvalidTransform`] for a control/full point on a
    /// dangling line — the same failures `apply_test_point` reports.
    pub fn probe(&mut self, tp: TestPoint) -> Result<Vec<f64>, NetlistError> {
        let v = tp.node;
        let n = self.circuit.node_count();
        if v.index() >= n {
            return Err(NetlistError::NoSuchNode { index: v.index() });
        }
        let is_out = self.circuit.is_output(v);
        match tp.kind {
            TestPointKind::Observe => {
                if is_out {
                    // `add_output` is idempotent: the modified circuit is
                    // the base circuit, bit for bit.
                    return Ok(self.target_probabilities());
                }
            }
            _ => {
                if self.topo.fanouts(v).is_empty() && !is_out {
                    return Err(NetlistError::InvalidTransform {
                        message: format!(
                            "control point at dangling line `{}`",
                            self.circuit.node_name(v)
                        ),
                    });
                }
            }
        }

        let orig_c1_v = self.c1[v.index()];
        // The inserted control gate (`tp_cp*`) for CP-AND/CP-OR, and the
        // value the candidate line's old readers see in the modified
        // circuit: the control gate's output, the fresh cut input (0.5),
        // or — for observation points — the line itself, unchanged.
        let (cp_kind, reader_val) = match tp.kind {
            TestPointKind::Observe => (None, None),
            TestPointKind::Full => (None, Some(0.5)),
            TestPointKind::ControlAnd => {
                let k = GateKind::And;
                (Some(k), Some(gate_c1(k, [orig_c1_v, 0.5].into_iter())))
            }
            TestPointKind::ControlOr => {
                let k = GateKind::Or;
                (Some(k), Some(gate_c1(k, [orig_c1_v, 0.5].into_iter())))
            }
        };

        let mut undo_c1: Vec<(usize, f64)> = Vec::new();
        let mut undo_obs: Vec<(usize, f64)> = Vec::new();
        let mut undo_pin: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut fwd_touched: Vec<usize> = Vec::new();
        let mut bwd_touched: Vec<usize> = Vec::new();

        // ---- forward: controllabilities through the output cone ----
        //
        // Substituting the reader value at v's own slot makes every
        // downstream recompute read the modified-circuit operand without
        // per-pin special cases; v's own (unchanged) c1 is restored before
        // the target scan.
        if let Some(val) = reader_val {
            self.c1[v.index()] = val;
        }
        let mut changed: Vec<usize> = Vec::new();
        if reader_val.is_some() {
            let mut fwd: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
            for fo in self.topo.fanouts(v) {
                let gi = fo.gate.index();
                if !self.queued_fwd[gi] {
                    self.queued_fwd[gi] = true;
                    fwd_touched.push(gi);
                    fwd.push(Reverse((self.topo.level(fo.gate), gi)));
                }
            }
            while let Some(Reverse((_, ui))) = fwd.pop() {
                let u = NodeId::from_index(ui);
                let val = gate_c1(
                    self.circuit.kind(u),
                    self.circuit.fanins(u).iter().map(|f| self.c1[f.index()]),
                );
                if val.to_bits() != self.c1[ui].to_bits() {
                    undo_c1.push((ui, self.c1[ui]));
                    self.c1[ui] = val;
                    changed.push(ui);
                    for fo in self.topo.fanouts(u) {
                        let gi = fo.gate.index();
                        if !self.queued_fwd[gi] {
                            self.queued_fwd[gi] = true;
                            fwd_touched.push(gi);
                            fwd.push(Reverse((self.topo.level(fo.gate), gi)));
                        }
                    }
                }
            }
        }

        // ---- backward: observabilities through the fanin support ----
        //
        // Max-heap on (level, Reverse(id)): strictly level-descending, so
        // every consumer's branch observability is final before its fanin
        // is popped. The virtual control gate uses marker index n with
        // pseudo-level level(v)+1; its id outranks every real node, so
        // same-level readers (its consumers) pop first.
        let mut bwd: BinaryHeap<(u32, Reverse<usize>)> = BinaryHeap::new();
        let enqueue = |i: usize,
                       lvl: u32,
                       heap: &mut BinaryHeap<(u32, Reverse<usize>)>,
                       queued: &mut Vec<bool>,
                       touched: &mut Vec<usize>| {
            if !queued[i] {
                queued[i] = true;
                touched.push(i);
                heap.push((lvl, Reverse(i)));
            }
        };
        if reader_val.is_some() {
            for fo in self.topo.fanouts(v) {
                enqueue(
                    fo.gate.index(),
                    self.topo.level(fo.gate),
                    &mut bwd,
                    &mut self.queued_bwd,
                    &mut bwd_touched,
                );
            }
        }
        for &ci in &changed {
            for fo in self.topo.fanouts(NodeId::from_index(ci)) {
                enqueue(
                    fo.gate.index(),
                    self.topo.level(fo.gate),
                    &mut bwd,
                    &mut self.queued_bwd,
                    &mut bwd_touched,
                );
            }
        }
        if cp_kind.is_some() {
            enqueue(
                n,
                self.topo.level(v) + 1,
                &mut bwd,
                &mut self.queued_bwd,
                &mut bwd_touched,
            );
        }
        enqueue(
            v.index(),
            self.topo.level(v),
            &mut bwd,
            &mut self.queued_bwd,
            &mut bwd_touched,
        );

        // Branch observabilities of the virtual control gate's two pins
        // (the tapped line, the fresh control input), once popped.
        let mut cp_row: [f64; 2] = [0.0, 0.0];
        while let Some((_, Reverse(i))) = bwd.pop() {
            if i == n {
                // Virtual control gate: observed iff the tapped line's PO
                // tap moved onto it; consumers are the line's old readers.
                let mut o = if is_out { 1.0 } else { 0.0 };
                for fo in self.topo.fanouts(v) {
                    let c = self.pin_obs[fo.gate.index()][fo.pin as usize];
                    if c > o {
                        o = c;
                    }
                }
                let kind = cp_kind.expect("virtual gate only queued for control points");
                let fanins = [NodeId::from_index(0), NodeId::from_index(1)];
                let f = pin_factors(kind, &fanins, &[orig_c1_v, 0.5]);
                cp_row = [o * f[0], o * f[1]];
                continue;
            }
            let u = NodeId::from_index(i);
            let is_out_m = if u == v {
                // Observe/Full add a PO tap; a control point moves any
                // existing tap onto the inserted gate.
                cp_kind.is_none()
            } else {
                self.circuit.is_output(u)
            };
            let mut o = if is_out_m { 1.0 } else { 0.0 };
            if u == v && cp_kind.is_some() {
                // Sole reader in the modified circuit: the control gate.
                if cp_row[0] > o {
                    o = cp_row[0];
                }
            } else if u == v && tp.kind == TestPointKind::Full {
                // Cut: old readers now read the fresh input; v only feeds
                // its new PO tap.
            } else {
                for fo in self.topo.fanouts(u) {
                    let c = self.pin_obs[fo.gate.index()][fo.pin as usize];
                    if c > o {
                        o = c;
                    }
                }
            }
            let kind = self.circuit.kind(u);
            if o.to_bits() != self.obs[i].to_bits() {
                undo_obs.push((i, self.obs[i]));
                self.obs[i] = o;
            }
            if kind.is_source() {
                continue;
            }
            let fanins = self.circuit.fanins(u);
            let factors = pin_factors(kind, fanins, &self.c1);
            let mut row_changed = false;
            for (p, (&fanin, factor)) in fanins.iter().zip(&factors).enumerate() {
                let branch = o * factor;
                if branch.to_bits() != self.pin_obs[i][p].to_bits() {
                    row_changed = true;
                    // Pins that read v read the inserted node in the
                    // modified circuit; their branch change feeds the
                    // virtual gate (already queued), not v.
                    if !(reader_val.is_some() && fanin == v) {
                        enqueue(
                            fanin.index(),
                            self.topo.level(fanin),
                            &mut bwd,
                            &mut self.queued_bwd,
                            &mut bwd_touched,
                        );
                    }
                }
            }
            if row_changed {
                let new_row: Vec<f64> = factors.iter().map(|f| o * f).collect();
                undo_pin.push((i, std::mem::replace(&mut self.pin_obs[i], new_row)));
            }
        }

        // v's own controllability is unchanged in the modified circuit —
        // only its readers were re-pointed. Restore before the scan.
        self.c1[v.index()] = orig_c1_v;
        let probabilities = self.target_probabilities();

        // ---- roll back to the base analysis ----
        for (i, val) in undo_c1 {
            self.c1[i] = val;
        }
        for (i, val) in undo_obs {
            self.obs[i] = val;
        }
        for (i, row) in undo_pin {
            self.pin_obs[i] = row;
        }
        for i in fwd_touched {
            self.queued_fwd[i] = false;
        }
        for i in bwd_touched {
            self.queued_bwd[i] = false;
        }
        Ok(probabilities)
    }

    fn target_probabilities(&self) -> Vec<f64> {
        self.targets
            .iter()
            .map(|&(t, stuck)| {
                let exc = if stuck {
                    1.0 - self.c1[t.index()]
                } else {
                    self.c1[t.index()]
                };
                exc * self.obs[t.index()]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tpi_netlist::transform::{apply_plan, apply_test_point};
    use tpi_netlist::CircuitBuilder;
    use tpi_sim::{Fault, FaultSite};

    /// A mixed-kind reconvergent circuit exercising every gate family.
    fn recon() -> Circuit {
        let mut b = CircuitBuilder::new("recon");
        let xs = b.inputs(6, "x");
        let s = b.gate(GateKind::And, vec![xs[0], xs[1]], "s").unwrap();
        let g1 = b.gate(GateKind::Nand, vec![s, xs[2]], "g1").unwrap();
        let g2 = b.gate(GateKind::Nor, vec![s, xs[3]], "g2").unwrap();
        let g3 = b.gate(GateKind::Xor, vec![g1, g2], "g3").unwrap();
        let g4 = b.gate(GateKind::Or, vec![g2, xs[4]], "g4").unwrap();
        let g5 = b.gate(GateKind::Not, vec![g3], "g5").unwrap();
        let g6 = b.gate(GateKind::And, vec![g5, g4, xs[5]], "g6").unwrap();
        b.output(g6);
        b.output(g1);
        b.finish().unwrap()
    }

    fn all_targets(c: &Circuit) -> Vec<(NodeId, bool)> {
        c.node_ids()
            .flat_map(|id| [(id, false), (id, true)])
            .collect()
    }

    fn full_reference(c: &Circuit, tp: TestPoint, targets: &[(NodeId, bool)]) -> Vec<f64> {
        let mut m = c.clone();
        apply_test_point(&mut m, tp).unwrap();
        let cop = CopAnalysis::with_input_probs(&m, &HashMap::new()).unwrap();
        targets
            .iter()
            .map(|&(node, stuck)| {
                cop.detection_probability(
                    &m,
                    Fault {
                        site: FaultSite::Stem(node),
                        stuck,
                    },
                )
            })
            .collect()
    }

    fn assert_probe_matches(c: &Circuit) {
        let topo = Topology::of(c).unwrap();
        let cop = CopAnalysis::new(c).unwrap();
        let targets = all_targets(c);
        let mut probe = CopProbe::new(c, &topo, &cop, &targets);
        for id in c.node_ids() {
            for kind in [
                TestPointKind::Observe,
                TestPointKind::ControlAnd,
                TestPointKind::ControlOr,
                TestPointKind::Full,
            ] {
                let tp = TestPoint::new(id, kind);
                let applies =
                    kind == TestPointKind::Observe || topo.fanout_count(id) > 0 || c.is_output(id);
                let got = probe.probe(tp);
                if !applies {
                    assert!(got.is_err(), "{tp} should be rejected");
                    continue;
                }
                let got = got.unwrap();
                let want = full_reference(c, tp, &targets);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{tp}, target {i}: probe {g} vs full {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_bit_identical_to_full_recompute() {
        assert_probe_matches(&recon());
    }

    #[test]
    fn probe_bit_identical_on_modified_circuit() {
        // Probe on a circuit that already carries committed test points —
        // the state after a few greedy rounds, including stacked points.
        let base = recon();
        let s = base.find_node("s").unwrap();
        let g2 = base.find_node("g2").unwrap();
        let (cur, _) =
            apply_plan(&base, &[TestPoint::control_or(s), TestPoint::observe(g2)]).unwrap();
        assert_probe_matches(&cur);
    }

    #[test]
    fn scratch_state_rolls_back_between_probes() {
        let c = recon();
        let topo = Topology::of(&c).unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let targets = all_targets(&c);
        let mut probe = CopProbe::new(&c, &topo, &cop, &targets);
        let s = c.find_node("s").unwrap();
        let first = probe.probe(TestPoint::full(s)).unwrap();
        // An unrelated probe in between must not perturb the next answer.
        let g4 = c.find_node("g4").unwrap();
        probe.probe(TestPoint::control_and(g4)).unwrap();
        let again = probe.probe(TestPoint::full(s)).unwrap();
        assert_eq!(first, again);
        let base = probe.base_probabilities();
        let fresh = CopProbe::new(&c, &topo, &cop, &targets).base_probabilities();
        assert_eq!(base, fresh);
    }

    #[test]
    fn observe_at_existing_output_is_identity() {
        let c = recon();
        let topo = Topology::of(&c).unwrap();
        let cop = CopAnalysis::new(&c).unwrap();
        let targets = all_targets(&c);
        let mut probe = CopProbe::new(&c, &topo, &cop, &targets);
        let g6 = c.find_node("g6").unwrap();
        let got = probe.probe(TestPoint::observe(g6)).unwrap();
        assert_eq!(got, probe.base_probabilities());
    }
}
