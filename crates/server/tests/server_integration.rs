//! Integration tests for the concurrent multi-session server: admission
//! control (`too_many_sessions`, bounded accept queue, `overloaded`),
//! slow-client isolation, graceful drain with metrics persistence, and
//! cross-session shared-memo reuse with bit-identical plans.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tpi_engine::json::Json;
use tpi_gen::rpr::and_tree;
use tpi_netlist::bench_format::to_bench;
use tpi_server::{ListenAddr, Server, ServerConfig, ServerReport};

static NEXT_SOCKET: AtomicUsize = AtomicUsize::new(0);

/// A fresh unix-socket path under the temp dir, unique per test.
fn socket_path(tag: &str) -> PathBuf {
    let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tpi-serve-{}-{tag}-{n}.sock", std::process::id()))
}

/// Bind + run a server on a background thread; returns the bound
/// address, the shutdown flag and the join handle yielding the report.
fn start(
    addr: &ListenAddr,
    config: ServerConfig,
) -> (
    ListenAddr,
    Arc<std::sync::atomic::AtomicBool>,
    thread::JoinHandle<std::io::Result<ServerReport>>,
) {
    let server = Server::bind(addr, config).expect("bind");
    let bound = server.local_addr();
    let shutdown = server.shutdown_handle();
    let handle = thread::spawn(move || server.run());
    (bound, shutdown, handle)
}

fn stop(
    shutdown: &std::sync::atomic::AtomicBool,
    handle: thread::JoinHandle<std::io::Result<ServerReport>>,
) -> ServerReport {
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread").expect("server run")
}

/// One line-JSON client over either transport.
struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    fn connect(addr: &ListenAddr) -> Client {
        // The acceptor polls every 10ms; a freshly started server may
        // not be listening on the very first attempt (unix sockets bind
        // in `Server::bind`, but TCP tests race the run loop).
        match addr {
            ListenAddr::Unix(path) => {
                let stream = retry(|| UnixStream::connect(path));
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                Client {
                    reader: BufReader::new(Box::new(stream.try_clone().unwrap())),
                    writer: Box::new(stream),
                }
            }
            ListenAddr::Tcp(spec) => {
                let stream = retry(|| TcpStream::connect(spec));
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                Client {
                    reader: BufReader::new(Box::new(stream.try_clone().unwrap())),
                    writer: Box::new(stream),
                }
            }
        }
    }

    /// Send one request line and read one response line.
    fn call(&mut self, request: &Json) -> Json {
        self.send_raw(&request.to_string())
    }

    fn send_raw(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        self.read_line()
    }

    fn read_line(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-dialogue");
        Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    /// Fire `quit` (no response) and drop the connection.
    fn quit(mut self) {
        let _ = writeln!(self.writer, "{}", Json::obj([("cmd", Json::from("quit"))]));
        let _ = self.writer.flush();
    }
}

fn retry<T, E: std::fmt::Debug>(mut f: impl FnMut() -> Result<T, E>) -> T {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match f() {
            Ok(v) => return v,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect timed out: {e:?}");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// A random-pattern-resistant circuit: deep enough that 256 patterns
/// leave faults undetected, so `optimize` always reaches the region DP
/// (and therefore the memo).
fn bench_circuit() -> String {
    to_bench(&and_tree(16, 2).unwrap())
}

fn load_request(bench: &str) -> Json {
    Json::obj([
        ("cmd", Json::from("load")),
        ("bench", Json::from(bench)),
        ("patterns", Json::from(256u64)),
    ])
}

fn optimize_request() -> Json {
    Json::obj([
        ("cmd", Json::from("optimize")),
        ("threshold_log2", Json::from(-10.0)),
        ("max_rounds", Json::from(3u64)),
    ])
}

fn assert_ok(response: &Json) {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok response, got {response}"
    );
}

fn code_of(response: &Json) -> &str {
    response.get("code").and_then(Json::as_str).unwrap_or("")
}

/// Render an optimize response's points list for bit-exact comparison.
fn points_of(response: &Json) -> Vec<(String, String)> {
    response
        .get("points")
        .and_then(Json::as_arr)
        .expect("points array")
        .iter()
        .map(|p| {
            (
                p.get("node").and_then(Json::as_str).unwrap().to_string(),
                p.get("kind").and_then(Json::as_str).unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn two_concurrent_sessions_serve_independently() {
    let (addr, shutdown, handle) = start(
        &ListenAddr::Unix(socket_path("pair")),
        ServerConfig::default(),
    );
    let bench = bench_circuit();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let bench = bench.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let hello = client.call(&Json::obj([
                    ("cmd", Json::from("hello")),
                    ("session", Json::from(format!("worker-{i}"))),
                ]));
                assert_ok(&hello);
                assert_eq!(hello.get("server").and_then(Json::as_bool), Some(true));
                assert_ok(&client.call(&load_request(&bench)));
                let optimized = client.call(&optimize_request());
                assert_ok(&optimized);
                let points = points_of(&optimized);
                client.quit();
                points
            })
        })
        .collect();
    let plans: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // Same circuit, same seed, same config — identical plans regardless
    // of which session computed the region solutions first.
    assert_eq!(plans[0], plans[1]);
    let report = stop(&shutdown, handle);
    assert_eq!(report.sessions_served, 2);
    assert_eq!(report.sessions_rejected, 0);
}

#[test]
fn tcp_transport_serves_the_same_protocol() {
    let (addr, shutdown, handle) = start(
        &ListenAddr::Tcp("127.0.0.1:0".to_string()),
        ServerConfig::default(),
    );
    let mut client = Client::connect(&addr);
    assert_ok(&client.call(&load_request(&bench_circuit())));
    let coverage = client.call(&Json::obj([("cmd", Json::from("coverage"))]));
    assert_ok(&coverage);
    client.quit();
    let report = stop(&shutdown, handle);
    assert_eq!(report.sessions_served, 1);
}

#[test]
fn over_capacity_connection_is_rejected_with_structured_error() {
    let config = ServerConfig {
        max_sessions: 1,
        accept_queue: 0,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(&ListenAddr::Unix(socket_path("reject")), config);
    let mut first = Client::connect(&addr);
    assert_ok(&first.call(&Json::obj([("cmd", Json::from("hello"))])));

    // The slot and the queue are both taken/empty: this one is turned
    // away immediately with a machine-readable code.
    let mut second = Client::connect(&addr);
    let rejection = second.read_line();
    assert_eq!(rejection.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(code_of(&rejection), "too_many_sessions");

    first.quit();
    let report = stop(&shutdown, handle);
    assert_eq!(report.sessions_rejected, 1);
}

#[test]
fn parked_connection_is_served_when_a_slot_frees() {
    let config = ServerConfig {
        max_sessions: 1,
        accept_queue: 1,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(&ListenAddr::Unix(socket_path("park")), config);
    let mut first = Client::connect(&addr);
    assert_ok(&first.call(&Json::obj([("cmd", Json::from("hello"))])));

    // Second connection parks in the accept queue (no response yet),
    // then gets a session as soon as the first quits.
    let waiter = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr);
            let hello = client.call(&Json::obj([("cmd", Json::from("hello"))]));
            client.quit();
            hello
        })
    };
    thread::sleep(Duration::from_millis(200)); // let it reach the queue
    first.quit();
    let hello = waiter.join().unwrap();
    assert_ok(&hello);

    let report = stop(&shutdown, handle);
    assert_eq!(report.sessions_served, 2);
    assert_eq!(report.sessions_rejected, 0);
}

#[test]
fn inflight_gate_answers_overloaded_without_blocking() {
    let config = ServerConfig {
        max_inflight: 1,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(&ListenAddr::Unix(socket_path("gate")), config);

    // Session A holds the only in-flight slot for a while.
    let sleeper = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr);
            let done = client.call(&Json::obj([
                ("cmd", Json::from("selftest-sleep")),
                ("ms", Json::from(1_500u64)),
            ]));
            assert_ok(&done);
            client.quit();
        })
    };
    thread::sleep(Duration::from_millis(300)); // let the sleep start

    // Session B is answered immediately — a structured `overloaded`
    // line, not a stall behind A's request.
    let mut other = Client::connect(&addr);
    let begin = Instant::now();
    let busy = other.call(&Json::obj([("cmd", Json::from("coverage"))]));
    assert!(
        begin.elapsed() < Duration::from_millis(900),
        "overloaded response should not wait for the sleeping request"
    );
    assert_eq!(busy.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(code_of(&busy), "overloaded");

    sleeper.join().unwrap();
    other.quit();
    let report = stop(&shutdown, handle);
    assert!(report.overloaded >= 1, "report: {report:?}");
}

#[test]
fn slow_client_does_not_stall_other_sessions() {
    let (addr, shutdown, handle) = start(
        &ListenAddr::Unix(socket_path("slow")),
        ServerConfig::default(),
    );

    // A connects and then trickles half a request without a newline —
    // the server must keep polling it without dedicating any shared
    // resource to the partial line.
    let ListenAddr::Unix(path) = &addr else {
        unreachable!()
    };
    let mut slow = UnixStream::connect(path).unwrap();
    slow.write_all(b"{\"cmd\":\"cover").unwrap();
    slow.flush().unwrap();

    // B gets full service meanwhile.
    let mut fast = Client::connect(&addr);
    let begin = Instant::now();
    assert_ok(&fast.call(&load_request(&bench_circuit())));
    assert_ok(&fast.call(&Json::obj([("cmd", Json::from("coverage"))])));
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "fast client stalled behind a slow one"
    );
    fast.quit();

    // The slow client's line, once finished, still gets served.
    slow.write_all(b"age\"}\n").unwrap();
    slow.flush().unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(slow);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    // No circuit loaded on this session — a structured error, but an
    // answer nonetheless.
    assert_eq!(code_of(&response), "no_session");

    drop(reader);
    let _ = stop(&shutdown, handle);
}

#[test]
fn server_scope_shutdown_drains_and_persists_metrics() {
    let metrics_path = std::env::temp_dir().join(format!(
        "tpi-serve-metrics-{}-{}.json",
        std::process::id(),
        NEXT_SOCKET.fetch_add(1, Ordering::Relaxed)
    ));
    let config = ServerConfig {
        metrics_out: Some(metrics_path.clone()),
        ..ServerConfig::default()
    };
    let (addr, _shutdown, handle) = start(&ListenAddr::Unix(socket_path("drain")), config);
    let mut client = Client::connect(&addr);
    assert_ok(&client.call(&load_request(&bench_circuit())));
    assert_ok(&client.call(&Json::obj([("cmd", Json::from("coverage"))])));
    let ack = client.call(&Json::obj([
        ("cmd", Json::from("shutdown")),
        ("scope", Json::from("server")),
    ]));
    assert_ok(&ack);
    assert_eq!(ack.get("scope").and_then(Json::as_str), Some("server"));

    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.sessions_served, 1);

    let snapshot = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let json = Json::parse(&snapshot).expect("metrics file is JSON");
    assert!(
        json.get("serve.requests").is_some(),
        "snapshot should carry serve counters: {snapshot}"
    );
    let _ = std::fs::remove_file(&metrics_path);
}

#[test]
fn shared_memo_replays_across_sessions_with_identical_plans() {
    let (addr, shutdown, handle) = start(
        &ListenAddr::Unix(socket_path("memo")),
        ServerConfig::default(),
    );
    let bench = bench_circuit();

    let run_one = |addr: &ListenAddr| {
        let mut client = Client::connect(addr);
        assert_ok(&client.call(&load_request(&bench)));
        let optimized = client.call(&optimize_request());
        assert_ok(&optimized);
        let metrics = client.call(&Json::obj([("cmd", Json::from("metrics"))]));
        // `metrics` responses nest the snapshot: each metric renders as
        // `"name": {"type":"counter","value":N}`.
        let hits = metrics
            .get("metrics")
            .and_then(|m| m.get("engine.shared_memo.hits"))
            .and_then(|c| c.get("value"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let points = points_of(&optimized);
        client.quit();
        (points, hits)
    };

    let (plan_a, hits_after_a) = run_one(&addr);
    let (plan_b, hits_after_b) = run_one(&addr);

    // Session B re-solved nothing it could replay: strictly more shared
    // hits than after session A, and the exact same plan.
    assert_eq!(plan_a, plan_b);
    assert!(
        hits_after_b > hits_after_a,
        "expected session B to replay shared DP solutions \
         (hits after A: {hits_after_a}, after B: {hits_after_b})"
    );

    let report = stop(&shutdown, handle);
    assert_eq!(report.shared_memo_hits, hits_after_b);
}

#[test]
fn isolated_memo_config_shares_nothing() {
    let config = ServerConfig {
        shared_memo: None,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(&ListenAddr::Unix(socket_path("isolated")), config);
    let bench = bench_circuit();
    for _ in 0..2 {
        let mut client = Client::connect(&addr);
        let hello = client.call(&Json::obj([("cmd", Json::from("hello"))]));
        assert_eq!(
            hello.get("shared_memo").and_then(Json::as_bool),
            Some(false)
        );
        assert_ok(&client.call(&load_request(&bench)));
        assert_ok(&client.call(&optimize_request()));
        client.quit();
    }
    let report = stop(&shutdown, handle);
    assert_eq!(report.shared_memo_hits, 0);
}
