//! Admission control primitives: the global in-flight request gate.
//!
//! Sessions are bounded at accept time (`max_sessions` + the bounded
//! accept queue, see `lib.rs`); *requests* are bounded here. The gate is
//! strictly non-blocking — a request that cannot get a slot is answered
//! with a structured `overloaded` error immediately, so backpressure is
//! visible to clients instead of silently queueing work, and no session
//! thread ever waits on another session's requests.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Bounds the number of requests executing concurrently across all
/// sessions. `try_acquire`/`release` pairs wrap each request dispatch.
#[derive(Debug)]
pub(crate) struct InflightGate {
    cap: usize,
    active: AtomicUsize,
}

impl InflightGate {
    pub(crate) fn new(cap: usize) -> InflightGate {
        InflightGate {
            cap: cap.max(1),
            active: AtomicUsize::new(0),
        }
    }

    /// Take a slot if one is free; never blocks.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.cap {
                return false;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_concurrent_holders() {
        let gate = InflightGate::new(2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire());
        gate.release();
        assert!(gate.try_acquire());
    }

    #[test]
    fn gate_cap_is_at_least_one() {
        let gate = InflightGate::new(0);
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire());
    }

    #[test]
    fn gate_is_race_free() {
        let gate = std::sync::Arc::new(InflightGate::new(3));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = gate.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if gate.try_acquire() {
                            let held = gate.active.load(Ordering::Relaxed);
                            peak.fetch_max(held, Ordering::Relaxed);
                            gate.release();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 3);
    }
}
