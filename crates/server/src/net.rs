//! Transport plumbing: one listener/stream abstraction over unix-domain
//! and TCP sockets, plus a line reader that survives read timeouts.
//!
//! The server polls — nonblocking accept, short read timeouts — instead
//! of blocking, so every loop can notice the shutdown flag within one
//! tick. [`LineReader`] owns the reassembly of `\n`-delimited requests
//! across those timeouts: a `WouldBlock`/`TimedOut` read keeps the bytes
//! accumulated so far and simply reports [`Polled::Idle`], so a client
//! trickling a request byte-by-byte can never corrupt framing.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens: a unix-domain socket path or a TCP address.
///
/// Rendered/parsed as `unix:<path>` (or any string containing `/`) vs.
/// `host:port` (optionally `tcp:host:port`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this address string (e.g. `127.0.0.1:7878`).
    Tcp(String),
}

impl ListenAddr {
    /// Parse a `--listen` argument. `unix:PATH` and anything containing
    /// a `/` are unix-socket paths; `tcp:HOST:PORT` and bare `HOST:PORT`
    /// are TCP.
    pub fn parse(addr: &str) -> ListenAddr {
        if let Some(path) = addr.strip_prefix("unix:") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            ListenAddr::Tcp(hostport.to_string())
        } else if addr.contains('/') {
            ListenAddr::Unix(PathBuf::from(addr))
        } else {
            ListenAddr::Tcp(addr.to_string())
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ListenAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound, nonblocking listener (unix or TCP). The unix variant unlinks
/// its socket path on drop.
pub(crate) enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Unix(path) => {
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            ListenAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// The actual bound address (resolves `:0` TCP ports for tests).
    pub(crate) fn local_addr(&self) -> ListenAddr {
        match self {
            Listener::Unix(_, path) => ListenAddr::Unix(path.clone()),
            Listener::Tcp(listener) => ListenAddr::Tcp(
                listener
                    .local_addr()
                    .map(|a: SocketAddr| a.to_string())
                    .unwrap_or_default(),
            ),
        }
    }

    /// Nonblocking accept: `Ok(None)` when no connection is pending.
    pub(crate) fn poll_accept(&self) -> io::Result<Option<Stream>> {
        let accepted = match self {
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection, unix or TCP.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Connections are accepted nonblocking (inherited on some
    /// platforms); flip to blocking with timeouts so session loops poll.
    pub(crate) fn configure(&self, read_timeout: Duration, write_timeout: Duration) {
        match self {
            Stream::Unix(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(read_timeout));
                let _ = s.set_write_timeout(Some(write_timeout));
            }
            Stream::Tcp(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(read_timeout));
                let _ = s.set_write_timeout(Some(write_timeout));
            }
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One poll of a [`LineReader`].
pub(crate) enum Polled {
    /// A complete request line (without the trailing `\n`).
    Line(String),
    /// The read timed out with no complete line yet; poll again.
    Idle,
    /// The peer closed the connection (any buffered partial line is
    /// dropped — a request without its newline was never committed).
    Eof,
}

/// Reassembles `\n`-delimited lines across short read timeouts without
/// ever losing buffered bytes (unlike `BufRead::read_line`, whose buffer
/// contents are unspecified after an error).
pub(crate) struct LineReader<R: Read> {
    source: R,
    acc: Vec<u8>,
    /// `acc[..scanned]` is known newline-free; rescans start here.
    scanned: usize,
}

impl<R: Read> LineReader<R> {
    pub(crate) fn new(source: R) -> LineReader<R> {
        LineReader {
            source,
            acc: Vec::new(),
            scanned: 0,
        }
    }

    pub(crate) fn poll_line(&mut self) -> io::Result<Polled> {
        loop {
            if let Some(nl) = self.acc[self.scanned..].iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.acc.drain(..self.scanned + nl + 1).collect();
                line.pop(); // the newline
                self.scanned = 0;
                return Ok(Polled::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.acc.len();
            let mut chunk = [0u8; 4096];
            match self.source.read(&mut chunk) {
                Ok(0) => return Ok(Polled::Eof),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_parsing() {
        assert_eq!(
            ListenAddr::parse("unix:/tmp/x.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            ListenAddr::parse("/tmp/y.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/y.sock"))
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:7878"),
            ListenAddr::Tcp("127.0.0.1:7878".to_string())
        );
        assert_eq!(
            ListenAddr::parse("tcp:localhost:80"),
            ListenAddr::Tcp("localhost:80".to_string())
        );
    }

    /// A reader that yields its scripted results one `read` at a time.
    struct Script(std::collections::VecDeque<io::Result<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.pop_front() {
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn line_reader_reassembles_across_timeouts() {
        let script = Script(
            [
                Ok(b"{\"cmd\":".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "tick")),
                Ok(b"\"stats\"}\n{\"cmd\":\"quit\"}\n".to_vec()),
            ]
            .into_iter()
            .collect(),
        );
        let mut reader = LineReader::new(script);
        assert!(matches!(reader.poll_line().unwrap(), Polled::Idle));
        match reader.poll_line().unwrap() {
            Polled::Line(l) => assert_eq!(l, "{\"cmd\":\"stats\"}"),
            _ => panic!("expected a line"),
        }
        match reader.poll_line().unwrap() {
            Polled::Line(l) => assert_eq!(l, "{\"cmd\":\"quit\"}"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(reader.poll_line().unwrap(), Polled::Eof));
    }
}
