//! The single-session stdin/stdout mode (`tpi serve --stdio`, and the
//! default when no `--listen` address is given).
//!
//! Same request dialect and session semantics as ever — this is the mode
//! existing driver scripts rely on — plus the two server-grade
//! behaviours the listener mode has: a SIGINT/SIGTERM drain (finish the
//! in-flight request, then exit cleanly instead of dying mid-response)
//! and `--metrics-out FILE` persisting the final registry snapshot.
//!
//! Stdin cannot carry a read timeout, so a dedicated reader thread
//! forwards lines over a channel and the serve loop polls it, checking
//! the signal flag between requests.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use tpi_engine::serve::{ServeLimits, ServeState};
use tpi_obs::Registry;

use crate::signal;

/// Serve line-JSON requests from stdin until EOF, `quit`, an
/// acknowledged `shutdown`, or SIGINT/SIGTERM; then, when `metrics_out`
/// is given, write the session's final metrics snapshot there.
///
/// # Errors
///
/// I/O failures on stdout or the metrics file (stdin read failures end
/// the loop like EOF).
pub fn run_stdio(limits: ServeLimits, metrics_out: Option<&Path>) -> io::Result<()> {
    let registry = Arc::new(Registry::new());
    let mut state = ServeState::with_shared(limits, Arc::clone(&registry), None);

    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
        // Dropping the sender signals EOF to the serve loop.
    });

    let stdout = io::stdout();
    let mut out = stdout.lock();
    loop {
        if signal::triggered() {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                match state.handle_line(&line) {
                    Some(response) => {
                        writeln!(out, "{response}")?;
                        out.flush()?;
                    }
                    None => break, // quit
                }
                if state.finished() {
                    break; // shutdown (acknowledged above)
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        }
    }

    if let Some(path) = metrics_out {
        std::fs::write(path, registry.snapshot().to_json())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
