//! # tpi-server
//!
//! The concurrent multi-session front end behind `tpi serve --listen`:
//! a unix-socket/TCP listener multiplexing many named line-JSON sessions
//! (the exact dialect of [`tpi_engine::serve`]) over a
//! thread-per-connection core, with a **shared cross-session DP memo**
//! ([`SharedDpMemo`]) so a region subproblem solved for one client
//! replays for every other client that submits an overlapping circuit —
//! the paper's amortise-identical-subproblems insight lifted from one
//! circuit to the whole fleet.
//!
//! * **Sessions** — each accepted connection is one engine session with
//!   its own circuit, analysis caches and measurement state; only the
//!   content-addressed region DP results are global. `{"cmd":"hello",
//!   "session":"ci-7"}` names a session and reports server occupancy.
//! * **Admission control** — at most `max_sessions` concurrent sessions;
//!   a bounded accept queue parks the overflow and anything beyond that
//!   is rejected with a structured `too_many_sessions` line. Requests
//!   across all sessions are bounded by `max_inflight`; a request that
//!   cannot get a slot is answered `overloaded` immediately (the gate
//!   never blocks, so a slow client cannot stall another connection).
//! * **Graceful shutdown** — SIGINT/SIGTERM (via [`signal::install`]) or
//!   `{"cmd":"shutdown","scope":"server"}` stop the accept loop, drain
//!   every in-flight request, close all sessions, and persist a final
//!   metrics snapshot when `metrics_out` is configured.
//! * **Observability** — every session reports into one shared
//!   [`Registry`]: per-command latency histograms (`serve.request_us.*`),
//!   engine and kernel counters, shared-memo traffic
//!   (`engine.shared_memo.*`) and the server's own admission counters
//!   (`server.*`). `{"cmd":"metrics"}` from any session snapshots the
//!   whole fleet.
//!
//! The single-session stdin/stdout mode survives as [`run_stdio`]
//! (`tpi serve --stdio`, the default when no `--listen` is given).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod net;
pub mod signal;
mod stdio;

pub use net::ListenAddr;
pub use stdio::run_stdio;

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tpi_engine::json::Json;
use tpi_engine::serve::{ServeLimits, ServeState};
use tpi_engine::{SharedDpMemo, SharedMemoConfig};
use tpi_obs::{Counter, Gauge, Registry};

use admission::InflightGate;
use net::{LineReader, Listener, Polled, Stream};

/// How long a session read blocks before the loop re-checks the shutdown
/// flag (drain latency is bounded by this plus the in-flight request).
const READ_TICK: Duration = Duration::from_millis(100);
/// Upper bound on a blocked response write before the session is
/// declared dead (a stalled reader must not pin a session thread).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Acceptor idle sleep between polls.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Server tuning. `Default` is permissive: 64 sessions, a 16-deep accept
/// queue, 64 in-flight requests, shared memo on with default capacity.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-request resource caps, enforced by each session exactly as in
    /// single-session serve.
    pub limits: ServeLimits,
    /// Concurrent session (connection) cap.
    pub max_sessions: usize,
    /// Connections parked waiting for a session slot before new arrivals
    /// are rejected with `too_many_sessions`.
    pub accept_queue: usize,
    /// Concurrently executing requests across all sessions; excess
    /// requests are answered with a structured `overloaded` error.
    pub max_inflight: usize,
    /// Cross-session DP memo tuning; `None` gives every session a
    /// private memo (the isolated A/B baseline for the soak harness).
    pub shared_memo: Option<SharedMemoConfig>,
    /// Write the final registry snapshot here after the drain completes.
    pub metrics_out: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            limits: ServeLimits::default(),
            max_sessions: 64,
            accept_queue: 16,
            max_inflight: 64,
            shared_memo: Some(SharedMemoConfig::default()),
            metrics_out: None,
        }
    }
}

/// What a finished server run did, read back from the registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Sessions accepted and served to completion.
    pub sessions_served: u64,
    /// Connections rejected with `too_many_sessions` (accept queue full).
    pub sessions_rejected: u64,
    /// Requests answered with `overloaded` (in-flight gate full).
    pub overloaded: u64,
    /// Shared-memo hits across all sessions (0 when running isolated).
    pub shared_memo_hits: u64,
}

/// State shared between the acceptor and every session thread.
struct Shared {
    limits: ServeLimits,
    registry: Arc<Registry>,
    memo: Option<Arc<SharedDpMemo>>,
    gate: InflightGate,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
    max_sessions: usize,
    sessions_opened: Arc<Counter>,
    sessions_closed: Arc<Counter>,
    sessions_rejected: Arc<Counter>,
    overloaded: Arc<Counter>,
    hello: Arc<Counter>,
    active_gauge: Arc<Gauge>,
    queue_gauge: Arc<Gauge>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::triggered()
    }
}

/// A bound, not-yet-running server. [`bind`](Server::bind) then
/// [`run`](Server::run); grab [`local_addr`](Server::local_addr),
/// [`registry`](Server::registry) and
/// [`shutdown_handle`](Server::shutdown_handle) in between if you need
/// them (run consumes the server).
pub struct Server {
    listener: Listener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind a listener (unix path or TCP address) and prepare the shared
    /// registry and memo. No connection is accepted until
    /// [`run`](Server::run).
    ///
    /// # Errors
    ///
    /// Socket bind failures (address in use, bad path, …).
    pub fn bind(addr: &ListenAddr, config: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let registry = Arc::new(Registry::new());
        let memo = config
            .shared_memo
            .map(|cfg| Arc::new(SharedDpMemo::with_registry(cfg, &registry)));
        let shared = Arc::new(Shared {
            limits: config.limits,
            memo,
            gate: InflightGate::new(config.max_inflight),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: AtomicUsize::new(0),
            max_sessions: config.max_sessions.max(1),
            sessions_opened: registry.counter("server.sessions_opened"),
            sessions_closed: registry.counter("server.sessions_closed"),
            sessions_rejected: registry.counter("server.sessions_rejected"),
            overloaded: registry.counter("server.overloaded"),
            hello: registry.counter("server.hello"),
            active_gauge: registry.gauge("server.active_sessions"),
            queue_gauge: registry.gauge("server.accept_queue_depth"),
            registry,
        });
        Ok(Server {
            listener,
            config,
            shared,
        })
    }

    /// The actual bound address (resolves TCP port 0).
    pub fn local_addr(&self) -> ListenAddr {
        self.listener.local_addr()
    }

    /// The fleet-wide metrics registry (sessions, engines, kernels,
    /// shared memo, admission).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// Flag that stops the accept loop and drains the server when set
    /// (the programmatic equivalent of SIGINT or a server-scope
    /// `shutdown` request).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Accept and serve until shutdown, then drain: stop accepting,
    /// answer queued/parked connections with `shutting_down`, let every
    /// session finish its in-flight request and close, persist
    /// `metrics_out` if configured.
    ///
    /// # Errors
    ///
    /// Listener accept failures and `metrics_out` write failures.
    /// Per-session I/O errors only close that session.
    pub fn run(self) -> io::Result<ServerReport> {
        let Server {
            listener,
            config,
            shared,
        } = self;
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        let mut parked: VecDeque<Stream> = VecDeque::new();

        while !shared.shutting_down() {
            reap_finished(&mut sessions);
            // Admit parked connections as session slots free up (FIFO).
            while shared.active.load(Ordering::Relaxed) < shared.max_sessions {
                let Some(stream) = parked.pop_front() else {
                    break;
                };
                sessions.push(spawn_session(&shared, stream));
            }
            shared.queue_gauge.set(parked.len() as i64);

            match listener.poll_accept() {
                Ok(Some(stream)) => {
                    if shared.active.load(Ordering::Relaxed) < shared.max_sessions {
                        sessions.push(spawn_session(&shared, stream));
                    } else if parked.len() < config.accept_queue {
                        parked.push_back(stream);
                    } else {
                        shared.sessions_rejected.inc();
                        reject(
                            stream,
                            "too_many_sessions",
                            &format!(
                                "server at {} sessions with a full accept queue; retry later",
                                shared.max_sessions
                            ),
                        );
                    }
                }
                Ok(None) => std::thread::sleep(ACCEPT_TICK),
                // Transient accept hiccups (e.g. a peer resetting before
                // the accept) must not take the whole server down.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: close the listener first (unlinks a unix socket), turn
        // parked connections away, then wait for every session to finish
        // its current request and notice the flag (≤ one read tick).
        drop(listener);
        for stream in parked {
            reject(
                stream,
                "shutting_down",
                "server is draining; reconnect later",
            );
        }
        for handle in sessions {
            let _ = handle.join();
        }

        if let Some(path) = &config.metrics_out {
            std::fs::write(path, shared.registry.snapshot().to_json())?;
        }
        let snapshot = shared.registry.snapshot();
        Ok(ServerReport {
            sessions_served: snapshot.counter("server.sessions_closed").unwrap_or(0),
            sessions_rejected: snapshot.counter("server.sessions_rejected").unwrap_or(0),
            overloaded: snapshot.counter("server.overloaded").unwrap_or(0),
            shared_memo_hits: snapshot.counter("engine.shared_memo.hits").unwrap_or(0),
        })
    }
}

fn reap_finished(sessions: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < sessions.len() {
        if sessions[i].is_finished() {
            let _ = sessions.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn spawn_session(shared: &Arc<Shared>, stream: Stream) -> JoinHandle<()> {
    // Count before the thread exists so the acceptor's admission check
    // can never overshoot `max_sessions`.
    shared.active.fetch_add(1, Ordering::Relaxed);
    shared.active_gauge.add(1);
    shared.sessions_opened.inc();
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        run_session(&shared, stream);
        shared.active.fetch_sub(1, Ordering::Relaxed);
        shared.active_gauge.add(-1);
        shared.sessions_closed.inc();
    })
}

/// Serve one connection: the engine-session request loop plus the
/// server-layer commands (`hello`, server-scope `shutdown`) and the
/// in-flight admission gate.
fn run_session(shared: &Shared, stream: Stream) {
    stream.configure(READ_TICK, WRITE_TIMEOUT);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(read_half);
    let mut writer = stream;
    let mut state = ServeState::with_shared(
        shared.limits,
        Arc::clone(&shared.registry),
        shared.memo.as_ref().map(Arc::clone),
    );
    loop {
        if shared.shutting_down() {
            break;
        }
        let line = match reader.poll_line() {
            Ok(Polled::Line(line)) => line,
            Ok(Polled::Idle) => continue,
            Ok(Polled::Eof) | Err(_) => break,
        };
        if let Some((response, action)) = server_layer_response(shared, &line) {
            if write_line(&mut writer, &response).is_err() {
                break;
            }
            match action {
                ServerAction::Continue => continue,
                ServerAction::ShutdownServer => break,
            }
        }
        if !shared.gate.try_acquire() {
            shared.overloaded.inc();
            let busy = error_line("overloaded", "server at max in-flight requests; retry");
            if write_line(&mut writer, &busy).is_err() {
                break;
            }
            continue;
        }
        let response = state.handle_line(&line);
        shared.gate.release();
        match response {
            Some(response) => {
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
            }
            None => break, // quit
        }
        if state.finished() {
            break; // session-scope shutdown
        }
    }
}

enum ServerAction {
    Continue,
    ShutdownServer,
}

/// Handle the commands that belong to the server, not to any one engine
/// session: `hello` (names the session, reports occupancy) and
/// `shutdown` with `"scope":"server"` (global drain). Returns `None` for
/// everything else — including unparseable lines, which the session
/// layer answers with its structured `bad_json` error.
fn server_layer_response(shared: &Shared, line: &str) -> Option<(String, ServerAction)> {
    let request = Json::parse(line.trim()).ok()?;
    let method = request
        .get("cmd")
        .or_else(|| request.get("method"))
        .and_then(Json::as_str)?;
    match method {
        "hello" => {
            shared.hello.inc();
            let name = request
                .get("session")
                .and_then(Json::as_str)
                .unwrap_or("anonymous");
            let response = Json::obj([
                ("ok", Json::from(true)),
                ("server", Json::from(true)),
                ("session", Json::from(name)),
                (
                    "active_sessions",
                    Json::from(shared.active.load(Ordering::Relaxed)),
                ),
                ("max_sessions", Json::from(shared.max_sessions)),
                ("shared_memo", Json::from(shared.memo.is_some())),
            ]);
            Some((response.to_string(), ServerAction::Continue))
        }
        "shutdown" if request.get("scope").and_then(Json::as_str) == Some("server") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            let ack = Json::obj([
                ("ok", Json::from(true)),
                ("shutdown", Json::from(true)),
                ("scope", Json::from("server")),
            ]);
            Some((ack.to_string(), ServerAction::ShutdownServer))
        }
        _ => None,
    }
}

fn error_line(code: &str, message: &str) -> String {
    Json::obj([
        ("ok", Json::from(false)),
        ("code", Json::from(code)),
        ("error", Json::from(message)),
    ])
    .to_string()
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Best-effort structured rejection of a connection we will not serve.
fn reject(stream: Stream, code: &str, message: &str) {
    stream.configure(READ_TICK, Duration::from_secs(2));
    let mut stream = stream;
    let _ = write_line(&mut stream, &error_line(code, message));
}
