//! Process-wide SIGINT/SIGTERM → shutdown-flag bridge.
//!
//! The only unsafe code in the workspace: registering a libc signal
//! handler (std has no signal API). The handler does the single
//! async-signal-safe thing — a relaxed store to a static atomic — and
//! every server/stdio loop polls [`triggered`] between requests, which
//! is what turns Ctrl-C into a graceful drain instead of a kill.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` out of the libc that std already links. Handler and
    /// return value are raw function-pointer words (`SIG_ERR == !0`,
    /// which we have no recovery for and ignore).
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn mark_triggered(_signum: i32) {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Install the SIGINT/SIGTERM handler. Idempotent; called once by the
/// CLI before entering a serve loop. Library users who install their own
/// handlers simply skip this and drive shutdown through
/// [`Server::shutdown_handle`](crate::Server::shutdown_handle).
pub fn install() {
    let handler = mark_triggered as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// `true` once SIGINT or SIGTERM has been received (sticky).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}
