//! Memoization of per-region DP solutions.
//!
//! The constructive loop re-solves fanout-free regions round after round,
//! and most regions do not change between rounds (an edit touches one
//! region; the other 99 re-extract to byte-identical subproblems). The DP
//! is deterministic, so identical subproblems have identical solutions —
//! the memo keys a solved region by a structural fingerprint and replays
//! the cached plan instead of re-running the DP.

use std::collections::HashMap;

use tpi_core::general::RegionExtraction;
use tpi_core::{TargetFault, Threshold};
use tpi_netlist::TestPoint;

/// Cache of region-relative DP plans, keyed by [`region_fingerprint`].
///
/// Entries store test points in the *extracted* circuit's node ids; the
/// caller maps them through the current extraction's `to_parent` table
/// (valid because equal fingerprints imply identical extraction shapes,
/// hence identical sub-circuit node numbering).
#[derive(Clone, Debug, Default)]
pub(crate) struct DpMemo {
    entries: HashMap<u64, Option<Vec<TestPoint>>>,
}

impl DpMemo {
    pub(crate) fn get(&self, fp: u64) -> Option<&Option<Vec<TestPoint>>> {
        self.entries.get(&fp)
    }

    pub(crate) fn insert(&mut self, fp: u64, plan: Option<Vec<TestPoint>>) {
        self.entries.insert(fp, plan);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// FNV-1a fingerprint of a region subproblem: extracted structure (gate
/// kinds and local fanin wiring in sub-id order), quantized input
/// probabilities, target faults, quantized root observability `ρ` and the
/// threshold bits.
///
/// Probabilities are quantized to 2^-20 so that COP noise below the DP's
/// own discretisation cannot split otherwise-identical regions.
pub(crate) fn region_fingerprint(
    extraction: &RegionExtraction,
    targets: &[TargetFault],
    rho: f64,
    threshold: Threshold,
) -> u64 {
    let mut h = Fnv::new();
    h.word(threshold.value().to_bits());
    h.word(quantize(rho));
    let sub = &extraction.circuit;
    h.word(sub.node_count() as u64);
    for id in sub.node_ids() {
        h.bytes(sub.kind(id).bench_name().as_bytes());
        for &f in sub.fanins(id) {
            h.word(f.index() as u64);
        }
        h.word(u64::MAX); // fanin-list terminator
        if let Some(&p) = extraction.input_probs.get(&id) {
            h.word(quantize(p));
        }
    }
    let mut sorted: Vec<(usize, bool)> =
        targets.iter().map(|t| (t.node.index(), t.stuck)).collect();
    sorted.sort_unstable();
    for (node, stuck) in sorted {
        h.word(node as u64);
        h.word(u64::from(stuck));
    }
    h.finish()
}

fn quantize(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * (1u64 << 20) as f64).round() as u64
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::new();
        a.word(1);
        a.word(2);
        let mut b = Fnv::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn quantization_is_stable_under_tiny_noise() {
        assert_eq!(quantize(0.5), quantize(0.5 + 1e-9));
        assert_ne!(quantize(0.5), quantize(0.51));
    }
}
