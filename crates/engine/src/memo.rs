//! Memoization of per-region DP solutions.
//!
//! The constructive loop re-solves fanout-free regions round after round,
//! and most regions do not change between rounds (an edit touches one
//! region; the other 99 re-extract to byte-identical subproblems). The DP
//! is deterministic, so identical subproblems have identical solutions —
//! the memo keys a solved region by a structural fingerprint and replays
//! the cached plan instead of re-running the DP.
//!
//! Two stores implement that idea:
//!
//! * [`DpMemo`] — the private per-session map the engine has always used;
//! * [`SharedDpMemo`] — a sharded, lock-striped store many sessions (and
//!   threads) share, so a region DP solved in one session replays in
//!   every other. The fingerprint is content-addressed (structure,
//!   quantized probabilities, targets, ρ, threshold — nothing
//!   session-relative), which is what makes cross-session reuse sound:
//!   equal keys imply byte-identical subproblems, and the DP being
//!   deterministic implies equal values. Entries are immutable once
//!   written, so there is no coherence protocol to get wrong — a stale
//!   read is impossible and a lost race costs one redundant (identical)
//!   compute.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock};

use tpi_core::general::RegionExtraction;
use tpi_core::{TargetFault, Threshold};
use tpi_netlist::TestPoint;
use tpi_obs::{Counter, Gauge, Registry};

/// Cache of region-relative DP plans, keyed by [`region_fingerprint`].
///
/// Entries store test points in the *extracted* circuit's node ids; the
/// caller maps them through the current extraction's `to_parent` table
/// (valid because equal fingerprints imply identical extraction shapes,
/// hence identical sub-circuit node numbering).
#[derive(Clone, Debug, Default)]
pub(crate) struct DpMemo {
    entries: HashMap<u64, Option<Vec<TestPoint>>>,
}

impl DpMemo {
    pub(crate) fn get(&self, fp: u64) -> Option<&Option<Vec<TestPoint>>> {
        self.entries.get(&fp)
    }

    pub(crate) fn insert(&mut self, fp: u64, plan: Option<Vec<TestPoint>>) {
        self.entries.insert(fp, plan);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Tuning for a [`SharedDpMemo`].
#[derive(Clone, Copy, Debug)]
pub struct SharedMemoConfig {
    /// Number of lock stripes over the fingerprint space (power of two
    /// recommended; clamped to at least 1).
    pub shards: usize,
    /// Total entry budget across all shards; when a shard fills its
    /// slice of the budget, inserts evict its oldest entry (FIFO).
    /// Clamped so every shard holds at least one entry.
    pub capacity: usize,
}

impl Default for SharedMemoConfig {
    fn default() -> SharedMemoConfig {
        SharedMemoConfig {
            shards: 16,
            capacity: 65_536,
        }
    }
}

/// One lock stripe of a [`SharedDpMemo`]: the entry map plus FIFO
/// insertion order for eviction.
#[derive(Debug, Default)]
struct MemoShard {
    entries: HashMap<u64, Option<Vec<TestPoint>>>,
    order: VecDeque<u64>,
}

/// A concurrent, sharded cache of region-relative DP plans shared across
/// engine sessions (and across the threads serving them).
///
/// Keys are [`region_fingerprint`]s, which are content-addressed: two
/// sessions that extract byte-identical subproblems — whether from the
/// same netlist in different rounds or from different clients submitting
/// overlapping circuits — produce the same key, and the deterministic DP
/// guarantees they would produce the same value. Values are therefore
/// immutable; the store never updates an entry in place, and a session
/// losing an insert race simply rewrites the identical plan.
///
/// Capacity is bounded ([`SharedMemoConfig::capacity`]); full shards
/// evict their oldest entry, which costs at most one recompute. All
/// traffic is counted in a [`Registry`] under
/// `engine.shared_memo.{hits,misses,inserts,evictions}` plus an
/// `engine.shared_memo.entries` gauge.
#[derive(Debug)]
pub struct SharedDpMemo {
    shards: Vec<RwLock<MemoShard>>,
    per_shard_capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
    evictions: Arc<Counter>,
    entries: Arc<Gauge>,
}

impl Default for SharedDpMemo {
    fn default() -> SharedDpMemo {
        SharedDpMemo::new(SharedMemoConfig::default())
    }
}

impl SharedDpMemo {
    /// A store counting into a private registry (the counters stay
    /// readable through the accessors below even after it is dropped).
    pub fn new(config: SharedMemoConfig) -> SharedDpMemo {
        SharedDpMemo::with_registry(config, &Registry::new())
    }

    /// A store whose traffic counters land in `registry` (the server
    /// passes its global registry, so one metrics snapshot covers every
    /// session plus the cache they share).
    pub fn with_registry(config: SharedMemoConfig, registry: &Registry) -> SharedDpMemo {
        let shards = config.shards.max(1);
        SharedDpMemo {
            shards: (0..shards)
                .map(|_| RwLock::new(MemoShard::default()))
                .collect(),
            per_shard_capacity: config.capacity.div_ceil(shards).max(1),
            hits: registry.counter("engine.shared_memo.hits"),
            misses: registry.counter("engine.shared_memo.misses"),
            inserts: registry.counter("engine.shared_memo.inserts"),
            evictions: registry.counter("engine.shared_memo.evictions"),
            entries: registry.gauge("engine.shared_memo.entries"),
        }
    }

    fn shard(&self, fp: u64) -> &RwLock<MemoShard> {
        &self.shards[(fp as usize) % self.shards.len()]
    }

    /// Look up a fingerprint, cloning the cached plan out of the lock.
    /// Counts a shared-memo hit or miss either way.
    pub fn lookup(&self, fp: u64) -> Option<Option<Vec<TestPoint>>> {
        let found = self
            .shard(fp)
            .read()
            .expect("shared memo lock")
            .entries
            .get(&fp)
            .cloned();
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Insert a solved subproblem, evicting the shard's oldest entry if
    /// it is at capacity. Racing inserts of the same fingerprint write
    /// identical values (the DP is deterministic), so last-write-wins is
    /// semantically a no-op.
    pub fn insert(&self, fp: u64, plan: Option<Vec<TestPoint>>) {
        let mut shard = self.shard(fp).write().expect("shared memo lock");
        if shard.entries.insert(fp, plan).is_none() {
            shard.order.push_back(fp);
            self.entries.add(1);
            if shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.entries.remove(&oldest);
                    self.evictions.inc();
                    self.entries.add(-1);
                }
            }
        }
        self.inserts.inc();
    }

    /// Number of entries currently cached (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared memo lock").entries.len())
            .sum()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries evicted to stay within capacity so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// FNV-1a fingerprint of a region subproblem: extracted structure (gate
/// kinds and local fanin wiring in sub-id order), quantized input
/// probabilities, target faults, quantized root observability `ρ` and the
/// threshold bits.
///
/// Probabilities are quantized to 2^-20 so that COP noise below the DP's
/// own discretisation cannot split otherwise-identical regions.
pub(crate) fn region_fingerprint(
    extraction: &RegionExtraction,
    targets: &[TargetFault],
    rho: f64,
    threshold: Threshold,
) -> u64 {
    let mut h = Fnv::new();
    h.word(threshold.value().to_bits());
    h.word(quantize(rho));
    let sub = &extraction.circuit;
    h.word(sub.node_count() as u64);
    for id in sub.node_ids() {
        h.bytes(sub.kind(id).bench_name().as_bytes());
        for &f in sub.fanins(id) {
            h.word(f.index() as u64);
        }
        h.word(u64::MAX); // fanin-list terminator
        if let Some(&p) = extraction.input_probs.get(&id) {
            h.word(quantize(p));
        }
    }
    let mut sorted: Vec<(usize, bool)> =
        targets.iter().map(|t| (t.node.index(), t.stuck)).collect();
    sorted.sort_unstable();
    for (node, stuck) in sorted {
        h.word(node as u64);
        h.word(u64::from(stuck));
    }
    h.finish()
}

fn quantize(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * (1u64 << 20) as f64).round() as u64
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::new();
        a.word(1);
        a.word(2);
        let mut b = Fnv::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn quantization_is_stable_under_tiny_noise() {
        assert_eq!(quantize(0.5), quantize(0.5 + 1e-9));
        assert_ne!(quantize(0.5), quantize(0.51));
    }

    #[test]
    fn shared_memo_counts_hits_misses_and_round_trips() {
        let memo = SharedDpMemo::new(SharedMemoConfig::default());
        assert_eq!(memo.lookup(7), None);
        memo.insert(7, Some(vec![]));
        memo.insert(9, None);
        assert_eq!(memo.lookup(7), Some(Some(vec![])));
        assert_eq!(memo.lookup(9), Some(None));
        assert_eq!(memo.len(), 2);
        assert_eq!((memo.hits(), memo.misses()), (2, 1));
        assert_eq!(memo.evictions(), 0);
    }

    #[test]
    fn shared_memo_evicts_fifo_at_capacity() {
        let memo = SharedDpMemo::new(SharedMemoConfig {
            shards: 1,
            capacity: 2,
        });
        memo.insert(1, None);
        memo.insert(2, None);
        memo.insert(3, None); // evicts 1 (oldest)
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions(), 1);
        assert_eq!(memo.lookup(1), None);
        assert_eq!(memo.lookup(3), Some(None));
        // Re-inserting an existing key is not a growth event.
        memo.insert(3, None);
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions(), 1);
    }

    #[test]
    fn shared_memo_survives_concurrent_traffic() {
        let memo = Arc::new(SharedDpMemo::new(SharedMemoConfig {
            shards: 4,
            capacity: 64,
        }));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let memo = Arc::clone(&memo);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let fp = (i % 32) ^ (t << 40);
                        if memo.lookup(fp).is_none() {
                            memo.insert(fp, None);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(memo.len() <= 64, "capacity respected: {}", memo.len());
        assert_eq!(memo.hits() + memo.misses(), 800);
    }
}
