//! The batch job runner behind `tpi batch`.
//!
//! A *manifest* is a JSON document naming N circuits × M configurations;
//! the runner executes every job across a worker pool and emits one JSON
//! line per job (JSONL) in job order. A job that errors, panics or
//! overruns its timeout is reported as such — it never aborts the
//! remaining jobs.
//!
//! ```json
//! {
//!   "workers": 4,
//!   "jobs": [
//!     {"circuit": "c17.bench", "method": "optimize",
//!      "threshold_log2": -8, "patterns": 4096, "max_rounds": 8,
//!      "seed": 7, "timeout_ms": 60000},
//!     {"circuit": "c17.bench", "method": "simulate", "patterns": 1024}
//!   ]
//! }
//! ```
//!
//! `method` is `"optimize"` (default; the engine's constructive loop) or
//! `"simulate"` (coverage measurement only). Relative circuit paths are
//! resolved against the manifest's directory. The `"selftest-panic"` and
//! `"selftest-sleep"` methods panic / stall on purpose, so the pool's
//! isolation and timeout paths stay testable end to end.

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tpi_core::Threshold;
use tpi_netlist::bench_format::parse_bench;

use crate::json::Json;
use crate::{EngineConfig, OptimizeConfig, TpiEngine};

/// One job, fully resolved from the manifest.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job index in manifest order.
    pub index: usize,
    /// Path of the `.bench` circuit.
    pub circuit: PathBuf,
    /// `optimize`, `simulate`, `selftest-panic` or `selftest-sleep`.
    pub method: String,
    /// Threshold exponent for `optimize` (δ = 2^x).
    pub threshold_log2: f64,
    /// Measurement pattern budget.
    pub patterns: u64,
    /// Round limit for `optimize`.
    pub max_rounds: usize,
    /// Pattern seed.
    pub seed: u64,
    /// Per-job wall-clock limit.
    pub timeout_ms: u64,
}

/// Totals of a finished batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs that completed and reported a result.
    pub ok: usize,
    /// Jobs that errored, panicked or timed out.
    pub failed: usize,
}

/// Parse a manifest document into job specs.
///
/// # Errors
///
/// A description of the first malformed field.
pub fn parse_manifest(manifest: &Json, base_dir: &Path) -> Result<(usize, Vec<JobSpec>), String> {
    let workers = manifest
        .get("workers")
        .map(|w| w.as_u64().ok_or("'workers' must be a non-negative integer"))
        .transpose()?
        .unwrap_or(0) as usize;
    let jobs = manifest
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or("manifest needs a 'jobs' array")?;
    let mut specs = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        let circuit = job
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("job {index}: missing 'circuit'"))?;
        let circuit = if Path::new(circuit).is_absolute() {
            PathBuf::from(circuit)
        } else {
            base_dir.join(circuit)
        };
        let method = job
            .get("method")
            .and_then(Json::as_str)
            .unwrap_or("optimize")
            .to_string();
        if !matches!(
            method.as_str(),
            "optimize" | "simulate" | "selftest-panic" | "selftest-sleep"
        ) {
            return Err(format!("job {index}: unknown method '{method}'"));
        }
        specs.push(JobSpec {
            index,
            circuit,
            method,
            threshold_log2: job
                .get("threshold_log2")
                .and_then(Json::as_f64)
                .unwrap_or(-10.0),
            patterns: job.get("patterns").and_then(Json::as_u64).unwrap_or(4096),
            max_rounds: job.get("max_rounds").and_then(Json::as_u64).unwrap_or(8) as usize,
            seed: job.get("seed").and_then(Json::as_u64).unwrap_or(0xDAC_1987),
            timeout_ms: job
                .get("timeout_ms")
                .and_then(Json::as_u64)
                .unwrap_or(60_000),
        });
    }
    Ok((workers, specs))
}

/// Run every job of a parsed manifest across `workers` threads (0 = the
/// machine's available parallelism) and write one JSONL line per job, in
/// job order, to `out`.
///
/// # Errors
///
/// Only I/O failures on `out`; job-level failures land in their JSONL
/// lines.
pub fn run_jobs(
    workers: usize,
    specs: &[JobSpec],
    out: &mut dyn std::io::Write,
) -> Result<BatchSummary, std::io::Error> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    }
    .min(specs.len().max(1));

    let next = AtomicUsize::new(0);
    let lines: Mutex<Vec<Option<Json>>> = Mutex::new(vec![None; specs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let line = run_job_isolated(spec);
                lines.lock().expect("no poisoned locks")[i] = Some(line);
            });
        }
    });

    let lines = lines.into_inner().expect("no poisoned locks");
    let mut summary = BatchSummary { ok: 0, failed: 0 };
    for line in &lines {
        let line = line.as_ref().expect("every job produces a line");
        if line.get("status").and_then(Json::as_str) == Some("ok") {
            summary.ok += 1;
        } else {
            summary.failed += 1;
        }
        writeln!(out, "{line}")?;
    }
    Ok(summary)
}

/// Execute one job on its own thread, translating a panic or a timeout
/// overrun into a reported status instead of letting it take the pool
/// down. A timed-out worker thread is left detached — it still holds its
/// CPU until it finishes, but the batch no longer waits for it.
fn run_job_isolated(spec: &JobSpec) -> Json {
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let spec_for_worker = spec.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("tpi-batch-job-{}", spec.index))
        .spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&spec_for_worker)));
            let _ = tx.send(outcome);
        });
    if spawned.is_err() {
        return job_line(
            spec,
            started,
            Err("failed to spawn worker thread".to_string()),
        );
    }
    match rx.recv_timeout(Duration::from_millis(spec.timeout_ms)) {
        Ok(Ok(result)) => job_line(spec, started, result),
        Ok(Err(panic)) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            let mut line = job_line(spec, started, Err(message));
            if let Json::Obj(map) = &mut line {
                map.insert("status".to_string(), Json::from("panic"));
            }
            line
        }
        Err(_) => {
            let mut line = job_line(spec, started, Err("timed out".to_string()));
            if let Json::Obj(map) = &mut line {
                map.insert("status".to_string(), Json::from("timeout"));
            }
            line
        }
    }
}

fn job_line(spec: &JobSpec, started: Instant, result: Result<Json, String>) -> Json {
    let mut line = Json::obj([
        ("job", Json::from(spec.index)),
        ("circuit", Json::from(spec.circuit.display().to_string())),
        ("method", Json::from(spec.method.as_str())),
        ("millis", Json::from(started.elapsed().as_millis() as u64)),
    ]);
    let Json::Obj(map) = &mut line else {
        unreachable!("Json::obj returns an object")
    };
    match result {
        Ok(Json::Obj(fields)) => {
            map.insert("status".to_string(), Json::from("ok"));
            map.extend(fields);
        }
        Ok(other) => {
            map.insert("status".to_string(), Json::from("ok"));
            map.insert("result".to_string(), other);
        }
        Err(message) => {
            map.insert("status".to_string(), Json::from("error"));
            map.insert("error".to_string(), Json::from(message));
        }
    }
    line
}

/// The job body proper (runs inside the isolated worker thread).
fn run_job(spec: &JobSpec) -> Result<Json, String> {
    if spec.method == "selftest-panic" {
        panic!("selftest-panic job requested a panic");
    }
    if spec.method == "selftest-sleep" {
        // Out-sleep any configured timeout; the worker detaches the thread.
        std::thread::sleep(Duration::from_millis(
            spec.timeout_ms.saturating_add(60_000),
        ));
        return Ok(Json::obj([("slept", Json::from(true))]));
    }
    let text = std::fs::read_to_string(&spec.circuit)
        .map_err(|e| format!("read {}: {e}", spec.circuit.display()))?;
    let circuit = parse_bench(&text).map_err(|e| format!("parse: {e}"))?;
    let mut engine = TpiEngine::new(
        circuit,
        EngineConfig {
            patterns: spec.patterns,
            seed: spec.seed,
            verify_incremental: false,
            ..EngineConfig::default()
        },
    )
    .map_err(|e| format!("engine: {e}"))?;
    match spec.method.as_str() {
        "simulate" => {
            let result = engine.simulate().map_err(|e| format!("simulate: {e}"))?;
            Ok(Json::obj([
                ("coverage", Json::from(result.coverage())),
                ("faults", Json::from(result.fault_count())),
                ("detected", Json::from(result.detected_count())),
                ("patterns", Json::from(result.patterns_applied())),
            ]))
        }
        "optimize" => {
            let cfg = OptimizeConfig {
                max_rounds: spec.max_rounds,
                ..OptimizeConfig::default()
            };
            let outcome = engine
                .optimize(Threshold::from_log2(spec.threshold_log2), &cfg)
                .map_err(|e| format!("optimize: {e}"))?;
            Ok(Json::obj([
                ("coverage", Json::from(outcome.final_coverage)),
                (
                    "baseline_coverage",
                    Json::from(outcome.rounds.first().map_or(0.0, |r| r.coverage)),
                ),
                ("points", Json::from(outcome.plan.len())),
                ("cost", Json::from(outcome.plan.cost())),
                ("rounds", Json::from(outcome.rounds.len())),
                (
                    "faults_resimulated",
                    Json::from(engine.stats().faults_resimulated),
                ),
                ("faults_skipped", Json::from(engine.stats().faults_skipped)),
            ]))
        }
        other => Err(format!("unknown method '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bench(dir: &Path, name: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(
            &path,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
             g0 = AND(a, b)\ng1 = AND(c, d)\ny = AND(g0, g1)\nOUTPUT(y)\n",
        )
        .unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpi-batch-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn failing_jobs_do_not_abort_the_batch() {
        let dir = temp_dir("isolation");
        write_bench(&dir, "ok.bench");
        let manifest = Json::parse(
            r#"{
              "workers": 2,
              "jobs": [
                {"circuit": "ok.bench", "method": "simulate", "patterns": 256},
                {"circuit": "missing.bench", "method": "simulate"},
                {"circuit": "ok.bench", "method": "selftest-panic", "timeout_ms": 30000},
                {"circuit": "ok.bench", "method": "optimize",
                 "threshold_log2": -4, "patterns": 256, "max_rounds": 2}
              ]
            }"#,
        )
        .unwrap();
        let (workers, specs) = parse_manifest(&manifest, &dir).unwrap();
        let mut out = Vec::new();
        let summary = run_jobs(workers, &specs, &mut out).unwrap();
        assert_eq!(summary.ok, 2, "{}", String::from_utf8_lossy(&out));
        assert_eq!(summary.failed, 2);

        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 4);
        // JSONL comes back in job order regardless of completion order.
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.get("job").unwrap().as_u64(), Some(i as u64));
        }
        assert_eq!(lines[0].get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(lines[1].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(lines[2].get("status").unwrap().as_str(), Some("panic"));
        assert_eq!(lines[3].get("status").unwrap().as_str(), Some("ok"));
        assert!(lines[3].get("coverage").unwrap().as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_validation() {
        assert!(parse_manifest(&Json::parse("{}").unwrap(), Path::new(".")).is_err());
        let bad_method =
            Json::parse(r#"{"jobs":[{"circuit":"x.bench","method":"frobnicate"}]}"#).unwrap();
        assert!(parse_manifest(&bad_method, Path::new(".")).is_err());
        let no_circuit = Json::parse(r#"{"jobs":[{"method":"simulate"}]}"#).unwrap();
        assert!(parse_manifest(&no_circuit, Path::new(".")).is_err());
    }

    #[test]
    fn timeout_is_reported_not_fatal() {
        let dir = temp_dir("timeout");
        let path = write_bench(&dir, "slow.bench");
        // The sleeper out-sleeps any budget: the timeout path is forced
        // deterministically however fast the machine is.
        let spec = JobSpec {
            index: 0,
            circuit: path,
            method: "selftest-sleep".to_string(),
            threshold_log2: -8.0,
            patterns: 4096,
            max_rounds: 2,
            seed: 1,
            timeout_ms: 10,
        };
        let line = run_job_isolated(&spec);
        assert_eq!(line.get("status").unwrap().as_str(), Some("timeout"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
