//! The batch job runner behind `tpi batch`.
//!
//! A *manifest* is a JSON document naming N circuits × M configurations;
//! the runner executes every job across a worker pool and emits one JSON
//! line per job (JSONL) in job order. A job that errors, panics or
//! overruns its timeout is reported as such — it never aborts the
//! remaining jobs.
//!
//! ```json
//! {
//!   "workers": 4,
//!   "jobs": [
//!     {"circuit": "c17.bench", "method": "optimize",
//!      "threshold_log2": -8, "patterns": 4096, "max_rounds": 8,
//!      "seed": 7, "timeout_ms": 60000},
//!     {"circuit": "c17.bench", "method": "simulate", "patterns": 1024}
//!   ]
//! }
//! ```
//!
//! `method` is `"optimize"` (default; the engine's constructive loop) or
//! `"simulate"` (coverage measurement only). Relative circuit paths are
//! resolved against the manifest's directory. The `"selftest-panic"`,
//! `"selftest-sleep"` and `"selftest-flaky"` methods panic / stall /
//! fail-once on purpose, so the pool's isolation, timeout and retry
//! paths stay testable end to end.
//!
//! # Cancellation, timeouts and resume
//!
//! Every job runs under a [`RunControl`] token: a child of the
//! batch-global token ([`BatchOptions::control`]) carrying the job's
//! own deadline. A job that overruns its `timeout_ms` is *cooperatively
//! cancelled* — the worker observes the token at its next poll, exits,
//! and is joined (never detached while responsive), so a timed-out job
//! stops consuming CPU within one poll interval. The per-job status
//! distinguishes `"timeout"` (the job's own deadline) from
//! `"cancelled"` (the batch-global token fired); each line records
//! whether the worker actually exited (`"worker_exited"`).
//!
//! Jobs that fail transiently (`"error"` / `"panic"`) are retried up to
//! [`BatchOptions::retries`] times with exponential backoff; timeouts
//! and cancellations are not retried. Output lines are flushed in job
//! order as soon as their prefix completes, so a killed batch leaves a
//! valid JSONL checkpoint; [`completed_indices`] recovers the
//! successfully finished jobs from it and [`BatchOptions::skip`] makes
//! a resumed run skip (and not re-execute) exactly those.

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tpi_core::Threshold;
use tpi_netlist::bench_format::parse_bench;
use tpi_obs::Registry;
use tpi_sim::{RunControl, StopReason};

use crate::json::Json;
use crate::{EngineConfig, OptimizeConfig, TpiEngine};

/// How long after a job's deadline the pool waits for the worker to
/// observe its token and exit before giving up and detaching it. Covers
/// one poll interval (a fault-sim block or a DP chunk) with a wide
/// margin.
const COOPERATIVE_GRACE: Duration = Duration::from_millis(2_000);

/// One job, fully resolved from the manifest.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job index in manifest order.
    pub index: usize,
    /// Path of the `.bench` circuit.
    pub circuit: PathBuf,
    /// `optimize`, `simulate`, `selftest-panic`, `selftest-sleep` or
    /// `selftest-flaky`.
    pub method: String,
    /// Threshold exponent for `optimize` (δ = 2^x).
    pub threshold_log2: f64,
    /// Measurement pattern budget.
    pub patterns: u64,
    /// Round limit for `optimize`.
    pub max_rounds: usize,
    /// Pattern seed.
    pub seed: u64,
    /// Per-job wall-clock limit.
    pub timeout_ms: u64,
}

/// Totals of a finished batch, one counter per terminal job status.
///
/// Earlier versions lumped every non-`ok` status into one `failed`
/// field, which made a timed-out batch indistinguishable from a broken
/// one in the summary; the split keeps each exit class countable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs that completed and reported a result.
    pub ok: usize,
    /// Jobs whose body failed (bad circuit, I/O error, engine error).
    pub error: usize,
    /// Jobs whose worker panicked (after exhausting retries).
    pub panic: usize,
    /// Jobs that overran their own deadline or work budget.
    pub timeout: usize,
    /// Jobs stopped by the batch-global cancellation token.
    pub cancelled: usize,
    /// Jobs skipped because a resumed output already holds their result.
    pub skipped: usize,
    /// Wall clock of the whole batch, milliseconds.
    pub elapsed_ms: u64,
}

impl BatchSummary {
    /// Jobs that did not complete, for any reason.
    pub fn failed(&self) -> usize {
        self.error + self.panic + self.timeout + self.cancelled
    }

    /// The summary as a JSON object (the final line `tpi batch` prints).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("summary", Json::from(true)),
            ("ok", Json::from(self.ok)),
            ("error", Json::from(self.error)),
            ("panic", Json::from(self.panic)),
            ("timeout", Json::from(self.timeout)),
            ("cancelled", Json::from(self.cancelled)),
            ("skipped", Json::from(self.skipped)),
            ("elapsed_ms", Json::from(self.elapsed_ms)),
        ])
    }

    fn count(&mut self, status: &str) {
        match status {
            "ok" => self.ok += 1,
            "panic" => self.panic += 1,
            "timeout" => self.timeout += 1,
            "cancelled" => self.cancelled += 1,
            _ => self.error += 1,
        }
    }
}

/// Pool-level options for [`run_jobs_with`].
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads (0 = the machine's available parallelism).
    pub workers: usize,
    /// Retries per job after a transient failure (`error`/`panic`);
    /// timeouts and cancellations are never retried.
    pub retries: usize,
    /// Job indices to skip (resume): no execution, no output line.
    pub skip: Vec<usize>,
    /// Batch-global cancellation token; every job token is its child,
    /// so one [`RunControl::cancel`] drains the whole pool (running
    /// jobs report `"cancelled"`, unstarted jobs are not run).
    pub control: RunControl,
    /// Metrics sink: per-job wall clock (`batch.job_ms`), queue wait
    /// (`batch.queue_wait_ms`), retry count (`batch.retries`) and
    /// per-status counters (`batch.status.*`). `None` records nothing.
    pub registry: Option<Arc<Registry>>,
}

/// Parse a manifest document into job specs.
///
/// # Errors
///
/// A description of the first malformed field.
pub fn parse_manifest(manifest: &Json, base_dir: &Path) -> Result<(usize, Vec<JobSpec>), String> {
    let workers = manifest
        .get("workers")
        .map(|w| w.as_u64().ok_or("'workers' must be a non-negative integer"))
        .transpose()?
        .unwrap_or(0) as usize;
    let jobs = manifest
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or("manifest needs a 'jobs' array")?;
    let mut specs = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        let circuit = job
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("job {index}: missing 'circuit'"))?;
        let circuit = if Path::new(circuit).is_absolute() {
            PathBuf::from(circuit)
        } else {
            base_dir.join(circuit)
        };
        let method = job
            .get("method")
            .and_then(Json::as_str)
            .unwrap_or("optimize")
            .to_string();
        if !matches!(
            method.as_str(),
            "optimize" | "simulate" | "selftest-panic" | "selftest-sleep" | "selftest-flaky"
        ) {
            return Err(format!("job {index}: unknown method '{method}'"));
        }
        specs.push(JobSpec {
            index,
            circuit,
            method,
            threshold_log2: job
                .get("threshold_log2")
                .and_then(Json::as_f64)
                .unwrap_or(-10.0),
            patterns: job.get("patterns").and_then(Json::as_u64).unwrap_or(4096),
            max_rounds: job.get("max_rounds").and_then(Json::as_u64).unwrap_or(8) as usize,
            seed: job.get("seed").and_then(Json::as_u64).unwrap_or(0xDAC_1987),
            timeout_ms: job
                .get("timeout_ms")
                .and_then(Json::as_u64)
                .unwrap_or(60_000),
        });
    }
    Ok((workers, specs))
}

/// Job indices holding a `"status": "ok"` line in an existing JSONL
/// output — the set a resumed run skips. Later lines win over earlier
/// ones for the same index (a resumed run appends), and unparsable
/// lines are ignored.
pub fn completed_indices(jsonl: &str) -> Vec<usize> {
    let mut done: BTreeSet<usize> = BTreeSet::new();
    for line in jsonl.lines() {
        let Ok(parsed) = Json::parse(line) else {
            continue;
        };
        let Some(index) = parsed.get("job").and_then(Json::as_u64) else {
            continue;
        };
        if parsed.get("status").and_then(Json::as_str) == Some("ok") {
            done.insert(index as usize);
        } else {
            done.remove(&(index as usize));
        }
    }
    done.into_iter().collect()
}

/// Run every job of a parsed manifest across `workers` threads (0 = the
/// machine's available parallelism) and write one JSONL line per job, in
/// job order, to `out`.
///
/// Compatibility wrapper over [`run_jobs_with`] with default options
/// (no retries, no skips, no batch-global token); output is buffered
/// and written at the end, so `out` need not be [`Send`].
///
/// # Errors
///
/// Only I/O failures on `out`; job-level failures land in their JSONL
/// lines.
pub fn run_jobs(
    workers: usize,
    specs: &[JobSpec],
    out: &mut dyn std::io::Write,
) -> Result<BatchSummary, std::io::Error> {
    let opts = BatchOptions {
        workers,
        ..BatchOptions::default()
    };
    let mut buffer = Vec::new();
    let summary = run_jobs_with(&opts, specs, &mut buffer)?;
    out.write_all(&buffer)?;
    Ok(summary)
}

/// [`run_jobs`] with explicit [`BatchOptions`] and streaming output:
/// each line is written as soon as every earlier job's line is, so an
/// interrupted batch leaves a resumable JSONL prefix. Skipped jobs
/// (resume) produce no line — the pre-existing output already holds
/// theirs.
///
/// # Errors
///
/// Only I/O failures on `out`; job-level failures land in their JSONL
/// lines.
pub fn run_jobs_with(
    opts: &BatchOptions,
    specs: &[JobSpec],
    out: &mut (dyn std::io::Write + Send),
) -> Result<BatchSummary, std::io::Error> {
    let batch_started = Instant::now();
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.workers
    }
    .min(specs.len().max(1));
    let skip: BTreeSet<usize> = opts.skip.iter().copied().collect();

    enum Slot {
        Pending,
        Skipped,
        Done(Json),
        Flushed,
    }
    struct Stream<'a> {
        slots: Vec<Slot>,
        next: usize,
        out: &'a mut (dyn std::io::Write + Send),
        io_error: Option<std::io::Error>,
    }
    impl Stream<'_> {
        /// Write the contiguous prefix of finished lines (skips emit
        /// nothing). I/O errors are latched; workers keep finishing.
        fn flush_ready(&mut self) {
            while let Some(slot) = self.slots.get_mut(self.next) {
                match std::mem::replace(slot, Slot::Flushed) {
                    Slot::Pending => {
                        *slot = Slot::Pending;
                        break;
                    }
                    Slot::Skipped | Slot::Flushed => {}
                    Slot::Done(line) => {
                        if self.io_error.is_none() {
                            if let Err(e) = writeln!(self.out, "{line}") {
                                self.io_error = Some(e);
                            }
                        }
                    }
                }
                self.next += 1;
            }
        }
    }

    let mut slots: Vec<Slot> = specs
        .iter()
        .map(|s| {
            if skip.contains(&s.index) {
                Slot::Skipped
            } else {
                Slot::Pending
            }
        })
        .collect();
    let mut summary = BatchSummary {
        skipped: specs.iter().filter(|s| skip.contains(&s.index)).count(),
        ..BatchSummary::default()
    };

    let next_job = AtomicUsize::new(0);
    let stream = Mutex::new(Stream {
        slots: std::mem::take(&mut slots),
        next: 0,
        out,
        io_error: None,
    });
    let statuses: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; specs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                if skip.contains(&spec.index) {
                    continue;
                }
                if let Some(reg) = &opts.registry {
                    // Queue wait: batch start to this job's first attempt.
                    reg.histogram("batch.queue_wait_ms")
                        .record(batch_started.elapsed().as_millis() as u64);
                }
                let line = if opts.control.is_cancelled() {
                    // The batch was cancelled before this job started.
                    cancelled_line(spec)
                } else {
                    run_job_isolated(spec, &opts.control, opts.retries)
                };
                let status = line
                    .get("status")
                    .and_then(Json::as_str)
                    .unwrap_or("error")
                    .to_string();
                if let Some(reg) = &opts.registry {
                    if let Some(millis) = line.get("millis").and_then(Json::as_u64) {
                        reg.histogram("batch.job_ms").record(millis);
                    }
                    let attempts = line.get("attempts").and_then(Json::as_u64).unwrap_or(1);
                    reg.counter("batch.retries").add(attempts.saturating_sub(1));
                    reg.counter(&format!("batch.status.{status}")).inc();
                }
                statuses.lock().expect("no poisoned locks")[i] = Some(status);
                let mut stream = stream.lock().expect("no poisoned locks");
                stream.slots[i] = Slot::Done(line);
                stream.flush_ready();
            });
        }
    });

    let mut stream = stream.into_inner().expect("no poisoned locks");
    stream.flush_ready();
    if let Some(e) = stream.io_error {
        return Err(e);
    }
    for status in statuses.into_inner().expect("no poisoned locks") {
        if let Some(status) = status.as_deref() {
            summary.count(status);
        }
    }
    summary.elapsed_ms = batch_started.elapsed().as_millis() as u64;
    Ok(summary)
}

/// What one attempt of a job's body reports back.
enum JobOutcome {
    Ok(Json),
    Error(String),
    /// The job's [`RunControl`] token fired; `partial` carries any
    /// anytime result (an interrupted optimize's prefix plan).
    Interrupted {
        reason: StopReason,
        partial: Option<Json>,
    },
}

/// Execute one job under the batch-global token, retrying transient
/// failures, translating panics and deadline overruns into reported
/// statuses instead of letting them take the pool down. The worker
/// thread is *joined* whenever it responds within the cooperative grace
/// window; only a worker stuck outside any polling loop is detached
/// (reported via `"worker_exited": false`).
fn run_job_isolated(spec: &JobSpec, batch: &RunControl, retries: usize) -> Json {
    let started = Instant::now();
    let mut attempt = 0usize;
    loop {
        attempt += 1;
        let line = run_job_attempt(spec, batch, started, attempt);
        let status = line.get("status").and_then(Json::as_str).unwrap_or("ok");
        let transient = matches!(status, "error" | "panic");
        if !transient || attempt > retries || batch.is_cancelled() {
            return line;
        }
        // Exponential backoff: 10, 20, 40, ... ms.
        std::thread::sleep(Duration::from_millis(10u64 << (attempt - 1).min(6)));
    }
}

fn run_job_attempt(spec: &JobSpec, batch: &RunControl, started: Instant, attempt: usize) -> Json {
    let control = batch.child_with_deadline(Some(Duration::from_millis(spec.timeout_ms)));
    let (tx, rx) = mpsc::channel();
    let spec_for_worker = spec.clone();
    let worker_control = control.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("tpi-batch-job-{}", spec.index))
        .spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_job(&spec_for_worker, &worker_control)
            }));
            let _ = tx.send(outcome);
        });
    let Ok(handle) = spawned else {
        return finish_line(
            spec,
            started,
            attempt,
            true,
            JobOutcome::Error("failed to spawn worker thread".to_string()),
        );
    };

    let received = rx
        .recv_timeout(Duration::from_millis(spec.timeout_ms))
        .or_else(|_| {
            // Deadline passed: the worker's token (created before this
            // wait began) has already expired on its own — no cancel()
            // needed, which would misreport the reason as "cancelled".
            // Give the worker one grace window to poll, unwind and send.
            rx.recv_timeout(COOPERATIVE_GRACE)
        });
    match received {
        Ok(outcome) => {
            handle.join().ok(); // the worker already sent; join is immediate
            let outcome = match outcome {
                Ok(outcome) => outcome,
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    let mut line =
                        finish_line(spec, started, attempt, true, JobOutcome::Error(message));
                    if let Json::Obj(map) = &mut line {
                        map.insert("status".to_string(), Json::from("panic"));
                    }
                    return line;
                }
            };
            finish_line(spec, started, attempt, true, outcome)
        }
        Err(_) => {
            // The worker ignored its token for a full grace window —
            // stuck outside any polling loop. Detaching is the last
            // resort; the line records that the thread leaked.
            finish_line(
                spec,
                started,
                attempt,
                false,
                JobOutcome::Interrupted {
                    reason: StopReason::DeadlineExpired,
                    partial: None,
                },
            )
        }
    }
}

/// The line for a job the batch-global cancel reached before it started.
fn cancelled_line(spec: &JobSpec) -> Json {
    let mut line = base_line(spec, Duration::ZERO, 0, true);
    if let Json::Obj(map) = &mut line {
        map.insert("status".to_string(), Json::from("cancelled"));
        map.insert("error".to_string(), Json::from("batch cancelled"));
    }
    line
}

fn base_line(spec: &JobSpec, elapsed: Duration, attempts: usize, worker_exited: bool) -> Json {
    Json::obj([
        ("job", Json::from(spec.index)),
        ("circuit", Json::from(spec.circuit.display().to_string())),
        ("method", Json::from(spec.method.as_str())),
        ("millis", Json::from(elapsed.as_millis() as u64)),
        ("attempts", Json::from(attempts)),
        ("worker_exited", Json::from(worker_exited)),
    ])
}

fn finish_line(
    spec: &JobSpec,
    started: Instant,
    attempt: usize,
    worker_exited: bool,
    outcome: JobOutcome,
) -> Json {
    let mut line = base_line(spec, started.elapsed(), attempt, worker_exited);
    let Json::Obj(map) = &mut line else {
        unreachable!("Json::obj returns an object")
    };
    match outcome {
        JobOutcome::Ok(Json::Obj(fields)) => {
            map.insert("status".to_string(), Json::from("ok"));
            map.extend(fields);
        }
        JobOutcome::Ok(other) => {
            map.insert("status".to_string(), Json::from("ok"));
            map.insert("result".to_string(), other);
        }
        JobOutcome::Error(message) => {
            map.insert("status".to_string(), Json::from("error"));
            map.insert("error".to_string(), Json::from(message));
        }
        JobOutcome::Interrupted { reason, partial } => {
            let status = match reason {
                StopReason::Cancelled => "cancelled",
                StopReason::DeadlineExpired | StopReason::BudgetExhausted => "timeout",
            };
            map.insert("status".to_string(), Json::from(status));
            map.insert("error".to_string(), Json::from(reason.to_string()));
            if let Some(Json::Obj(fields)) = partial {
                map.insert("partial".to_string(), Json::from(true));
                map.extend(fields);
            }
        }
    }
    line
}

/// The job body proper (runs inside the isolated worker thread, under
/// the job's own [`RunControl`] token).
fn run_job(spec: &JobSpec, control: &RunControl) -> JobOutcome {
    match spec.method.as_str() {
        "selftest-panic" => panic!("selftest-panic job requested a panic"),
        "selftest-sleep" => {
            // Out-sleep any configured timeout — but observe the token,
            // so the sleeper exits within one poll interval instead of
            // outliving the batch (the pre-cancellation thread leak).
            let total = Duration::from_millis(spec.timeout_ms.saturating_add(60_000));
            let slept_from = Instant::now();
            while slept_from.elapsed() < total {
                if let Some(reason) = control.poll() {
                    return JobOutcome::Interrupted {
                        reason,
                        partial: None,
                    };
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            JobOutcome::Ok(Json::obj([("slept", Json::from(true))]))
        }
        "selftest-flaky" => {
            // Deterministic transient failure: the first attempt drops a
            // marker file next to the circuit and errors; any later
            // attempt sees the marker and succeeds. Exercises the
            // retry-with-backoff path end to end.
            let marker = spec.circuit.with_extension("flaky-marker");
            if marker.exists() {
                JobOutcome::Ok(Json::obj([("recovered", Json::from(true))]))
            } else {
                match std::fs::write(&marker, b"flaky") {
                    Ok(()) => JobOutcome::Error("selftest-flaky first attempt fails".to_string()),
                    Err(e) => JobOutcome::Error(format!("selftest-flaky marker: {e}")),
                }
            }
        }
        _ => run_engine_job(spec, control),
    }
}

fn run_engine_job(spec: &JobSpec, control: &RunControl) -> JobOutcome {
    let text = match std::fs::read_to_string(&spec.circuit) {
        Ok(text) => text,
        Err(e) => return JobOutcome::Error(format!("read {}: {e}", spec.circuit.display())),
    };
    let circuit = match parse_bench(&text) {
        Ok(circuit) => circuit,
        Err(e) => return JobOutcome::Error(format!("parse: {e}")),
    };
    let engine = TpiEngine::new(
        circuit,
        EngineConfig {
            patterns: spec.patterns,
            seed: spec.seed,
            verify_incremental: false,
            ..EngineConfig::default()
        },
    );
    let mut engine = match engine {
        Ok(engine) => engine,
        Err(e) => return JobOutcome::Error(format!("engine: {e}")),
    };
    engine.set_control(control.clone());
    match spec.method.as_str() {
        "simulate" => match engine.simulate() {
            Ok(result) => JobOutcome::Ok(Json::obj([
                ("coverage", Json::from(result.coverage())),
                ("faults", Json::from(result.fault_count())),
                ("detected", Json::from(result.detected_count())),
                ("patterns", Json::from(result.patterns_applied())),
            ])),
            Err(tpi_core::TpiError::Interrupted { reason }) => JobOutcome::Interrupted {
                reason,
                partial: None,
            },
            Err(e) => JobOutcome::Error(format!("simulate: {e}")),
        },
        "optimize" => {
            let cfg = OptimizeConfig {
                max_rounds: spec.max_rounds,
                ..OptimizeConfig::default()
            };
            let outcome = match engine.optimize(Threshold::from_log2(spec.threshold_log2), &cfg) {
                Ok(outcome) => outcome,
                Err(e) => return JobOutcome::Error(format!("optimize: {e}")),
            };
            let fields = Json::obj([
                ("coverage", Json::from(outcome.final_coverage)),
                (
                    "baseline_coverage",
                    Json::from(outcome.rounds.first().map_or(0.0, |r| r.coverage)),
                ),
                ("points", Json::from(outcome.plan.len())),
                ("cost", Json::from(outcome.plan.cost())),
                ("rounds", Json::from(outcome.rounds.len())),
                (
                    "faults_resimulated",
                    Json::from(engine.stats().faults_resimulated),
                ),
                ("faults_skipped", Json::from(engine.stats().faults_skipped)),
            ]);
            match outcome.interrupted {
                None => JobOutcome::Ok(fields),
                Some(reason) => JobOutcome::Interrupted {
                    reason,
                    partial: Some(fields),
                },
            }
        }
        other => JobOutcome::Error(format!("unknown method '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bench(dir: &Path, name: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(
            &path,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
             g0 = AND(a, b)\ng1 = AND(c, d)\ny = AND(g0, g1)\nOUTPUT(y)\n",
        )
        .unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpi-batch-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn failing_jobs_do_not_abort_the_batch() {
        let dir = temp_dir("isolation");
        write_bench(&dir, "ok.bench");
        let manifest = Json::parse(
            r#"{
              "workers": 2,
              "jobs": [
                {"circuit": "ok.bench", "method": "simulate", "patterns": 256},
                {"circuit": "missing.bench", "method": "simulate"},
                {"circuit": "ok.bench", "method": "selftest-panic", "timeout_ms": 30000},
                {"circuit": "ok.bench", "method": "optimize",
                 "threshold_log2": -4, "patterns": 256, "max_rounds": 2}
              ]
            }"#,
        )
        .unwrap();
        let (workers, specs) = parse_manifest(&manifest, &dir).unwrap();
        let mut out = Vec::new();
        let summary = run_jobs(workers, &specs, &mut out).unwrap();
        assert_eq!(summary.ok, 2, "{}", String::from_utf8_lossy(&out));
        assert_eq!(summary.failed(), 2);
        assert_eq!(summary.error, 1);
        assert_eq!(summary.panic, 1);
        assert_eq!(summary.skipped, 0);

        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 4);
        // JSONL comes back in job order regardless of completion order.
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.get("job").unwrap().as_u64(), Some(i as u64));
            assert_eq!(line.get("worker_exited").unwrap().as_bool(), Some(true));
        }
        assert_eq!(lines[0].get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(lines[1].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(lines[2].get("status").unwrap().as_str(), Some("panic"));
        assert_eq!(lines[3].get("status").unwrap().as_str(), Some("ok"));
        assert!(lines[3].get("coverage").unwrap().as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_validation() {
        assert!(parse_manifest(&Json::parse("{}").unwrap(), Path::new(".")).is_err());
        let bad_method =
            Json::parse(r#"{"jobs":[{"circuit":"x.bench","method":"frobnicate"}]}"#).unwrap();
        assert!(parse_manifest(&bad_method, Path::new(".")).is_err());
        let no_circuit = Json::parse(r#"{"jobs":[{"method":"simulate"}]}"#).unwrap();
        assert!(parse_manifest(&no_circuit, Path::new(".")).is_err());
    }

    fn sleep_spec(path: PathBuf, timeout_ms: u64) -> JobSpec {
        JobSpec {
            index: 0,
            circuit: path,
            method: "selftest-sleep".to_string(),
            threshold_log2: -8.0,
            patterns: 4096,
            max_rounds: 2,
            seed: 1,
            timeout_ms,
        }
    }

    #[test]
    fn timeout_is_reported_not_fatal() {
        let dir = temp_dir("timeout");
        let path = write_bench(&dir, "slow.bench");
        // The sleeper out-sleeps any budget: the timeout path is forced
        // deterministically however fast the machine is.
        let line = run_job_isolated(&sleep_spec(path, 10), &RunControl::unlimited(), 0);
        assert_eq!(line.get("status").unwrap().as_str(), Some("timeout"));
        // Cooperative cancellation: the sleeper observed its token and
        // exited — no detached thread.
        assert_eq!(line.get("worker_exited").unwrap().as_bool(), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Current thread count of this process (Linux: /proc/self/status).
    #[cfg(target_os = "linux")]
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn timed_out_sleeper_does_not_leak_its_thread() {
        let dir = temp_dir("thread-leak");
        let path = write_bench(&dir, "slow.bench");
        let baseline = thread_count();
        let line = run_job_isolated(&sleep_spec(path, 20), &RunControl::unlimited(), 0);
        assert_eq!(line.get("status").unwrap().as_str(), Some("timeout"));
        assert_eq!(line.get("worker_exited").unwrap().as_bool(), Some(true));
        // The worker was joined, so the count returns to baseline (allow
        // a short settle for the OS to reap the thread).
        let mut settled = thread_count();
        for _ in 0..100 {
            if settled <= baseline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
            settled = thread_count();
        }
        assert!(
            settled <= baseline,
            "worker thread leaked: {settled} > baseline {baseline}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_cancel_drains_the_pool() {
        let dir = temp_dir("cancel");
        write_bench(&dir, "ok.bench");
        let manifest = Json::parse(
            r#"{"workers": 1, "jobs": [
                {"circuit": "ok.bench", "method": "selftest-sleep", "timeout_ms": 60000},
                {"circuit": "ok.bench", "method": "simulate", "patterns": 256}
            ]}"#,
        )
        .unwrap();
        let (_, specs) = parse_manifest(&manifest, &dir).unwrap();
        let control = RunControl::cancellable();
        control.cancel();
        let opts = BatchOptions {
            workers: 1,
            control: control.clone(),
            ..BatchOptions::default()
        };
        let mut out = Vec::new();
        let started = Instant::now();
        let summary = run_jobs_with(&opts, &specs, &mut out).unwrap();
        // The 60-second sleeper never ran to its own deadline.
        assert!(started.elapsed() < Duration::from_secs(30));
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.cancelled, 2);
        assert_eq!(summary.failed(), 2);
        for line in String::from_utf8(out).unwrap().lines() {
            let line = Json::parse(line).unwrap();
            assert_eq!(line.get("status").unwrap().as_str(), Some("cancelled"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flaky_job_recovers_with_retries() {
        let dir = temp_dir("flaky");
        let path = write_bench(&dir, "flaky.bench");
        let marker = path.with_extension("flaky-marker");
        std::fs::remove_file(&marker).ok();
        let spec = JobSpec {
            index: 0,
            circuit: path.clone(),
            method: "selftest-flaky".to_string(),
            threshold_log2: -8.0,
            patterns: 256,
            max_rounds: 2,
            seed: 1,
            timeout_ms: 30_000,
        };
        // Without retries the transient failure is final.
        std::fs::remove_file(&marker).ok();
        let line = run_job_isolated(&spec, &RunControl::unlimited(), 0);
        assert_eq!(line.get("status").unwrap().as_str(), Some("error"));
        // With one retry the second attempt recovers.
        std::fs::remove_file(&marker).ok();
        let line = run_job_isolated(&spec, &RunControl::unlimited(), 1);
        assert_eq!(line.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(line.get("attempts").unwrap().as_u64(), Some(2));
        assert_eq!(line.get("recovered").unwrap().as_bool(), Some(true));
        std::fs::remove_file(&marker).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_completed_jobs_and_appends() {
        let dir = temp_dir("resume");
        write_bench(&dir, "ok.bench");
        let manifest = Json::parse(
            r#"{"workers": 2, "jobs": [
                {"circuit": "ok.bench", "method": "simulate", "patterns": 256},
                {"circuit": "missing.bench", "method": "simulate"},
                {"circuit": "ok.bench", "method": "simulate", "patterns": 128}
            ]}"#,
        )
        .unwrap();
        let (workers, specs) = parse_manifest(&manifest, &dir).unwrap();
        let mut first = Vec::new();
        run_jobs(workers, &specs, &mut first).unwrap();
        let first = String::from_utf8(first).unwrap();
        let done = completed_indices(&first);
        assert_eq!(done, vec![0, 2]);

        let opts = BatchOptions {
            workers,
            skip: done,
            ..BatchOptions::default()
        };
        let mut second = Vec::new();
        let summary = run_jobs_with(&opts, &specs, &mut second).unwrap();
        assert_eq!(summary.skipped, 2);
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.error, 1); // only the missing-circuit job re-ran
        let second = String::from_utf8(second).unwrap();
        let lines: Vec<Json> = second.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].get("job").unwrap().as_u64(), Some(1));
        // Appending the resumed lines keeps the checkpoint parseable.
        let merged = format!("{first}{second}");
        assert_eq!(completed_indices(&merged), vec![0, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn completed_indices_takes_the_last_line_per_job() {
        let jsonl = concat!(
            "{\"job\": 0, \"status\": \"ok\"}\n",
            "{\"job\": 1, \"status\": \"timeout\"}\n",
            "not json at all\n",
            "{\"job\": 1, \"status\": \"ok\"}\n",
            "{\"job\": 2, \"status\": \"ok\"}\n",
            "{\"job\": 2, \"status\": \"error\"}\n",
        );
        assert_eq!(completed_indices(jsonl), vec![0, 1]);
    }

    #[test]
    fn deadline_interrupted_optimize_reports_partial_timeout() {
        let dir = temp_dir("partial");
        let path = write_bench(&dir, "deep.bench");
        // A zero-ish deadline interrupts the first measurement; the job
        // reports a timeout with no partial plan rather than an error.
        let spec = JobSpec {
            index: 0,
            circuit: path,
            method: "optimize".to_string(),
            threshold_log2: -8.0,
            patterns: 1 << 20,
            max_rounds: 4,
            seed: 1,
            timeout_ms: 0,
        };
        let line = run_job_isolated(&spec, &RunControl::unlimited(), 0);
        assert_eq!(line.get("status").unwrap().as_str(), Some("timeout"));
        assert_eq!(line.get("worker_exited").unwrap().as_bool(), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
