//! The line-delimited JSON session server behind `tpi serve`.
//!
//! One request per line on stdin, one response per line on stdout — the
//! engine session (and all of its caches) persists across requests, so a
//! driving process pays for analyses and full simulation once and for
//! incremental work afterwards.
//!
//! Requests (`cmd` selects the operation):
//!
//! * `{"cmd":"load","path":"c432.bench"}` or
//!   `{"cmd":"load","bench":"INPUT(a)\n..."}` — open a session; optional
//!   `"patterns"` and `"seed"` configure the measurement.
//! * `{"cmd":"coverage"}` — measure (cached / incremental).
//! * `{"cmd":"insert","node":"g17","kind":"op"}` — apply a test point
//!   (`op`, `cp-and`, `cp-or`, `tp`) with incremental re-measurement.
//! * `{"cmd":"optimize","threshold_log2":-8,"max_rounds":8}` — run the
//!   constructive loop on the session.
//! * `{"cmd":"stats"}` — cache/simulation counters.
//! * `{"cmd":"quit"}` — end the session.
//!
//! Every response carries `"ok"`; failures carry `"error"` and leave the
//! session usable.

use std::io::{BufRead, Write};

use tpi_core::Threshold;
use tpi_netlist::bench_format::parse_bench;
use tpi_netlist::{TestPoint, TestPointKind};

use crate::json::Json;
use crate::{EngineConfig, OptimizeConfig, TpiEngine};

/// The mutable state of one serve session.
#[derive(Default)]
pub struct ServeState {
    engine: Option<TpiEngine>,
}

impl ServeState {
    /// Fresh, with no circuit loaded.
    pub fn new() -> ServeState {
        ServeState::default()
    }

    /// Handle one request line; returns the response line, or `None` for
    /// `quit`.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Some(error_line("empty request"));
        }
        let request = match Json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => return Some(error_line(&format!("bad JSON: {e}"))),
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or("");
        if cmd == "quit" {
            return None;
        }
        let response = self.dispatch(cmd, &request).unwrap_or_else(error_json);
        Some(response.to_string())
    }

    fn dispatch(&mut self, cmd: &str, request: &Json) -> Result<Json, String> {
        match cmd {
            "load" => self.cmd_load(request),
            "coverage" => {
                let engine = self.engine_mut()?;
                let result = engine.simulate().map_err(|e| e.to_string())?;
                Ok(Json::obj([
                    ("ok", Json::from(true)),
                    ("coverage", Json::from(result.coverage())),
                    ("faults", Json::from(result.fault_count())),
                    ("detected", Json::from(result.detected_count())),
                    ("patterns", Json::from(result.patterns_applied())),
                ]))
            }
            "insert" => self.cmd_insert(request),
            "optimize" => self.cmd_optimize(request),
            "stats" => {
                let engine = self.engine_mut()?;
                let s = engine.stats().clone();
                Ok(Json::obj([
                    ("ok", Json::from(true)),
                    ("analysis_rebuilds", Json::from(s.analysis_rebuilds)),
                    ("analysis_hits", Json::from(s.analysis_hits)),
                    ("full_sims", Json::from(s.full_sims)),
                    ("incremental_sims", Json::from(s.incremental_sims)),
                    ("faults_resimulated", Json::from(s.faults_resimulated)),
                    ("faults_skipped", Json::from(s.faults_skipped)),
                    ("memo_hits", Json::from(s.memo_hits)),
                    ("memo_misses", Json::from(s.memo_misses)),
                    ("memo_entries", Json::from(engine.memo_len())),
                ]))
            }
            "" => Err("missing 'cmd'".to_string()),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }

    fn engine_mut(&mut self) -> Result<&mut TpiEngine, String> {
        self.engine
            .as_mut()
            .ok_or_else(|| "no circuit loaded (send a 'load' first)".to_string())
    }

    fn cmd_load(&mut self, request: &Json) -> Result<Json, String> {
        let text = if let Some(bench) = request.get("bench").and_then(Json::as_str) {
            bench.to_string()
        } else if let Some(path) = request.get("path").and_then(Json::as_str) {
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?
        } else {
            return Err("'load' needs 'bench' text or a 'path'".to_string());
        };
        let circuit = parse_bench(&text).map_err(|e| format!("parse: {e}"))?;
        let config = EngineConfig {
            patterns: request
                .get("patterns")
                .and_then(Json::as_u64)
                .unwrap_or(4096),
            seed: request
                .get("seed")
                .and_then(Json::as_u64)
                .unwrap_or(0xDAC_1987),
            verify_incremental: false,
            ..EngineConfig::default()
        };
        let engine = TpiEngine::new(circuit, config).map_err(|e| e.to_string())?;
        let response = Json::obj([
            ("ok", Json::from(true)),
            ("name", Json::from(engine.circuit().name())),
            ("nodes", Json::from(engine.circuit().node_count())),
            ("inputs", Json::from(engine.circuit().inputs().len())),
            ("outputs", Json::from(engine.circuit().outputs().len())),
            ("faults", Json::from(engine.universe().len())),
        ]);
        self.engine = Some(engine);
        Ok(response)
    }

    fn cmd_insert(&mut self, request: &Json) -> Result<Json, String> {
        let node_name = request
            .get("node")
            .and_then(Json::as_str)
            .ok_or("'insert' needs 'node'")?
            .to_string();
        let kind = match request.get("kind").and_then(Json::as_str).unwrap_or("op") {
            "op" => TestPointKind::Observe,
            "cp-and" => TestPointKind::ControlAnd,
            "cp-or" => TestPointKind::ControlOr,
            "tp" => TestPointKind::Full,
            other => return Err(format!("unknown kind '{other}'")),
        };
        let engine = self.engine_mut()?;
        let node = engine
            .circuit()
            .find_node(&node_name)
            .ok_or_else(|| format!("no node named '{node_name}'"))?;
        engine
            .apply(TestPoint::new(node, kind))
            .map_err(|e| e.to_string())?;
        let coverage = engine.coverage().map_err(|e| e.to_string())?;
        Ok(Json::obj([
            ("ok", Json::from(true)),
            ("coverage", Json::from(coverage)),
            ("nodes", Json::from(engine.circuit().node_count())),
            (
                "faults_resimulated",
                Json::from(engine.stats().faults_resimulated),
            ),
        ]))
    }

    fn cmd_optimize(&mut self, request: &Json) -> Result<Json, String> {
        let threshold = Threshold::from_log2(
            request
                .get("threshold_log2")
                .and_then(Json::as_f64)
                .unwrap_or(-10.0),
        );
        let cfg = OptimizeConfig {
            max_rounds: request
                .get("max_rounds")
                .and_then(Json::as_u64)
                .unwrap_or(8) as usize,
            max_cost: request
                .get("max_cost")
                .and_then(Json::as_f64)
                .unwrap_or(f64::INFINITY),
            target_coverage: request
                .get("target_coverage")
                .and_then(Json::as_f64)
                .unwrap_or(1.0),
            ..OptimizeConfig::default()
        };
        let engine = self.engine_mut()?;
        let outcome = engine
            .optimize(threshold, &cfg)
            .map_err(|e| e.to_string())?;
        let points: Vec<Json> = outcome
            .plan
            .test_points()
            .iter()
            .map(|tp| {
                Json::obj([
                    ("node", Json::from(outcome.modified.node_name(tp.node))),
                    ("kind", Json::from(tp.kind.mnemonic())),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::from(true)),
            ("coverage", Json::from(outcome.final_coverage)),
            (
                "baseline_coverage",
                Json::from(outcome.rounds.first().map_or(0.0, |r| r.coverage)),
            ),
            ("cost", Json::from(outcome.plan.cost())),
            ("rounds", Json::from(outcome.rounds.len())),
            ("points", Json::Arr(points)),
        ]))
    }
}

fn error_json(message: String) -> Json {
    Json::obj([("ok", Json::from(false)), ("error", Json::from(message))])
}

fn error_line(message: &str) -> String {
    error_json(message.to_string()).to_string()
}

/// Serve requests from `input` until EOF or a `quit`, writing responses
/// (and flushing after each, so pipes stay interactive) to `output`.
///
/// # Errors
///
/// Only I/O failures on the streams.
pub fn serve(input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
    let mut state = ServeState::new();
    for line in input.lines() {
        let line = line?;
        match state.handle_line(&line) {
            Some(response) => {
                writeln!(output, "{response}")?;
                output.flush()?;
            }
            None => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = "INPUT(a)\\nINPUT(b)\\nINPUT(c)\\nINPUT(d)\\n\
                         g0 = AND(a, b)\\ng1 = AND(c, d)\\ny = AND(g0, g1)\\nOUTPUT(y)\\n";

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        v
    }

    #[test]
    fn session_flow() {
        let mut state = ServeState::new();
        let load = state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
            ))
            .unwrap();
        let load = ok(&load);
        assert_eq!(load.get("inputs").unwrap().as_u64(), Some(4));

        let coverage = ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
        assert!(coverage.get("coverage").unwrap().as_f64().unwrap() > 0.5);

        let insert = ok(&state
            .handle_line(r#"{"cmd":"insert","node":"g0","kind":"op"}"#)
            .unwrap());
        assert!(insert.get("faults_resimulated").unwrap().as_u64().unwrap() > 0);

        let stats = ok(&state.handle_line(r#"{"cmd":"stats"}"#).unwrap());
        assert_eq!(stats.get("incremental_sims").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("full_sims").unwrap().as_u64(), Some(1));

        assert!(state.handle_line(r#"{"cmd":"quit"}"#).is_none());
    }

    #[test]
    fn optimize_over_serve() {
        let mut state = ServeState::new();
        ok(&state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":256}}"#
            ))
            .unwrap());
        let response = ok(&state
            .handle_line(r#"{"cmd":"optimize","threshold_log2":-4,"max_rounds":2}"#)
            .unwrap());
        assert!(response.get("rounds").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut state = ServeState::new();
        let no_load = state.handle_line(r#"{"cmd":"coverage"}"#).unwrap();
        assert_eq!(
            Json::parse(&no_load)
                .unwrap()
                .get("ok")
                .and_then(Json::as_bool),
            Some(false)
        );
        let bad_json = state.handle_line("{nope").unwrap();
        assert!(bad_json.contains("bad JSON"));
        let unknown = state.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap();
        assert!(unknown.contains("unknown cmd"));

        ok(&state
            .handle_line(&format!(r#"{{"cmd":"load","bench":"{BENCH}"}}"#))
            .unwrap());
        let missing_node = state
            .handle_line(r#"{"cmd":"insert","node":"ghost"}"#)
            .unwrap();
        assert!(missing_node.contains("no node named"));
        ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
    }

    #[test]
    fn serve_loop_reads_until_quit() {
        let script = format!(
            "{{\"cmd\":\"load\",\"bench\":\"{BENCH}\"}}\n{{\"cmd\":\"coverage\"}}\n{{\"cmd\":\"quit\"}}\n{{\"cmd\":\"coverage\"}}\n"
        );
        let mut out = Vec::new();
        serve(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Two responses; the post-quit request is never processed.
        assert_eq!(text.lines().count(), 2);
    }
}
