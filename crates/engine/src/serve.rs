//! The line-delimited JSON session server behind `tpi serve`.
//!
//! One request per line on stdin, one response per line on stdout — the
//! engine session (and all of its caches) persists across requests, so a
//! driving process pays for analyses and full simulation once and for
//! incremental work afterwards.
//!
//! Requests (`cmd` — `method` is accepted as an alias — selects the
//! operation):
//!
//! * `{"cmd":"load","path":"c432.bench"}` or
//!   `{"cmd":"load","bench":"INPUT(a)\n..."}` — open a session; optional
//!   `"patterns"` and `"seed"` configure the measurement.
//! * `{"cmd":"coverage"}` — measure (cached / incremental).
//! * `{"cmd":"insert","node":"g17","kind":"op"}` — apply a test point
//!   (`op`, `cp-and`, `cp-or`, `tp`) with incremental re-measurement.
//! * `{"cmd":"optimize","threshold_log2":-8,"max_rounds":8}` — run the
//!   constructive loop on the session.
//! * `{"cmd":"stats"}` — cache/simulation counters.
//! * `{"cmd":"metrics"}` — the full observability snapshot (engine and
//!   fault-sim counters, request-latency histograms, error counters) as
//!   a JSON object; works with or without a loaded session.
//! * `{"cmd":"selftest-sleep","ms":100}` — testing aid: hold the session
//!   busy for `ms` milliseconds (capped at 5 s), so admission control and
//!   slow-client isolation can be exercised deterministically.
//! * `{"cmd":"shutdown"}` — acknowledge, then stop serving (graceful:
//!   the in-flight request — this one — is answered before the loop
//!   exits; EOF on the input behaves the same without the ack).
//! * `{"cmd":"quit"}` — end the session without a response.
//!
//! # Robustness
//!
//! The server never dies on a request: malformed JSON, unknown methods,
//! oversized circuits and even panics inside the engine come back as
//! error responses (`"ok": false` plus a machine-readable `"code"`) and
//! leave the loop serving. Two per-request/han-wide guards:
//!
//! * **Deadlines** — any request may carry `"deadline_ms"`; the engine
//!   runs the operation under a [`RunControl`](crate::RunControl) token
//!   with that deadline. An interrupted `optimize` still succeeds with
//!   the best plan committed so far and `"partial": true`; an
//!   interrupted measurement reports code `"deadline_expired"` and the
//!   next request (under a fresh token) simply re-measures.
//! * **Resource caps** — [`ServeLimits`] bounds circuit size and
//!   pattern budget; a request beyond a cap is rejected with code
//!   `"limit_exceeded"` before any work happens.

use std::io::{BufRead, Write};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpi_core::{Threshold, TpiError};
use tpi_netlist::bench_format::parse_bench;
use tpi_netlist::{TestPoint, TestPointKind};
use tpi_obs::Registry;
use tpi_sim::RunControl;

use crate::json::Json;
use crate::memo::SharedDpMemo;
use crate::{EngineConfig, OptimizeConfig, TpiEngine};

/// Resource caps enforced per request (`None` = uncapped).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeLimits {
    /// Largest circuit (node count) a `load` accepts.
    pub max_gates: Option<usize>,
    /// Largest measurement pattern budget a `load` accepts.
    pub max_patterns: Option<u64>,
}

/// A structured request failure: a machine-readable code plus a
/// human-readable message.
struct ServeError {
    code: &'static str,
    message: String,
}

fn err(code: &'static str, message: impl Into<String>) -> ServeError {
    ServeError {
        code,
        message: message.into(),
    }
}

/// The mutable state of one serve session.
#[derive(Default)]
pub struct ServeState {
    engine: Option<TpiEngine>,
    limits: ServeLimits,
    done: bool,
    /// Shared with every engine the session loads, so one `metrics`
    /// snapshot covers engine counters, `sim.*` kernel counters and the
    /// server's own request instrumentation.
    registry: Arc<Registry>,
    /// When set, engines are opened over this cross-session DP memo
    /// ([`TpiEngine::with_shared_memo`]) instead of a private one.
    shared_memo: Option<Arc<SharedDpMemo>>,
}

impl ServeState {
    /// Fresh, with no circuit loaded and no resource caps.
    pub fn new() -> ServeState {
        ServeState::default()
    }

    /// Fresh, with resource caps.
    pub fn with_limits(limits: ServeLimits) -> ServeState {
        ServeState {
            limits,
            ..ServeState::default()
        }
    }

    /// Fresh, with resource caps, a caller-supplied registry (typically
    /// one registry spanning every session of a server, so per-command
    /// latency histograms and engine counters aggregate fleet-wide) and,
    /// optionally, a cross-session [`SharedDpMemo`] every engine this
    /// session loads will replay region DP solutions from.
    pub fn with_shared(
        limits: ServeLimits,
        registry: Arc<Registry>,
        shared_memo: Option<Arc<SharedDpMemo>>,
    ) -> ServeState {
        ServeState {
            limits,
            registry,
            shared_memo,
            ..ServeState::default()
        }
    }

    /// `true` once a `shutdown` request has been acknowledged; the serve
    /// loop stops reading after the current response is written.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// The session's metrics registry (shared with every loaded engine).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record a finished request — latency under
    /// `serve.request_us.<method>`, total under `serve.requests`, error
    /// responses under `serve.errors.<code>` — and render the response.
    /// Methods outside the fixed command set are pooled under `other`
    /// so client typos cannot grow the metric namespace unboundedly.
    fn finish(&self, method: &str, started: Instant, response: Json) -> String {
        let label = match method {
            "load" | "coverage" | "insert" | "optimize" | "stats" | "metrics" | "shutdown" => {
                method
            }
            "" => "invalid",
            _ => "other",
        };
        self.registry.counter("serve.requests").inc();
        self.registry
            .histogram(&format!("serve.request_us.{label}"))
            .record(started.elapsed().as_micros() as u64);
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            let code = response
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            self.registry.counter(&format!("serve.errors.{code}")).inc();
        }
        response.to_string()
    }

    /// Handle one request line; returns the response line, or `None` for
    /// `quit` (no response, stop serving).
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let started = Instant::now();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            let e = error_json(err("bad_request", "empty request"));
            return Some(self.finish("", started, e));
        }
        let request = match Json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                let e = error_json(err("bad_json", format!("bad JSON: {e}")));
                return Some(self.finish("", started, e));
            }
        };
        // `method` is accepted as an alias of `cmd`.
        let method = request
            .get("cmd")
            .or_else(|| request.get("method"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if method == "quit" {
            return None;
        }
        if method == "shutdown" {
            self.done = true;
            let ack = Json::obj([("ok", Json::from(true)), ("shutdown", Json::from(true))]);
            return Some(self.finish(&method, started, ack));
        }

        // Run the operation under the request's deadline (if any); the
        // token is reset afterwards so later requests start fresh.
        let deadline = request
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        if let Some(engine) = self.engine.as_mut() {
            engine.set_control(RunControl::with_limits(deadline, None));
        }
        let dispatched =
            std::panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(&method, &request)));
        if let Some(engine) = self.engine.as_mut() {
            engine.set_control(RunControl::unlimited());
        }
        let response = match dispatched {
            Ok(Ok(response)) => response,
            Ok(Err(e)) => error_json(e),
            Err(panic) => {
                // A panicked operation may have left the session's caches
                // inconsistent: drop the session rather than serve from a
                // corrupted one. The server itself stays alive.
                self.engine = None;
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "engine panicked".to_string());
                error_json(err(
                    "panic",
                    format!("engine panicked ({message}); session reset, send 'load' again"),
                ))
            }
        };
        Some(self.finish(&method, started, response))
    }

    fn dispatch(&mut self, method: &str, request: &Json) -> Result<Json, ServeError> {
        match method {
            "load" => self.cmd_load(request),
            "coverage" => {
                let engine = self.engine_mut()?;
                let result = engine.simulate().map_err(engine_error)?;
                Ok(Json::obj([
                    ("ok", Json::from(true)),
                    ("coverage", Json::from(result.coverage())),
                    ("faults", Json::from(result.fault_count())),
                    ("detected", Json::from(result.detected_count())),
                    ("patterns", Json::from(result.patterns_applied())),
                ]))
            }
            "insert" => self.cmd_insert(request),
            "optimize" => self.cmd_optimize(request),
            "stats" => {
                let engine = self.engine_mut()?;
                let s = engine.stats();
                Ok(Json::obj([
                    ("ok", Json::from(true)),
                    ("analysis_rebuilds", Json::from(s.analysis_rebuilds)),
                    ("analysis_hits", Json::from(s.analysis_hits)),
                    ("full_sims", Json::from(s.full_sims)),
                    ("incremental_sims", Json::from(s.incremental_sims)),
                    ("faults_resimulated", Json::from(s.faults_resimulated)),
                    ("faults_skipped", Json::from(s.faults_skipped)),
                    ("memo_hits", Json::from(s.memo_hits)),
                    ("memo_misses", Json::from(s.memo_misses)),
                    ("memo_entries", Json::from(engine.memo_len())),
                ]))
            }
            "metrics" => {
                let rendered = self.registry.snapshot().to_json();
                let metrics = Json::parse(&rendered).expect("snapshot sink emits well-formed JSON");
                Ok(Json::obj([("ok", Json::from(true)), ("metrics", metrics)]))
            }
            // Testing aid (mirrors batch's selftest jobs): hold the
            // session busy for `ms` wall-clock milliseconds, so admission
            // control and slow-client isolation are testable without
            // timing-sensitive workloads. Capped at 5 s.
            "selftest-sleep" => {
                let ms = request
                    .get("ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    .min(5_000);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(Json::obj([
                    ("ok", Json::from(true)),
                    ("slept_ms", Json::from(ms)),
                ]))
            }
            "" => Err(err("bad_request", "missing 'cmd'")),
            other => Err(err("unknown_method", format!("unknown cmd '{other}'"))),
        }
    }

    fn engine_mut(&mut self) -> Result<&mut TpiEngine, ServeError> {
        self.engine
            .as_mut()
            .ok_or_else(|| err("no_session", "no circuit loaded (send a 'load' first)"))
    }

    fn cmd_load(&mut self, request: &Json) -> Result<Json, ServeError> {
        let text = if let Some(bench) = request.get("bench").and_then(Json::as_str) {
            bench.to_string()
        } else if let Some(path) = request.get("path").and_then(Json::as_str) {
            std::fs::read_to_string(path).map_err(|e| err("io", format!("read {path}: {e}")))?
        } else {
            return Err(err("bad_request", "'load' needs 'bench' text or a 'path'"));
        };
        let patterns = request
            .get("patterns")
            .and_then(Json::as_u64)
            .unwrap_or(4096);
        if let Some(cap) = self.limits.max_patterns {
            if patterns > cap {
                return Err(err(
                    "limit_exceeded",
                    format!("{patterns} patterns exceed the server cap of {cap}"),
                ));
            }
        }
        let circuit = parse_bench(&text).map_err(|e| err("parse", format!("parse: {e}")))?;
        if let Some(cap) = self.limits.max_gates {
            if circuit.node_count() > cap {
                return Err(err(
                    "limit_exceeded",
                    format!(
                        "circuit has {} nodes, exceeding the server cap of {cap}",
                        circuit.node_count()
                    ),
                ));
            }
        }
        let config = EngineConfig {
            patterns,
            seed: request
                .get("seed")
                .and_then(Json::as_u64)
                .unwrap_or(0xDAC_1987),
            verify_incremental: false,
            ..EngineConfig::default()
        };
        let engine = match &self.shared_memo {
            Some(memo) => TpiEngine::with_shared_memo(
                circuit,
                config,
                self.registry.clone(),
                Arc::clone(memo),
            ),
            None => TpiEngine::with_registry(circuit, config, self.registry.clone()),
        }
        .map_err(engine_error)?;
        let response = Json::obj([
            ("ok", Json::from(true)),
            ("name", Json::from(engine.circuit().name())),
            ("nodes", Json::from(engine.circuit().node_count())),
            ("inputs", Json::from(engine.circuit().inputs().len())),
            ("outputs", Json::from(engine.circuit().outputs().len())),
            ("faults", Json::from(engine.universe().len())),
        ]);
        self.engine = Some(engine);
        Ok(response)
    }

    fn cmd_insert(&mut self, request: &Json) -> Result<Json, ServeError> {
        let node_name = request
            .get("node")
            .and_then(Json::as_str)
            .ok_or_else(|| err("bad_request", "'insert' needs 'node'"))?
            .to_string();
        let kind = match request.get("kind").and_then(Json::as_str).unwrap_or("op") {
            "op" => TestPointKind::Observe,
            "cp-and" => TestPointKind::ControlAnd,
            "cp-or" => TestPointKind::ControlOr,
            "tp" => TestPointKind::Full,
            other => return Err(err("bad_request", format!("unknown kind '{other}'"))),
        };
        let engine = self.engine_mut()?;
        let node = engine
            .circuit()
            .find_node(&node_name)
            .ok_or_else(|| err("not_found", format!("no node named '{node_name}'")))?;
        engine
            .apply(TestPoint::new(node, kind))
            .map_err(engine_error)?;
        let coverage = engine.coverage().map_err(engine_error)?;
        Ok(Json::obj([
            ("ok", Json::from(true)),
            ("coverage", Json::from(coverage)),
            ("nodes", Json::from(engine.circuit().node_count())),
            (
                "faults_resimulated",
                Json::from(engine.stats().faults_resimulated),
            ),
        ]))
    }

    fn cmd_optimize(&mut self, request: &Json) -> Result<Json, ServeError> {
        let threshold = Threshold::from_log2(
            request
                .get("threshold_log2")
                .and_then(Json::as_f64)
                .unwrap_or(-10.0),
        );
        let cfg = OptimizeConfig {
            max_rounds: request
                .get("max_rounds")
                .and_then(Json::as_u64)
                .unwrap_or(8) as usize,
            max_cost: request
                .get("max_cost")
                .and_then(Json::as_f64)
                .unwrap_or(f64::INFINITY),
            target_coverage: request
                .get("target_coverage")
                .and_then(Json::as_f64)
                .unwrap_or(1.0),
            ..OptimizeConfig::default()
        };
        let engine = self.engine_mut()?;
        let outcome = engine.optimize(threshold, &cfg).map_err(engine_error)?;
        let points: Vec<Json> = outcome
            .plan
            .test_points()
            .iter()
            .map(|tp| {
                Json::obj([
                    ("node", Json::from(outcome.modified.node_name(tp.node))),
                    ("kind", Json::from(tp.kind.mnemonic())),
                ])
            })
            .collect();
        let mut response = Json::obj([
            ("ok", Json::from(true)),
            ("coverage", Json::from(outcome.final_coverage)),
            (
                "baseline_coverage",
                Json::from(outcome.rounds.first().map_or(0.0, |r| r.coverage)),
            ),
            ("cost", Json::from(outcome.plan.cost())),
            ("rounds", Json::from(outcome.rounds.len())),
            ("points", Json::Arr(points)),
        ]);
        // Interrupted optimizes are still successes: the plan is the
        // exact prefix committed before the deadline (an anytime result),
        // flagged so the caller knows the loop did not run to completion.
        if let Some(reason) = outcome.interrupted {
            if let Json::Obj(map) = &mut response {
                map.insert("partial".to_string(), Json::from(true));
                map.insert("stopped".to_string(), Json::from(reason.to_string()));
            }
        }
        Ok(response)
    }
}

/// Map an engine failure to a structured serve error (interruptions get
/// their own code so drivers can tell "ran out of deadline" from "broke").
fn engine_error(e: TpiError) -> ServeError {
    match e {
        TpiError::Interrupted { reason } => {
            err("deadline_expired", format!("interrupted: {reason}"))
        }
        other => err("engine", other.to_string()),
    }
}

fn error_json(e: ServeError) -> Json {
    Json::obj([
        ("ok", Json::from(false)),
        ("code", Json::from(e.code)),
        ("error", Json::from(e.message)),
    ])
}

/// Serve requests from `input` until EOF, a `quit`, or an acknowledged
/// `shutdown`, writing responses (and flushing after each, so pipes stay
/// interactive) to `output`. Default (uncapped) [`ServeLimits`].
///
/// # Errors
///
/// Only I/O failures on the streams.
pub fn serve(input: impl BufRead, output: impl Write) -> std::io::Result<()> {
    serve_with(ServeLimits::default(), input, output)
}

/// [`serve`] with explicit resource caps.
///
/// # Errors
///
/// Only I/O failures on the streams.
pub fn serve_with(
    limits: ServeLimits,
    input: impl BufRead,
    output: impl Write,
) -> std::io::Result<()> {
    serve_session(&mut ServeState::with_limits(limits), input, output)
}

/// Drive a caller-constructed [`ServeState`] over a request/response
/// stream pair until EOF, `quit` or an acknowledged `shutdown`. Front
/// ends that need a shared registry or a cross-session memo build the
/// state with [`ServeState::with_shared`] and hand it here; the state
/// stays inspectable afterwards (e.g. for a final metrics snapshot).
///
/// # Errors
///
/// Only I/O failures on the streams.
pub fn serve_session(
    state: &mut ServeState,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        match state.handle_line(&line) {
            Some(response) => {
                writeln!(output, "{response}")?;
                output.flush()?;
            }
            None => break,
        }
        if state.finished() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = "INPUT(a)\\nINPUT(b)\\nINPUT(c)\\nINPUT(d)\\n\
                         g0 = AND(a, b)\\ng1 = AND(c, d)\\ny = AND(g0, g1)\\nOUTPUT(y)\\n";

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        v
    }

    fn failed(response: &str, code: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "{response}"
        );
        assert_eq!(
            v.get("code").and_then(Json::as_str),
            Some(code),
            "{response}"
        );
        v
    }

    #[test]
    fn session_flow() {
        let mut state = ServeState::new();
        let load = state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
            ))
            .unwrap();
        let load = ok(&load);
        assert_eq!(load.get("inputs").unwrap().as_u64(), Some(4));

        let coverage = ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
        assert!(coverage.get("coverage").unwrap().as_f64().unwrap() > 0.5);

        let insert = ok(&state
            .handle_line(r#"{"cmd":"insert","node":"g0","kind":"op"}"#)
            .unwrap());
        assert!(insert.get("faults_resimulated").unwrap().as_u64().unwrap() > 0);

        let stats = ok(&state.handle_line(r#"{"cmd":"stats"}"#).unwrap());
        assert_eq!(stats.get("incremental_sims").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("full_sims").unwrap().as_u64(), Some(1));

        assert!(state.handle_line(r#"{"cmd":"quit"}"#).is_none());
    }

    #[test]
    fn optimize_over_serve() {
        let mut state = ServeState::new();
        ok(&state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":256}}"#
            ))
            .unwrap());
        let response = ok(&state
            .handle_line(r#"{"cmd":"optimize","threshold_log2":-4,"max_rounds":2}"#)
            .unwrap());
        assert!(response.get("rounds").unwrap().as_u64().unwrap() >= 1);
        assert!(response.get("partial").is_none());
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut state = ServeState::new();
        failed(
            &state.handle_line(r#"{"cmd":"coverage"}"#).unwrap(),
            "no_session",
        );
        failed(&state.handle_line("{nope").unwrap(), "bad_json");
        failed(
            &state.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap(),
            "unknown_method",
        );
        failed(&state.handle_line("").unwrap(), "bad_request");

        ok(&state
            .handle_line(&format!(r#"{{"cmd":"load","bench":"{BENCH}"}}"#))
            .unwrap());
        failed(
            &state
                .handle_line(r#"{"cmd":"insert","node":"ghost"}"#)
                .unwrap(),
            "not_found",
        );
        ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
    }

    #[test]
    fn metrics_round_trip_over_serve() {
        let mut state = ServeState::new();
        // Works before any load: only the server's own counters exist.
        let empty = ok(&state.handle_line(r#"{"cmd":"metrics"}"#).unwrap());
        assert!(empty.get("metrics").is_some());

        ok(&state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
            ))
            .unwrap());
        ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
        failed(
            &state.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap(),
            "unknown_method",
        );
        let response = ok(&state.handle_line(r#"{"cmd":"metrics"}"#).unwrap());
        let metrics = response.get("metrics").unwrap();
        // Engine counters, kernel counters and the server's own request
        // instrumentation all land in one snapshot.
        let counter = |name: &str| {
            metrics
                .get(name)
                .and_then(|m| m.get("value"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("missing counter {name}: {metrics}"))
        };
        assert_eq!(counter("engine.full_sims"), 1);
        assert!(counter("sim.blocks") > 0);
        assert!(counter("serve.requests") >= 3);
        assert_eq!(counter("serve.errors.unknown_method"), 1);
        let latency = metrics
            .get("serve.request_us.coverage")
            .expect("coverage latency histogram");
        assert_eq!(
            latency.get("count").and_then(Json::as_u64),
            Some(1),
            "{latency}"
        );
    }

    #[test]
    fn non_timing_metrics_are_deterministic_across_sessions() {
        // Two identical request scripts must produce bit-identical
        // non-timing metrics: every sim/engine counter is a function of
        // (circuit, stream, faults), never of the clock.
        let run = || {
            let mut state = ServeState::new();
            ok(&state
                .handle_line(&format!(
                    r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
                ))
                .unwrap());
            ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
            ok(&state
                .handle_line(r#"{"cmd":"insert","node":"g0","kind":"op"}"#)
                .unwrap());
            let mut snapshot = state.registry().snapshot();
            snapshot.retain(|name| !name.contains("_us") && !name.contains("_ms"));
            snapshot
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn method_is_an_alias_for_cmd() {
        let mut state = ServeState::new();
        ok(&state
            .handle_line(&format!(r#"{{"method":"load","bench":"{BENCH}"}}"#))
            .unwrap());
        ok(&state.handle_line(r#"{"method":"coverage"}"#).unwrap());
    }

    #[test]
    fn resource_caps_reject_oversized_requests() {
        let mut state = ServeState::with_limits(ServeLimits {
            max_gates: Some(3),
            max_patterns: Some(1024),
        });
        // 7 nodes > 3: rejected before any analysis runs.
        failed(
            &state
                .handle_line(&format!(r#"{{"cmd":"load","bench":"{BENCH}"}}"#))
                .unwrap(),
            "limit_exceeded",
        );
        failed(
            &state
                .handle_line(&format!(
                    r#"{{"cmd":"load","bench":"{BENCH}","patterns":4096}}"#
                ))
                .unwrap(),
            "limit_exceeded",
        );
        // The server survives and accepts an in-budget load.
        let mut roomy = ServeState::with_limits(ServeLimits {
            max_gates: Some(64),
            max_patterns: Some(1024),
        });
        ok(&roomy
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
            ))
            .unwrap());
    }

    #[test]
    fn mid_stream_deadline_interrupts_and_session_recovers() {
        let mut state = ServeState::new();
        ok(&state
            .handle_line(&format!(
                r#"{{"cmd":"load","bench":"{BENCH}","patterns":512}}"#
            ))
            .unwrap());
        // A zero deadline interrupts the measurement immediately.
        failed(
            &state
                .handle_line(r#"{"cmd":"coverage","deadline_ms":0}"#)
                .unwrap(),
            "deadline_expired",
        );
        // An interrupted optimize is an anytime success: empty prefix
        // plan, flagged partial.
        let partial = ok(&state
            .handle_line(r#"{"cmd":"optimize","deadline_ms":0,"max_rounds":4}"#)
            .unwrap());
        assert_eq!(partial.get("partial").and_then(Json::as_bool), Some(true));
        assert_eq!(partial.get("points").unwrap().as_arr().unwrap().len(), 0);
        // The deadline does not outlive its request: a fresh token lets
        // the same session measure to completion.
        ok(&state.handle_line(r#"{"cmd":"coverage"}"#).unwrap());
    }

    #[test]
    fn shutdown_acks_then_stops_the_loop() {
        let script = format!(
            "{{\"cmd\":\"load\",\"bench\":\"{BENCH}\"}}\n{{\"method\":\"shutdown\"}}\n{{\"cmd\":\"coverage\"}}\n"
        );
        let mut out = Vec::new();
        serve(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The in-flight request is answered, the shutdown acknowledged,
        // the post-shutdown request never processed.
        assert_eq!(lines.len(), 2);
        assert_eq!(
            ok(lines[1]).get("shutdown").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn serve_loop_reads_until_quit() {
        let script = format!(
            "{{\"cmd\":\"load\",\"bench\":\"{BENCH}\"}}\n{{\"cmd\":\"coverage\"}}\n{{\"cmd\":\"quit\"}}\n{{\"cmd\":\"coverage\"}}\n"
        );
        let mut out = Vec::new();
        serve(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Two responses; the post-quit request is never processed.
        assert_eq!(text.lines().count(), 2);
    }
}
