//! A minimal JSON value, parser and writer.
//!
//! The build environment has no crates.io access, so the batch/serve
//! front ends cannot rely on `serde`; this module implements the small
//! JSON subset they need: UTF-8 text, `\uXXXX`-free escapes on output
//! (input accepts them), f64 numbers, and object key order preserved as
//! written.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) — deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Serializes compactly (no whitespace), with `NaN`/infinite numbers
/// rendered as `null` (JSON has no representation for them).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0b1100_0000 == 0b1000_0000 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end]).map_err(|_| "invalid UTF-8")?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\"y\n","c":true,"d":null,"e":{}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-8.5").unwrap().as_f64(), Some(-8.5));
        assert_eq!(Json::parse("-8.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café → naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café → naïve"));
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn object_output_is_deterministic() {
        let v = Json::obj([("b", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.to_string(), r#"{"a":2,"b":1}"#);
    }
}
