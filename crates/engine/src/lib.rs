//! Incremental test-point-insertion engine.
//!
//! `tpi-engine` wraps the workspace's analyses and optimizers in a
//! **long-lived session** ([`TpiEngine`]): open a circuit once, then
//! query, edit and optimize it repeatedly while the engine keeps every
//! derived artifact cached and consistent.
//!
//! * **Analysis caching** — topology, COP profile and FFR decomposition
//!   are rebuilt at most once per netlist version
//!   ([`Circuit::version`](tpi_netlist::Circuit::version) keys the
//!   invalidation);
//! * **Dirty-cone incremental re-simulation** — after a test-point
//!   insertion, only faults structurally entangled with the edit are
//!   re-simulated ([`dirty_line_mask`] documents the rule); the merged
//!   result is bit-identical to a from-scratch run, provable at runtime
//!   via [`EngineConfig::verify_incremental`];
//! * **DP memoization** — region subproblems are fingerprinted and their
//!   solutions replayed across rounds and edits;
//! * **Batch/serve front ends** — [`batch`] runs N×M job manifests across
//!   a worker pool with per-job timeout and panic isolation, emitting
//!   JSONL; [`serve`] speaks line-delimited JSON over stdin/stdout for
//!   long-running driver processes. Both rest on the dependency-free
//!   [`json`] module.
//!
//! # Example
//!
//! ```
//! use tpi_engine::{EngineConfig, TpiEngine};
//! use tpi_netlist::{CircuitBuilder, GateKind, TestPoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new("cone");
//! let xs = b.inputs(8, "x");
//! let root = b.balanced_tree(GateKind::And, &xs, "g")?;
//! b.output(root);
//! let mut engine = TpiEngine::new(b.finish()?, EngineConfig::default())?;
//!
//! let before = engine.coverage()?;
//! engine.apply(TestPoint::control_or(root))?; // incremental re-measure
//! assert!(engine.coverage()? >= before);
//! assert_eq!(engine.stats().incremental_sims, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod engine;
pub mod json;
mod memo;
pub mod serve;

pub use engine::{dirty_line_mask, Analyses, EngineConfig, EngineStats, OptimizeConfig, TpiEngine};
pub use memo::{SharedDpMemo, SharedMemoConfig};
pub use tpi_sim::{RunControl, StopReason};
