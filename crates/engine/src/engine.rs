//! The long-lived TPI session engine.

use std::sync::Arc;

use tpi_core::general::{extract_region, gather_candidates, ConstructiveOutcome, RoundReport};
use tpi_core::{
    CandidateEval, CostModel, DpConfig, DpOptimizer, Plan, TargetFault, Threshold, TpiError,
    TpiProblem,
};
use tpi_netlist::analysis::fanout_cone_mask;
use tpi_netlist::ffr::FfrDecomposition;
use tpi_netlist::transform::{apply_test_point, AppliedTestPoint};
use tpi_netlist::{Circuit, NodeId, TestPoint, Topology};
use tpi_obs::{Counter, Histogram, Registry};
use tpi_sim::{
    score_candidate_groups, BackendChoice, BaseDetections, DetectionMode, FaultSimResult,
    FaultSimulator, FaultSite, FaultUniverse, IndependentPatterns, RunControl, SimOptions,
    StopReason,
};
use tpi_testability::CopAnalysis;

use crate::memo::{region_fingerprint, DpMemo, SharedDpMemo};

/// Session-wide tuning for [`TpiEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Pattern budget of every coverage measurement (full or incremental).
    pub patterns: u64,
    /// Seed of the session's [`IndependentPatterns`] stream.
    pub seed: u64,
    /// Cross-check every incremental re-simulation against a full
    /// re-simulation and panic on divergence. Defaults to on in debug
    /// builds — the "prove bit-identity" path — and off in release.
    pub verify_incremental: bool,
    /// Fault-simulation block width in 64-bit words (patterns per kernel
    /// pass / 64); must be 0, 1, 2, 4 or 8, where 0 (the default)
    /// auto-selects by circuit size. Coverage measurements are
    /// bit-identical at every width — this only trades memory for
    /// throughput.
    pub block_words: usize,
    /// Fault-detection algorithm for every coverage measurement. Both
    /// modes are bit-identical; critical path tracing (the default) is
    /// faster on circuits with substantial fanout-free regions.
    pub detection: DetectionMode,
    /// Requested SIMD backend for the simulation kernels (resolved
    /// against the running CPU when a simulator is built; every backend
    /// is bit-identical). The resolved backend is published as the
    /// `sim.backend` gauge.
    pub simd_backend: BackendChoice,
    /// Candidate-group scoring path: the batched scorer (default) shares
    /// the base detection state and simulates only each group's dirty
    /// faults; `legacy` re-simulates every undetected fault per group.
    /// Both select bit-identical groups.
    pub candidate_eval: CandidateEval,
    /// Worker threads for batched candidate scoring (1 = sequential).
    /// The merge is group-index-ordered, so the selected group is
    /// bit-identical at every thread count.
    pub score_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            patterns: 4096,
            seed: 0xDAC_1987,
            verify_incremental: cfg!(debug_assertions),
            block_words: 0,
            detection: DetectionMode::default(),
            simd_backend: BackendChoice::default(),
            candidate_eval: CandidateEval::default(),
            score_threads: 1,
        }
    }
}

/// Counters exposing what the engine's caches actually did.
///
/// Since the observability migration this is a point-in-time *view*
/// assembled from the session's [`Registry`] (see
/// [`TpiEngine::registry`]); the registry additionally carries the
/// fault-sim kernel counters (`sim.*`), dirty-cone size and measurement
/// latency histograms that have no place in this flat struct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Derived-analysis bundles rebuilt (topology + COP + FFR).
    pub analysis_rebuilds: u64,
    /// Derived-analysis requests served from cache.
    pub analysis_hits: u64,
    /// Full fault simulations over the whole universe.
    pub full_sims: u64,
    /// Incremental (dirty-cone) re-simulations.
    pub incremental_sims: u64,
    /// Faults re-simulated by incremental passes.
    pub faults_resimulated: u64,
    /// Faults whose previous result was reused by incremental passes.
    pub faults_skipped: u64,
    /// Region DP solutions replayed from the memo.
    pub memo_hits: u64,
    /// Region DP solutions computed and cached.
    pub memo_misses: u64,
}

/// Live registry handles behind [`EngineStats`], plus the histograms the
/// flat struct cannot carry. Handles are resolved once at session
/// construction so the measurement paths never touch the registry lock.
struct EngineMetrics {
    registry: Arc<Registry>,
    analysis_rebuilds: Arc<Counter>,
    analysis_hits: Arc<Counter>,
    full_sims: Arc<Counter>,
    incremental_sims: Arc<Counter>,
    faults_resimulated: Arc<Counter>,
    faults_skipped: Arc<Counter>,
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    /// Dirty-cone size (faults re-simulated) per incremental pass.
    dirty_cone_faults: Arc<Histogram>,
    /// Wall clock of full measurement runs, microseconds.
    full_sim_us: Arc<Histogram>,
    /// Wall clock of incremental (dirty-cone) runs, microseconds.
    incremental_sim_us: Arc<Histogram>,
    /// Candidate groups scored by the search referee.
    candidates_evaluated: Arc<Counter>,
    /// Referee rounds (one `pick_by_simulation` call each).
    search_rounds: Arc<Counter>,
    /// Wall clock of one candidate group's evaluation, microseconds.
    candidate_eval_us: Arc<Histogram>,
}

impl EngineMetrics {
    fn new(registry: Arc<Registry>) -> EngineMetrics {
        EngineMetrics {
            analysis_rebuilds: registry.counter("engine.analysis_rebuilds"),
            analysis_hits: registry.counter("engine.analysis_hits"),
            full_sims: registry.counter("engine.full_sims"),
            incremental_sims: registry.counter("engine.incremental_sims"),
            faults_resimulated: registry.counter("engine.faults_resimulated"),
            faults_skipped: registry.counter("engine.faults_skipped"),
            memo_hits: registry.counter("engine.memo_hits"),
            memo_misses: registry.counter("engine.memo_misses"),
            dirty_cone_faults: registry.histogram("engine.dirty_cone_faults"),
            full_sim_us: registry.histogram("engine.full_sim_us"),
            incremental_sim_us: registry.histogram("engine.incremental_sim_us"),
            candidates_evaluated: registry.counter("search.candidates_evaluated"),
            search_rounds: registry.counter("search.rounds"),
            candidate_eval_us: registry.histogram("search.candidate_eval_us"),
            registry,
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            analysis_rebuilds: self.analysis_rebuilds.get(),
            analysis_hits: self.analysis_hits.get(),
            full_sims: self.full_sims.get(),
            incremental_sims: self.incremental_sims.get(),
            faults_resimulated: self.faults_resimulated.get(),
            faults_skipped: self.faults_skipped.get(),
            memo_hits: self.memo_hits.get(),
            memo_misses: self.memo_misses.get(),
        }
    }
}

/// Derived analyses of the current circuit, rebuilt together whenever the
/// netlist version moves.
pub struct Analyses {
    version: u64,
    /// Levelized topology.
    pub topo: Topology,
    /// COP controllability/observability profile.
    pub cop: CopAnalysis,
    /// Fanout-free-region decomposition.
    pub ffr: FfrDecomposition,
}

struct SimState {
    version: u64,
    result: FaultSimResult,
}

/// Loop tuning for [`TpiEngine::optimize`] (the engine-side constructive
/// driver; measurement patterns and seed come from [`EngineConfig`]).
#[derive(Clone, Debug)]
pub struct OptimizeConfig {
    /// Maximum insertion rounds.
    pub max_rounds: usize,
    /// Stop once fault coverage reaches this fraction.
    pub target_coverage: f64,
    /// Stop once plan cost reaches this budget.
    pub max_cost: f64,
    /// DP configuration used inside regions.
    pub dp: DpConfig,
    /// Region plans committed per round before re-measuring.
    pub regions_per_round: usize,
}

impl Default for OptimizeConfig {
    fn default() -> OptimizeConfig {
        OptimizeConfig {
            max_rounds: 24,
            target_coverage: 1.0,
            max_cost: f64::INFINITY,
            dp: DpConfig::default(),
            regions_per_round: 4,
        }
    }
}

/// A long-lived test-point-insertion session over one circuit.
///
/// The engine owns the circuit and keeps everything derived from it —
/// topology, COP profile, FFR decomposition, the collapsed fault universe
/// of the *base* circuit, and the latest coverage measurement — cached and
/// keyed by [`Circuit::version`], so repeated queries cost nothing and
/// edits invalidate exactly what they must.
///
/// Its differentiating capability is **dirty-cone incremental
/// re-simulation**: after [`apply`](TpiEngine::apply) inserts a test
/// point, only faults whose detection can have changed (those on lines
/// structurally entangled with the edit) are re-simulated; every other
/// fault keeps its previous first-detection verbatim. The session pattern
/// source is [`IndependentPatterns`], whose per-input streams are
/// invariant under input insertion, which is what makes the merged result
/// bit-identical to a from-scratch simulation of the edited circuit
/// (checked by [`EngineConfig::verify_incremental`] and property tests).
pub struct TpiEngine {
    circuit: Circuit,
    config: EngineConfig,
    universe: FaultUniverse,
    analyses: Option<Analyses>,
    sim: Option<SimState>,
    memo: MemoStore,
    metrics: EngineMetrics,
    control: RunControl,
}

/// Where a session's region DP solutions live: a private per-session map
/// (the default), or a [`SharedDpMemo`] many sessions replay from.
enum MemoStore {
    Private(DpMemo),
    Shared(Arc<SharedDpMemo>),
}

impl MemoStore {
    /// Cloning lookup (the private path also clones — the engine maps the
    /// plan through `to_parent` immediately, so no borrow outlives this).
    fn lookup(&self, fp: u64) -> Option<Option<Vec<TestPoint>>> {
        match self {
            MemoStore::Private(memo) => memo.get(fp).cloned(),
            MemoStore::Shared(memo) => memo.lookup(fp),
        }
    }

    fn insert(&mut self, fp: u64, plan: Option<Vec<TestPoint>>) {
        match self {
            MemoStore::Private(memo) => memo.insert(fp, plan),
            MemoStore::Shared(memo) => memo.insert(fp, plan),
        }
    }

    fn len(&self) -> usize {
        match self {
            MemoStore::Private(memo) => memo.len(),
            MemoStore::Shared(memo) => memo.len(),
        }
    }
}

impl TpiEngine {
    /// Open a session on `circuit`. The collapsed stuck-at universe of
    /// this base circuit is the coverage target for the whole session
    /// (test-logic faults introduced later are excluded, as in the
    /// literature's coverage tables).
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit is malformed or cyclic.
    pub fn new(circuit: Circuit, config: EngineConfig) -> Result<TpiEngine, TpiError> {
        TpiEngine::with_registry(circuit, config, Arc::new(Registry::new()))
    }

    /// Open a session whose metrics land in a caller-supplied
    /// [`Registry`], so a front end can aggregate engine counters,
    /// fault-sim kernel counters and its own request instrumentation in
    /// one snapshot. [`new`](TpiEngine::new) is this with a private
    /// registry.
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit is malformed or cyclic.
    pub fn with_registry(
        circuit: Circuit,
        config: EngineConfig,
        registry: Arc<Registry>,
    ) -> Result<TpiEngine, TpiError> {
        let universe = FaultUniverse::collapsed(&circuit)?;
        Ok(TpiEngine {
            circuit,
            config,
            universe,
            analyses: None,
            sim: None,
            memo: MemoStore::Private(DpMemo::default()),
            metrics: EngineMetrics::new(registry),
            control: RunControl::unlimited(),
        })
    }

    /// Open a session whose region DP solutions are read from and written
    /// to a [`SharedDpMemo`] instead of a private map, so subproblems
    /// solved by *any* session sharing the store replay here (and vice
    /// versa). Fingerprints are content-addressed and the DP is
    /// deterministic, so sharing is semantics-preserving: the session
    /// produces plans bit-identical to one with a private memo, whatever
    /// the other sessions do concurrently (property-tested in
    /// `tests/prop_shared_memo.rs`).
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit is malformed or cyclic.
    pub fn with_shared_memo(
        circuit: Circuit,
        config: EngineConfig,
        registry: Arc<Registry>,
        memo: Arc<SharedDpMemo>,
    ) -> Result<TpiEngine, TpiError> {
        let mut engine = TpiEngine::with_registry(circuit, config, registry)?;
        engine.memo = MemoStore::Shared(memo);
        Ok(engine)
    }

    /// Install a [`RunControl`] token governing every subsequent
    /// measurement and optimize round (front ends set a per-request or
    /// per-job token; [`RunControl::unlimited`] restores free running).
    /// Interrupted measurements are never cached, so a session survives
    /// interruption and serves the next request normally.
    pub fn set_control(&mut self, control: RunControl) {
        self.control = control;
    }

    /// The currently installed [`RunControl`] token.
    pub fn control(&self) -> &RunControl {
        &self.control
    }

    /// The current (possibly edited) circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access for out-of-band edits. Any mutation bumps
    /// [`Circuit::version`], so cached analyses and simulation state are
    /// invalidated lazily; the next measurement falls back to a full
    /// simulation (the incremental path needs the edit provenance that
    /// only [`apply`](TpiEngine::apply) records).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// The session's fault universe (collapsed faults of the base circuit).
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Cache/simulation counters accumulated so far, read out of the
    /// session registry (see [`EngineStats`]).
    pub fn stats(&self) -> EngineStats {
        self.metrics.stats()
    }

    /// The session's metrics registry: engine counters, `sim.*` kernel
    /// counters and latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Number of distinct region subproblems memoized so far.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// The derived analyses of the current circuit, rebuilding them only
    /// if the netlist changed since they were last computed.
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit became malformed.
    pub fn analyses(&mut self) -> Result<&Analyses, TpiError> {
        self.ensure_analyses()?;
        Ok(self.analyses.as_ref().expect("just ensured"))
    }

    fn ensure_analyses(&mut self) -> Result<(), TpiError> {
        let version = self.circuit.version();
        if self.analyses.as_ref().is_some_and(|a| a.version == version) {
            self.metrics.analysis_hits.inc();
            return Ok(());
        }
        let topo = Topology::of(&self.circuit)?;
        let cop = CopAnalysis::new(&self.circuit)?;
        let ffr = FfrDecomposition::of(&self.circuit, &topo);
        self.analyses = Some(Analyses {
            version,
            topo,
            cop,
            ffr,
        });
        self.metrics.analysis_rebuilds.inc();
        Ok(())
    }

    fn pattern_source(&self) -> IndependentPatterns {
        IndependentPatterns::new(self.circuit.inputs().len(), self.config.seed)
    }

    fn sim_options(&self) -> SimOptions {
        SimOptions {
            block_words: self.config.block_words,
            detection: self.config.detection,
            backend: self.config.simd_backend,
        }
    }

    fn full_sim(&mut self) -> Result<(FaultSimResult, Option<StopReason>), TpiError> {
        self.metrics.full_sims.inc();
        let timer = self.metrics.full_sim_us.start_timer();
        let mut sim = FaultSimulator::with_options(&self.circuit, self.sim_options())?;
        let mut src = self.pattern_source();
        let run = sim.run_controlled(
            &mut src,
            self.config.patterns,
            self.universe.faults(),
            &self.control,
        )?;
        drop(timer);
        run.counters.publish_to(&self.metrics.registry);
        sim.backend().publish_to(&self.metrics.registry);
        Ok((run.result, run.stopped))
    }

    /// The coverage measurement of the current circuit, computed at most
    /// once per netlist version (edits through
    /// [`apply`](TpiEngine::apply) refresh it incrementally instead).
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit became malformed;
    /// [`TpiError::Interrupted`] when the session's [`RunControl`] token
    /// fires mid-measurement (a truncated measurement is never cached —
    /// the next call under a fresh token measures from scratch).
    pub fn simulate(&mut self) -> Result<&FaultSimResult, TpiError> {
        let version = self.circuit.version();
        if self.sim.as_ref().is_none_or(|s| s.version != version) {
            let (result, stopped) = self.full_sim()?;
            if let Some(reason) = stopped {
                return Err(TpiError::Interrupted { reason });
            }
            self.sim = Some(SimState { version, result });
        }
        Ok(&self.sim.as_ref().expect("just stored").result)
    }

    /// Fault coverage of the current circuit over the session universe.
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the circuit became malformed.
    pub fn coverage(&mut self) -> Result<f64, TpiError> {
        Ok(self.simulate()?.coverage())
    }

    /// Insert one test point and refresh the coverage measurement
    /// incrementally: only faults inside the edit's dirty cone are
    /// re-simulated, all others keep their previous first-detections.
    ///
    /// If the session's [`RunControl`] token fires during the
    /// re-measurement, the point *stays applied* (the structural edit is
    /// already committed) but the truncated measurement is discarded —
    /// the next [`simulate`](TpiEngine::simulate) under a fresh token
    /// measures from scratch.
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if the insertion or re-simulation fails.
    pub fn apply(&mut self, tp: TestPoint) -> Result<AppliedTestPoint, TpiError> {
        let old_nodes = self.circuit.node_count();
        let prev = match self.sim.take() {
            Some(s) if s.version == self.circuit.version() => Some(s.result),
            _ => None,
        };
        let applied = apply_test_point(&mut self.circuit, tp)?;
        if let Some(prev) = prev {
            match self.resimulate_dirty_cone(&applied, old_nodes, prev) {
                Ok(merged) => {
                    self.sim = Some(SimState {
                        version: self.circuit.version(),
                        result: merged,
                    });
                }
                Err(TpiError::Interrupted { .. }) => {} // sim stays invalidated
                Err(e) => return Err(e),
            }
        }
        Ok(applied)
    }

    /// Insert several test points in order (each one incrementally
    /// re-measured, as [`apply`](TpiEngine::apply)).
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] if any insertion fails; earlier points stay
    /// applied.
    pub fn apply_all(&mut self, points: &[TestPoint]) -> Result<Vec<AppliedTestPoint>, TpiError> {
        points.iter().map(|&tp| self.apply(tp)).collect()
    }

    /// Re-simulate only the faults dirtied by `applied` and merge with the
    /// previous result. See [`dirty_line_mask`] for the dirtiness rule.
    fn resimulate_dirty_cone(
        &mut self,
        applied: &AppliedTestPoint,
        old_nodes: usize,
        prev: FaultSimResult,
    ) -> Result<FaultSimResult, TpiError> {
        self.ensure_analyses()?;
        let analyses = self.analyses.as_ref().expect("just ensured");
        let observed: Vec<NodeId> = applied.observed.into_iter().collect();
        let dirty = dirty_line_mask(&self.circuit, &analyses.topo, old_nodes, &observed);

        let mut dirty_indices: Vec<usize> = Vec::new();
        let mut dirty_faults: Vec<tpi_sim::Fault> = Vec::new();
        for (i, &fault) in self.universe.faults().iter().enumerate() {
            if dirty[fault_line(&self.circuit, fault).index()] {
                dirty_indices.push(i);
                dirty_faults.push(fault);
            }
        }
        self.metrics.incremental_sims.inc();
        self.metrics
            .faults_resimulated
            .add(dirty_faults.len() as u64);
        self.metrics
            .faults_skipped
            .add((self.universe.len() - dirty_faults.len()) as u64);
        self.metrics
            .dirty_cone_faults
            .record(dirty_faults.len() as u64);

        let partial = {
            let timer = self.metrics.incremental_sim_us.start_timer();
            let mut sim = FaultSimulator::with_options(&self.circuit, self.sim_options())?;
            let mut src = self.pattern_source();
            let run =
                sim.run_controlled(&mut src, self.config.patterns, &dirty_faults, &self.control)?;
            drop(timer);
            run.counters.publish_to(&self.metrics.registry);
            sim.backend().publish_to(&self.metrics.registry);
            if let Some(reason) = run.stopped {
                return Err(TpiError::Interrupted { reason });
            }
            run.result
        };
        let mut first: Vec<Option<u64>> = (0..prev.fault_count())
            .map(|i| prev.first_detection(i))
            .collect();
        for (k, &i) in dirty_indices.iter().enumerate() {
            first[i] = partial.first_detection(k);
        }
        let merged = FaultSimResult::from_parts(
            first,
            partial.patterns_applied().max(prev.patterns_applied()),
        );

        if self.config.verify_incremental {
            // An interrupted verification sim can't prove anything —
            // skip the cross-check rather than assert against a truncated
            // reference.
            let (full, stopped) = self.full_sim()?;
            if stopped.is_some() {
                return Ok(merged);
            }
            for i in 0..self.universe.len() {
                assert_eq!(
                    merged.first_detection(i),
                    full.first_detection(i),
                    "incremental re-simulation diverged from full re-simulation \
                     at fault {} ({})",
                    i,
                    self.universe.faults()[i].describe(&self.circuit),
                );
            }
        }
        Ok(merged)
    }

    /// Run the measure/decompose/solve/commit constructive loop on the
    /// session, with every step going through the engine's caches: the
    /// measurement is incremental after the first round, region DP
    /// solutions are memoized across rounds, and candidate scoring
    /// simulates only each candidate's dirty faults.
    ///
    /// Semantically this matches
    /// [`ConstructiveOptimizer::solve`](tpi_core::general::ConstructiveOptimizer),
    /// which remains the from-scratch baseline it is benchmarked against.
    ///
    /// When the session's [`RunControl`] token fires mid-run, the loop
    /// stops cleanly after the last fully-refereed commit and the
    /// outcome carries the best partial plan so far:
    /// [`ConstructiveOutcome::interrupted`] records the reason, the plan
    /// is an exact prefix of what the uninterrupted run would commit
    /// (so its cost never exceeds the uninterrupted plan's), and
    /// `final_coverage` is the coverage last measured before
    /// interruption. Front ends wanting coverage *at* interruption
    /// re-measure under a fresh token (interrupted measurements are
    /// never cached).
    ///
    /// # Errors
    ///
    /// [`TpiError::Netlist`] on malformed circuits. Interruption is not
    /// an error.
    pub fn optimize(
        &mut self,
        threshold: Threshold,
        cfg: &OptimizeConfig,
    ) -> Result<ConstructiveOutcome, TpiError> {
        let costs = CostModel::default();
        let mut plan_points: Vec<TestPoint> = Vec::new();
        let mut rounds: Vec<RoundReport> = Vec::new();
        let mut coverage = 0.0;
        let mut last_added = 0usize;
        let mut interrupted: Option<StopReason> = None;

        for round in 0..cfg.max_rounds.max(1) {
            // 1. Measure (cached; incremental after the first commit).
            let result = match self.simulate() {
                Ok(result) => result.clone(),
                Err(TpiError::Interrupted { reason }) => {
                    interrupted = Some(reason);
                    break;
                }
                Err(e) => return Err(e),
            };
            coverage = result.coverage();
            let cost_so_far = costs.total(&plan_points);
            rounds.push(RoundReport {
                round,
                coverage,
                cost: cost_so_far,
                points_added: last_added,
            });
            if coverage >= cfg.target_coverage || cost_so_far >= cfg.max_cost {
                break;
            }
            let undetected = result.undetected_indices();
            if undetected.is_empty() {
                break;
            }

            // 2–3. Decompose on cached analyses; solve regions through
            // the DP memo.
            let mut groups = match self.plan_region_groups(threshold, cfg, &undetected) {
                Ok(groups) => groups,
                Err(TpiError::Interrupted { reason }) => {
                    interrupted = Some(reason);
                    break;
                }
                Err(e) => return Err(e),
            };
            for tp in
                gather_candidates(&self.circuit, &self.universe, &undetected, &plan_points, 16)
            {
                groups.push(vec![tp]);
            }

            // 4. Referee by simulation (dirty faults only) and commit.
            let (committed, stopped) = self.pick_by_simulation(&undetected, groups)?;
            if let Some(reason) = stopped {
                // A partially-refereed pick must not be committed.
                interrupted = Some(reason);
                break;
            }
            if committed.is_empty() {
                break;
            }
            last_added = 0;
            let mut spent = costs.total(&plan_points);
            for &tp in &committed {
                let price = costs.of(tp.kind);
                if spent + price > cfg.max_cost {
                    break;
                }
                self.apply(tp)?;
                plan_points.push(tp);
                spent += price;
                last_added += 1;
            }
            if last_added == 0 {
                break; // budget exhausted mid-commit
            }
        }

        let cost = costs.total(&plan_points);
        let feasible = coverage >= cfg.target_coverage;
        Ok(ConstructiveOutcome {
            plan: Plan::new(plan_points, cost, feasible),
            rounds,
            final_coverage: coverage,
            modified: self.circuit.clone(),
            interrupted,
        })
    }

    /// Group the undetected faults per FFR, solve each region's DP
    /// subproblem (through the memo) and return the candidate point
    /// groups ranked by benefit per cost.
    fn plan_region_groups(
        &mut self,
        threshold: Threshold,
        cfg: &OptimizeConfig,
        undetected: &[usize],
    ) -> Result<Vec<Vec<TestPoint>>, TpiError> {
        self.ensure_analyses()?;
        let analyses = self.analyses.as_ref().expect("just ensured");
        let costs = CostModel::default();

        let mut region_targets: std::collections::HashMap<NodeId, Vec<TargetFault>> =
            std::collections::HashMap::new();
        for &fi in undetected {
            let fault = self.universe.faults()[fi];
            let node = fault_line(&self.circuit, fault);
            region_targets
                .entry(analyses.ffr.root_of(node))
                .or_default()
                .push(TargetFault {
                    node,
                    stuck: fault.stuck,
                });
        }

        // NodeId order, not hash order: benefit ties must break the same way
        // as the baseline driver for run-to-run (and engine-vs-baseline)
        // determinism.
        let mut regions: Vec<(NodeId, Vec<TargetFault>)> = region_targets.into_iter().collect();
        regions.sort_by_key(|(root, _)| *root);

        let dp = DpOptimizer::new(cfg.dp.clone());
        let mut candidates: Vec<(Vec<TestPoint>, f64, f64)> = Vec::new();
        for (root, targets) in &regions {
            let benefit = targets.len() as f64;
            let Some(extraction) = extract_region(
                &self.circuit,
                &analyses.topo,
                &analyses.ffr,
                *root,
                &analyses.cop,
            ) else {
                continue;
            };
            let sub_targets: Vec<TargetFault> = targets
                .iter()
                .filter_map(|t| {
                    extraction.to_sub.get(&t.node).map(|&node| TargetFault {
                        node,
                        stuck: t.stuck,
                    })
                })
                .collect();
            if sub_targets.is_empty() {
                continue;
            }
            let rho = analyses.cop.observability(*root).clamp(0.0, 1.0);
            let fp = region_fingerprint(&extraction, &sub_targets, rho, threshold);
            let sub_points: Option<Vec<TestPoint>> = match self.memo.lookup(fp) {
                Some(cached) => {
                    self.metrics.memo_hits.inc();
                    cached
                }
                None => {
                    self.metrics.memo_misses.inc();
                    let problem =
                        TpiProblem::with_targets(&extraction.circuit, threshold, sub_targets)
                            .with_input_probs(extraction.input_probs.clone());
                    let solved = match dp.solve_region_controlled(&problem, rho, &self.control) {
                        Ok((plan, _)) => {
                            Some(plan.test_points().to_vec()).filter(|points| !points.is_empty())
                        }
                        // Propagate interruption without memoizing: the
                        // subproblem was never solved.
                        Err(TpiError::Interrupted { reason }) => {
                            return Err(TpiError::Interrupted { reason });
                        }
                        Err(_) => None,
                    };
                    self.memo.insert(fp, solved.clone());
                    solved
                }
            };
            let Some(sub_points) = sub_points else {
                continue;
            };
            let mapped: Vec<TestPoint> = sub_points
                .iter()
                .map(|tp| TestPoint::new(extraction.to_parent[&tp.node], tp.kind))
                .collect();
            let cost = costs.total(&mapped);
            let score = benefit / cost.max(1e-9);
            candidates.push((mapped, cost, score));
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
        candidates.truncate(cfg.regions_per_round.max(1) * 3);
        Ok(candidates
            .into_iter()
            .map(|(points, _, _)| points)
            .collect())
    }

    /// Score candidate groups by measured detections per cost — but on
    /// each candidate's scratch circuit only the *dirty* faults of that
    /// candidate are simulated. Clean undetected faults stay undetected
    /// by the bit-identity argument, so they contribute zero detections
    /// and skipping them cannot change any score.
    fn pick_by_simulation(
        &mut self,
        undetected: &[usize],
        groups: Vec<Vec<TestPoint>>,
    ) -> Result<(Vec<TestPoint>, Option<StopReason>), TpiError> {
        let costs = CostModel::default();
        // The configured pattern budget, unclamped (an undocumented
        // `min(4096)` used to cap it silently). Scoring with exactly the
        // measurement budget is also what entitles the batched scorer to
        // skip the base reference run: a fault the measurement left
        // undetected stays undetected under the same stream/seed/count.
        let budget = self.config.patterns;
        self.metrics.search_rounds.inc();
        if self.config.candidate_eval == CandidateEval::Batched {
            return self.pick_batched(undetected, groups, budget, &costs);
        }
        let mut best: Option<(Vec<TestPoint>, f64)> = None;
        for group in groups {
            if group.is_empty() {
                continue;
            }
            self.metrics.candidates_evaluated.inc();
            let started = std::time::Instant::now();
            let old_nodes = self.circuit.node_count();
            let mut scratch = self.circuit.clone();
            let mut observed: Vec<NodeId> = Vec::new();
            let mut broken = false;
            for &tp in &group {
                match apply_test_point(&mut scratch, tp) {
                    Ok(applied) => observed.extend(applied.observed),
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                self.metrics
                    .candidate_eval_us
                    .record_duration(started.elapsed());
                continue;
            }
            let topo = Topology::of(&scratch)?;
            let dirty = dirty_line_mask(&scratch, &topo, old_nodes, &observed);
            let faults: Vec<tpi_sim::Fault> = undetected
                .iter()
                .map(|&i| self.universe.faults()[i])
                .filter(|&f| dirty[fault_line(&scratch, f).index()])
                .collect();
            if faults.is_empty() {
                self.metrics
                    .candidate_eval_us
                    .record_duration(started.elapsed());
                continue;
            }
            let mut sim = FaultSimulator::with_options(&scratch, self.sim_options())?;
            let mut src = IndependentPatterns::new(scratch.inputs().len(), self.config.seed);
            let run = sim.run_controlled(&mut src, budget, &faults, &self.control)?;
            run.counters.publish_to(&self.metrics.registry);
            sim.backend().publish_to(&self.metrics.registry);
            self.metrics
                .candidate_eval_us
                .record_duration(started.elapsed());
            if let Some(reason) = run.stopped {
                // The referee was cut short: scores so far are not
                // comparable, so report nothing committed.
                return Ok((Vec::new(), Some(reason)));
            }
            let result = run.result;
            let score = result.detected_count() as f64 / costs.total(&group).max(1e-9);
            if score > 0.0
                && best
                    .as_ref()
                    .map(|(_, s)| score > s + 1e-12)
                    .unwrap_or(true)
            {
                best = Some((group, score));
            }
        }
        Ok((best.map(|(group, _)| group).unwrap_or_default(), None))
    }

    /// Batched referee: validate groups without cloning, share the base
    /// detection state, simulate only each group's dirty faults
    /// (optionally across a worker pool) and select by the same
    /// detections-per-cost rule as the legacy loop. A group whose dirty
    /// set is empty scores zero — exactly the legacy `continue`, since
    /// selection requires a strictly positive score.
    fn pick_batched(
        &mut self,
        undetected: &[usize],
        mut groups: Vec<Vec<TestPoint>>,
        budget: u64,
        costs: &CostModel,
    ) -> Result<(Vec<TestPoint>, Option<StopReason>), TpiError> {
        let faults: Vec<tpi_sim::Fault> = undetected
            .iter()
            .map(|&i| self.universe.faults()[i])
            .collect();
        let batch = score_candidate_groups(
            &self.circuit,
            &faults,
            &groups,
            budget,
            self.config.seed,
            self.sim_options(),
            self.config.score_threads,
            BaseDetections::AssumeUndetected,
            &self.control,
        )?;
        batch.counters.publish_to(&self.metrics.registry);
        for (group, score) in groups.iter().zip(&batch.scores) {
            if !group.is_empty() {
                self.metrics.candidates_evaluated.inc();
                self.metrics.candidate_eval_us.record(score.eval_us);
            }
        }
        if let Some(reason) = batch.stopped {
            return Ok((Vec::new(), Some(reason)));
        }
        let mut best: Option<(usize, f64)> = None;
        for (gi, group_score) in batch.scores.iter().enumerate() {
            let Some(detected) = group_score.detected else {
                continue;
            };
            let score = detected as f64 / costs.total(&groups[gi]).max(1e-9);
            if score > 0.0
                && best
                    .as_ref()
                    .map(|&(_, s)| score > s + 1e-12)
                    .unwrap_or(true)
            {
                best = Some((gi, score));
            }
        }
        Ok((
            best.map(|(gi, _)| std::mem::take(&mut groups[gi]))
                .unwrap_or_default(),
            None,
        ))
    }
}

/// The line a fault's detection is anchored to: its stem, or the driving
/// line of a branch fault (resolved against the *current* circuit, where
/// control points may have re-driven the branch).
fn fault_line(circuit: &Circuit, fault: tpi_sim::Fault) -> NodeId {
    match fault.site {
        FaultSite::Stem(node) => node,
        FaultSite::Branch { gate, pin } => circuit.fanins(gate)[pin as usize],
    }
}

/// Node-level dirtiness after an edit that appended nodes `old_nodes..`
/// and (possibly) tapped `observed` as new primary outputs.
///
/// A node is *marked* when its value can differ from the pre-edit circuit:
/// the forward cone of the appended nodes. A node is *dirty* when the
/// detection of a fault on its output line can have changed:
///
/// * it is marked (excitation may differ), or
/// * one of its fanins is marked (its input values may differ), or
/// * it is newly observed (a new output watches it), or
/// * any consumer is dirty (its propagation paths run through changed
///   logic or toward a new output).
///
/// The last rule makes dirtiness flow *upstream*; evaluating nodes in
/// reverse topological order resolves it in one pass. Faults on clean
/// lines provably keep their detection behaviour: no value, sensitization
/// side-input or observing output anywhere in their cone changed.
pub fn dirty_line_mask(
    circuit: &Circuit,
    topo: &Topology,
    old_nodes: usize,
    observed: &[NodeId],
) -> Vec<bool> {
    let n = circuit.node_count();
    let new_nodes: Vec<NodeId> = (old_nodes..n).map(NodeId::from_index).collect();
    let marked = fanout_cone_mask(circuit, topo, &new_nodes);
    let mut dirty = vec![false; n];
    for &id in topo.order().iter().rev() {
        let i = id.index();
        let seeded = marked[i]
            || observed.contains(&id)
            || circuit.fanins(id).iter().any(|f| marked[f.index()]);
        dirty[i] = seeded || topo.fanouts(id).iter().any(|fo| dirty[fo.gate.index()]);
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{CircuitBuilder, GateKind, TestPointKind};

    /// Two independent random-pattern-resistant cones sharing nothing: an
    /// edit in one must leave the other's faults clean.
    fn two_cones() -> Circuit {
        let mut b = CircuitBuilder::new("twin");
        let xs = b.inputs(16, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..8], "a").unwrap();
        let o = b.balanced_tree(GateKind::And, &xs[8..], "o").unwrap();
        b.output(a);
        b.output(o);
        b.finish().unwrap()
    }

    fn reconvergent() -> Circuit {
        let mut b = CircuitBuilder::new("rr");
        let xs = b.inputs(12, "x");
        let stem = b.balanced_tree(GateKind::And, &xs[..8], "cone").unwrap();
        let g1 = b.gate(GateKind::And, vec![stem, xs[8]], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![stem, xs[9]], "g2").unwrap();
        let m = b.gate(GateKind::Or, vec![g1, g2], "m").unwrap();
        let t = b
            .balanced_tree(GateKind::And, &[m, xs[10], xs[11]], "t")
            .unwrap();
        b.output(t);
        b.finish().unwrap()
    }

    fn engine(c: Circuit) -> TpiEngine {
        // verify_incremental is intentionally off: the tests compare
        // against an independently-constructed full simulation instead.
        TpiEngine::new(
            c,
            EngineConfig {
                patterns: 1024,
                seed: 9,
                verify_incremental: false,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    fn fresh_full(
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: u64,
        seed: u64,
    ) -> FaultSimResult {
        let mut sim = FaultSimulator::new(circuit).unwrap();
        let mut src = IndependentPatterns::new(circuit.inputs().len(), seed);
        sim.run(&mut src, patterns, universe.faults()).unwrap()
    }

    #[test]
    fn incremental_matches_full_for_every_kind() {
        for kind in TestPointKind::ALL {
            let c = reconvergent();
            let node = c.find_node("g1").unwrap();
            let mut eng = engine(c);
            eng.simulate().unwrap();
            eng.apply(TestPoint::new(node, kind)).unwrap();
            let fresh = fresh_full(eng.circuit(), eng.universe(), 1024, 9);
            let merged = eng.simulate().unwrap().clone();
            for i in 0..eng.universe().len() {
                assert_eq!(
                    merged.first_detection(i),
                    fresh.first_detection(i),
                    "{kind:?} fault {i}"
                );
            }
            assert_eq!(eng.stats().incremental_sims, 1);
            assert_eq!(eng.stats().full_sims, 1, "{kind:?} re-ran a full sim");
        }
    }

    #[test]
    fn incremental_skips_the_untouched_cone() {
        let c = two_cones();
        let a = c.find_node("a_6").unwrap(); // root of the first cone
        let mut eng = engine(c);
        eng.simulate().unwrap();
        eng.apply(TestPoint::control_or(a)).unwrap();
        let stats = eng.stats();
        assert!(
            stats.faults_skipped > 0,
            "an edit local to one cone must leave the other cone's faults clean"
        );
        assert!(stats.faults_resimulated > 0);
        let fresh = fresh_full(eng.circuit(), eng.universe(), 1024, 9);
        let merged = eng.simulate().unwrap().clone();
        for i in 0..eng.universe().len() {
            assert_eq!(
                merged.first_detection(i),
                fresh.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn chained_edits_stay_bit_identical() {
        let c = reconvergent();
        let g1 = c.find_node("g1").unwrap();
        let g2 = c.find_node("g2").unwrap();
        let cone = c.find_node("cone_6").unwrap();
        let mut eng = engine(c);
        eng.simulate().unwrap();
        for tp in [
            TestPoint::observe(g1),
            TestPoint::control_or(g2),
            TestPoint::full(cone),
        ] {
            eng.apply(tp).unwrap();
            let fresh = fresh_full(eng.circuit(), eng.universe(), 1024, 9);
            let merged = eng.simulate().unwrap().clone();
            for i in 0..eng.universe().len() {
                assert_eq!(
                    merged.first_detection(i),
                    fresh.first_detection(i),
                    "after {tp}"
                );
            }
        }
        assert_eq!(eng.stats().incremental_sims, 3);
    }

    #[test]
    fn analyses_cache_hits_and_invalidates() {
        let mut eng = engine(reconvergent());
        eng.analyses().unwrap();
        eng.analyses().unwrap();
        assert_eq!(eng.stats().analysis_rebuilds, 1);
        assert_eq!(eng.stats().analysis_hits, 1);

        let node = eng.circuit().find_node("m").unwrap();
        eng.apply(TestPoint::observe(node)).unwrap();
        eng.analyses().unwrap();
        assert_eq!(eng.stats().analysis_rebuilds, 2);
    }

    #[test]
    fn out_of_band_edit_invalidates_simulation() {
        let mut eng = engine(two_cones());
        eng.simulate().unwrap();
        assert_eq!(eng.stats().full_sims, 1);
        // An untracked edit: tap a node as an output behind the engine's
        // back. The version bump must force a fresh full measurement.
        let node = eng.circuit().find_node("a_0").unwrap();
        eng.circuit_mut().add_output(node).unwrap();
        eng.simulate().unwrap();
        assert_eq!(eng.stats().full_sims, 2);
        assert_eq!(eng.stats().incremental_sims, 0);
    }

    #[test]
    fn optimize_improves_coverage_and_memoizes() {
        let mut eng = TpiEngine::new(
            reconvergent(),
            EngineConfig {
                patterns: 2048,
                seed: 0xDAC_1987,
                verify_incremental: true, // exercise the assert path too
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let cfg = OptimizeConfig {
            max_rounds: 8,
            target_coverage: 0.999,
            ..OptimizeConfig::default()
        };
        let outcome = eng
            .optimize(Threshold::from_test_length(2048, 0.9).unwrap(), &cfg)
            .unwrap();
        let baseline = outcome.rounds[0].coverage;
        assert!(outcome.final_coverage > baseline);
        assert!(outcome.final_coverage > 0.95, "{}", outcome.final_coverage);
        assert!(!outcome.plan.is_empty());
        let stats = eng.stats();
        assert!(stats.memo_misses > 0);
        assert!(stats.incremental_sims > 0);
    }

    #[test]
    fn optimize_plan_replays_on_the_base_circuit() {
        let base = reconvergent();
        let mut eng = engine(base.clone());
        let outcome = eng
            .optimize(
                Threshold::from_test_length(1024, 0.9).unwrap(),
                &OptimizeConfig {
                    max_rounds: 4,
                    ..OptimizeConfig::default()
                },
            )
            .unwrap();
        let (replayed, _) =
            tpi_netlist::transform::apply_plan(&base, outcome.plan.test_points()).unwrap();
        assert_eq!(replayed.node_count(), outcome.modified.node_count());
        for id in replayed.node_ids() {
            assert_eq!(replayed.kind(id), outcome.modified.kind(id));
            assert_eq!(replayed.fanins(id), outcome.modified.fanins(id));
        }
    }

    #[test]
    fn untouched_regions_hit_the_memo_across_rounds() {
        // Two deep AND cones, both random-pattern resistant under a tiny
        // budget. Each round commits at most one candidate group, so the
        // other cone re-extracts to a byte-identical subproblem next
        // round and must replay from the memo instead of re-running the
        // DP.
        let mut b = CircuitBuilder::new("deep-twin");
        let xs = b.inputs(24, "x");
        let a = b.balanced_tree(GateKind::And, &xs[..12], "a").unwrap();
        let o = b.balanced_tree(GateKind::And, &xs[12..], "o").unwrap();
        b.output(a);
        b.output(o);
        let c = b.finish().unwrap();

        let mut eng = TpiEngine::new(
            c,
            EngineConfig {
                patterns: 256,
                seed: 3,
                verify_incremental: false,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let cfg = OptimizeConfig {
            max_rounds: 3,
            ..OptimizeConfig::default()
        };
        eng.optimize(Threshold::from_log2(-6.0), &cfg).unwrap();
        assert!(
            eng.stats().memo_hits > 0,
            "unchanged regions must replay memoized DP solutions, stats: {:?}",
            eng.stats()
        );
    }
}
