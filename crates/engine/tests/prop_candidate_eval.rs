//! Property: the batched candidate evaluator and the legacy
//! clone-and-resimulate path select **bit-identical plans**, across
//! fault-sim block widths, scoring thread counts, and both detection
//! modes — for the engine session loop, the from-scratch constructive
//! baseline, and the greedy analytic search.
//!
//! This is the contract that lets `--candidate-eval batched` be the
//! default: legacy survives only as the A/B oracle this test consults.

use proptest::prelude::*;
use tpi_core::general::{ConstructiveConfig, ConstructiveOptimizer};
use tpi_core::{CandidateEval, GreedyConfig, GreedyOptimizer, Threshold, TpiProblem};
use tpi_engine::{EngineConfig, OptimizeConfig, TpiEngine};
use tpi_gen::dags::{random_dag, RandomDagConfig};
use tpi_netlist::Circuit;
use tpi_sim::DetectionMode;

fn dag(inputs: usize, gates: usize, seed: u64) -> Circuit {
    random_dag(&RandomDagConfig::new(inputs, gates, seed)).expect("valid dag config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Engine sessions pick the same plan regardless of scoring path,
    /// block width, or scoring thread count.
    #[test]
    fn engine_batched_matches_legacy(
        seed in 0u64..1_000,
        gates in 40usize..100,
        width_sel in 0usize..3,
        explicit in any::<bool>(),
    ) {
        let block_words = [1usize, 4, 8][width_sel];
        let detection = if explicit {
            DetectionMode::Explicit
        } else {
            DetectionMode::CriticalPathTracing
        };
        let circuit = dag(10, gates, seed);
        let threshold = Threshold::from_log2(-7.0);
        let run = |candidate_eval: CandidateEval, score_threads: usize| {
            let mut engine = TpiEngine::new(
                circuit.clone(),
                EngineConfig {
                    patterns: 1024,
                    block_words,
                    detection,
                    candidate_eval,
                    score_threads,
                    ..EngineConfig::default()
                },
            )
            .expect("engine construction");
            engine
                .optimize(threshold, &OptimizeConfig::default())
                .expect("optimize")
                .plan
        };
        let legacy = run(CandidateEval::Legacy, 1);
        for threads in [1usize, 4, 8] {
            let batched = run(CandidateEval::Batched, threads);
            prop_assert_eq!(
                &legacy, &batched,
                "engine diverged: seed {} gates {} W {} threads {}",
                seed, gates, block_words, threads
            );
        }
    }

    /// The from-scratch constructive baseline agrees with itself across
    /// scoring paths and thread counts.
    #[test]
    fn constructive_batched_matches_legacy(
        seed in 0u64..1_000,
        gates in 40usize..100,
    ) {
        let circuit = dag(10, gates, seed);
        let threshold = Threshold::from_log2(-7.0);
        let run = |candidate_eval: CandidateEval, score_threads: usize| {
            ConstructiveOptimizer::new(ConstructiveConfig {
                patterns_per_round: 1024,
                candidate_eval,
                score_threads,
                ..ConstructiveConfig::default()
            })
            .solve(&circuit, threshold)
            .expect("solve")
            .plan
        };
        let legacy = run(CandidateEval::Legacy, 1);
        for threads in [1usize, 4, 8] {
            let batched = run(CandidateEval::Batched, threads);
            prop_assert_eq!(
                &legacy, &batched,
                "constructive diverged: seed {} gates {} threads {}",
                seed, gates, threads
            );
        }
    }

    /// Greedy's incremental COP probe reproduces the full-reanalysis
    /// scores bit-for-bit, so the committed plans match exactly.
    #[test]
    fn greedy_batched_matches_legacy(
        seed in 0u64..1_000,
        gates in 30usize..80,
    ) {
        let circuit = dag(8, gates, seed);
        let problem =
            TpiProblem::min_cost(&circuit, Threshold::from_log2(-6.0))
                .expect("problem");
        let run = |candidate_eval: CandidateEval| {
            GreedyOptimizer::new(GreedyConfig {
                candidate_eval,
                ..GreedyConfig::default()
            })
            .solve(&problem)
            .expect("solve")
        };
        prop_assert_eq!(
            run(CandidateEval::Legacy),
            run(CandidateEval::Batched),
            "greedy diverged: seed {} gates {}",
            seed,
            gates
        );
    }
}
