use crate::{Circuit, GateKind, NetlistError, NodeId};

/// Incremental, validated construction of a [`Circuit`].
///
/// The builder enforces arity and name uniqueness at each step and runs a
/// full validation (including the acyclicity check) in [`finish`].
///
/// # Example
///
/// ```
/// use tpi_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("mux2");
/// let s = b.input("s");
/// let a = b.input("a");
/// let c = b.input("b");
/// let ns = b.gate(GateKind::Not, vec![s], "ns")?;
/// let t0 = b.gate(GateKind::And, vec![ns, a], "t0")?;
/// let t1 = b.gate(GateKind::And, vec![s, c], "t1")?;
/// let y = b.gate(GateKind::Or, vec![t0, t1], "y")?;
/// b.output(y);
/// let mux = b.finish()?;
/// assert_eq!(mux.evaluate_outputs(&[false, true, false])?, [true]);
/// # Ok(())
/// # }
/// ```
///
/// [`finish`]: CircuitBuilder::finish
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Start building a circuit with the given name.
    pub fn new(name: impl Into<String>) -> CircuitBuilder {
        CircuitBuilder {
            circuit: Circuit::new(name),
        }
    }

    /// Add a primary input. Empty names are auto-generated.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken (inputs are normally the first
    /// nodes declared, with caller-controlled fresh names).
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.circuit
            .add_node(GateKind::Input, vec![], name)
            .expect("input declaration failed")
    }

    /// Add `n` primary inputs named `{prefix}0..{prefix}{n-1}`.
    pub fn inputs(&mut self, n: usize, prefix: &str) -> Vec<NodeId> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Add a constant-0 or constant-1 node.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] if the name is taken.
    pub fn constant(
        &mut self,
        value: bool,
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.circuit.add_node(kind, vec![], name)
    }

    /// Add a logic gate. Empty names are auto-generated.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidArity`], [`NetlistError::DanglingFanin`] or
    /// [`NetlistError::DuplicateName`].
    pub fn gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        self.circuit.add_node(kind, fanins, name)
    }

    /// Build a balanced tree of 2-input `kind` gates over `leaves`,
    /// returning the root. With a single leaf, returns that leaf unchanged.
    ///
    /// Useful for wide functions when 2-input decomposition is wanted
    /// (e.g. to mimic mapped netlists).
    ///
    /// # Errors
    ///
    /// Propagates gate-creation errors; [`NetlistError::InvalidArity`] if
    /// `leaves` is empty.
    pub fn balanced_tree(
        &mut self,
        kind: GateKind,
        leaves: &[NodeId],
        name_prefix: &str,
    ) -> Result<NodeId, NetlistError> {
        if leaves.is_empty() {
            return Err(NetlistError::InvalidArity {
                kind: kind.bench_name(),
                got: 0,
            });
        }
        let mut layer: Vec<NodeId> = leaves.to_vec();
        let mut counter = 0usize;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.chunks(2);
            for chunk in &mut it {
                if chunk.len() == 2 {
                    let name = format!("{name_prefix}_{counter}");
                    counter += 1;
                    next.push(self.gate(kind, vec![chunk[0], chunk[1]], name)?);
                } else {
                    next.push(chunk[0]);
                }
            }
            layer = next;
        }
        Ok(layer[0])
    }

    /// Mark a node as primary output.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced by this builder.
    pub fn output(&mut self, id: NodeId) {
        self.circuit.add_output(id).expect("output id out of range")
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.circuit.node_count()
    }

    /// Finish building: validates and returns the circuit.
    ///
    /// # Errors
    ///
    /// Any invariant violation, see [`Circuit::validate`].
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        self.circuit.validate()?;
        Ok(self.circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_circuit() {
        let mut b = CircuitBuilder::new("c");
        let ins = b.inputs(4, "x");
        let root = b.balanced_tree(GateKind::And, &ins, "a").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(
            c.evaluate_outputs(&[true, true, true, true]).unwrap(),
            [true]
        );
        assert_eq!(
            c.evaluate_outputs(&[true, true, false, true]).unwrap(),
            [false]
        );
    }

    #[test]
    fn balanced_tree_single_leaf_is_identity() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let r = b.balanced_tree(GateKind::Or, &[x], "t").unwrap();
        assert_eq!(r, x);
    }

    #[test]
    fn balanced_tree_odd_width() {
        let mut b = CircuitBuilder::new("c");
        let ins = b.inputs(5, "x");
        let root = b.balanced_tree(GateKind::Or, &ins, "t").unwrap();
        b.output(root);
        let c = b.finish().unwrap();
        assert_eq!(c.gate_count(), 4);
        let mut v = [false; 5];
        assert_eq!(c.evaluate_outputs(&v).unwrap(), [false]);
        v[4] = true;
        assert_eq!(c.evaluate_outputs(&v).unwrap(), [true]);
    }

    #[test]
    fn balanced_tree_empty_errors() {
        let mut b = CircuitBuilder::new("c");
        assert!(b.balanced_tree(GateKind::And, &[], "t").is_err());
    }

    #[test]
    fn constants() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![one, x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.evaluate_outputs(&[true]).unwrap(), [true]);
        assert_eq!(c.evaluate_outputs(&[false]).unwrap(), [false]);
    }
}
