//! Test-point insertion transforms.
//!
//! A *test point* is a design-for-test modification that raises the random-
//! pattern testability of a line:
//!
//! * [`TestPointKind::Observe`] — tap the line to a new primary output
//!   (response compactor input). Observability of the line becomes 1.
//! * [`TestPointKind::ControlAnd`] — replace line `s` by `s ∧ r`, with `r`
//!   a new pseudo-random test input (lowers 1-probability toward 0, gives a
//!   direct 0-forcing handle).
//! * [`TestPointKind::ControlOr`] — replace `s` by `s ∨ r` (raises
//!   1-probability toward 1).
//! * [`TestPointKind::Full`] — the classical Hayes–Friedman cut: observe
//!   the line *and* re-drive all of its consumers from a fresh test input.
//!
//! All transforms preserve the circuit invariants and return an
//! [`AppliedTestPoint`] describing the auxiliary nodes created, so that
//! downstream analyses (fault universes, cost accounting) can refer to
//! them. Multiple test points at the same node compose in application
//! order; a control point inserted after an observation point leaves the
//! observation tapping the *modified* line, matching the DP's semantics.

use crate::{Circuit, GateKind, NetlistError, NodeId};

/// The kind of a test point. See the [module docs](self) for semantics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TestPointKind {
    /// Observation point: line becomes a primary output.
    Observe,
    /// AND-type control point: line becomes `line ∧ r`.
    ControlAnd,
    /// OR-type control point: line becomes `line ∨ r`.
    ControlOr,
    /// Full test point: observe + cut and re-drive from a test input.
    Full,
}

impl TestPointKind {
    /// All kinds, in declaration order.
    pub const ALL: [TestPointKind; 4] = [
        TestPointKind::Observe,
        TestPointKind::ControlAnd,
        TestPointKind::ControlOr,
        TestPointKind::Full,
    ];

    /// Short lowercase mnemonic (`op`, `cp-and`, `cp-or`, `tp`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            TestPointKind::Observe => "op",
            TestPointKind::ControlAnd => "cp-and",
            TestPointKind::ControlOr => "cp-or",
            TestPointKind::Full => "tp",
        }
    }
}

impl std::fmt::Display for TestPointKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A test point to insert: a kind applied at a node's output line.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TestPoint {
    /// The node whose output line is modified.
    pub node: NodeId,
    /// What to insert there.
    pub kind: TestPointKind,
}

impl TestPoint {
    /// Convenience constructor.
    pub fn new(node: NodeId, kind: TestPointKind) -> TestPoint {
        TestPoint { node, kind }
    }

    /// An observation point at `node`.
    pub fn observe(node: NodeId) -> TestPoint {
        TestPoint::new(node, TestPointKind::Observe)
    }

    /// An AND-type control point at `node`.
    pub fn control_and(node: NodeId) -> TestPoint {
        TestPoint::new(node, TestPointKind::ControlAnd)
    }

    /// An OR-type control point at `node`.
    pub fn control_or(node: NodeId) -> TestPoint {
        TestPoint::new(node, TestPointKind::ControlOr)
    }

    /// A full (cut) test point at `node`.
    pub fn full(node: NodeId) -> TestPoint {
        TestPoint::new(node, TestPointKind::Full)
    }
}

impl std::fmt::Display for TestPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kind, self.node)
    }
}

/// Record of one applied test point: which auxiliary nodes were created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedTestPoint {
    /// The request that was applied (node id refers to the pre-transform
    /// circuit; node ids are stable under these transforms, so it remains
    /// valid afterwards).
    pub point: TestPoint,
    /// The fresh test input driving a control/full point, if any.
    pub aux_input: Option<NodeId>,
    /// The inserted AND/OR gate of a control point, if any.
    pub cp_gate: Option<NodeId>,
    /// The node now tapped as a primary output, if any.
    pub observed: Option<NodeId>,
}

/// Apply a single test point in place.
///
/// Node ids of pre-existing nodes are stable across the transform; new
/// nodes are appended.
///
/// # Errors
///
/// [`NetlistError::NoSuchNode`] for an out-of-range node, or
/// [`NetlistError::InvalidTransform`] when a control/full point targets a
/// line with no consumers (nothing to re-drive) — observation points are
/// allowed anywhere.
pub fn apply_test_point(
    circuit: &mut Circuit,
    tp: TestPoint,
) -> Result<AppliedTestPoint, NetlistError> {
    if tp.node.index() >= circuit.node_count() {
        return Err(NetlistError::NoSuchNode {
            index: tp.node.index(),
        });
    }
    let seq = circuit.node_count(); // unique suffix for aux names
    match tp.kind {
        TestPointKind::Observe => {
            circuit.add_output(tp.node)?;
            Ok(AppliedTestPoint {
                point: tp,
                aux_input: None,
                cp_gate: None,
                observed: Some(tp.node),
            })
        }
        TestPointKind::ControlAnd | TestPointKind::ControlOr => {
            let gate_kind = if tp.kind == TestPointKind::ControlAnd {
                GateKind::And
            } else {
                GateKind::Or
            };
            let r = circuit.add_node(GateKind::Input, vec![], format!("tp_r{seq}"))?;
            let g = circuit.add_node(gate_kind, vec![tp.node, r], format!("tp_cp{seq}"))?;
            let rewired = circuit.rewire(tp.node, g, &[g]);
            // `rewire` also updated any PO tap on the line; if the line fed
            // nothing at all the control point would be dead logic.
            if rewired == 0 {
                return Err(NetlistError::InvalidTransform {
                    message: format!(
                        "control point at dangling line `{}`",
                        circuit.node_name(tp.node)
                    ),
                });
            }
            Ok(AppliedTestPoint {
                point: tp,
                aux_input: Some(r),
                cp_gate: Some(g),
                observed: None,
            })
        }
        TestPointKind::Full => {
            let r = circuit.add_node(GateKind::Input, vec![], format!("tp_r{seq}"))?;
            let rewired = circuit.rewire(tp.node, r, &[]);
            if rewired == 0 {
                return Err(NetlistError::InvalidTransform {
                    message: format!(
                        "full test point at dangling line `{}`",
                        circuit.node_name(tp.node)
                    ),
                });
            }
            // Observe the original line (pre-cut) — rewire may have
            // replaced an existing PO tap, so add after rewiring.
            circuit.add_output(tp.node)?;
            Ok(AppliedTestPoint {
                point: tp,
                aux_input: Some(r),
                cp_gate: None,
                observed: Some(tp.node),
            })
        }
    }
}

/// Apply a plan of test points to a copy of the circuit, in order.
///
/// Returns the modified circuit and the per-point application records.
///
/// # Errors
///
/// See [`apply_test_point`]; the original circuit is never modified.
pub fn apply_plan(
    circuit: &Circuit,
    plan: &[TestPoint],
) -> Result<(Circuit, Vec<AppliedTestPoint>), NetlistError> {
    let mut modified = circuit.clone();
    modified.set_name(format!("{}+tpi", circuit.name()));
    let mut applied = Vec::with_capacity(plan.len());
    for &tp in plan {
        applied.push(apply_test_point(&mut modified, tp)?);
    }
    debug_assert!(modified.validate().is_ok());
    Ok((modified, applied))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Topology};

    fn and_chain() -> Circuit {
        let mut b = CircuitBuilder::new("c");
        let xs = b.inputs(3, "x");
        let g1 = b.gate(GateKind::And, vec![xs[0], xs[1]], "g1").unwrap();
        let g2 = b.gate(GateKind::And, vec![g1, xs[2]], "g2").unwrap();
        b.output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn observe_adds_output_only() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, applied) = apply_plan(&c, &[TestPoint::observe(g1)]).unwrap();
        assert_eq!(m.node_count(), c.node_count());
        assert_eq!(m.outputs().len(), 2);
        assert!(m.is_output(g1));
        assert_eq!(applied[0].observed, Some(g1));
        assert!(applied[0].aux_input.is_none());
    }

    #[test]
    fn control_and_rewires_consumers() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, applied) = apply_plan(&c, &[TestPoint::control_and(g1)]).unwrap();
        let cp = applied[0].cp_gate.unwrap();
        let r = applied[0].aux_input.unwrap();
        assert_eq!(m.kind(cp), GateKind::And);
        assert_eq!(m.fanins(cp), [g1, r]);
        let g2 = m.find_node("g2").unwrap();
        assert_eq!(m.fanins(g2)[0], cp);
        // Behaviour: with r=1 the circuit matches the original.
        // inputs order: x0,x1,x2,r
        assert_eq!(
            m.evaluate_outputs(&[true, true, true, true]).unwrap(),
            [true]
        );
        // r=0 forces g1' to 0 -> output 0 even with all-ones.
        assert_eq!(
            m.evaluate_outputs(&[true, true, true, false]).unwrap(),
            [false]
        );
    }

    #[test]
    fn control_or_forces_one() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, _) = apply_plan(&c, &[TestPoint::control_or(g1)]).unwrap();
        // x0=0 (g1=0), x2=1, r=1 -> output forced to 1.
        assert_eq!(
            m.evaluate_outputs(&[false, true, true, true]).unwrap(),
            [true]
        );
        // r=0 -> transparent.
        assert_eq!(
            m.evaluate_outputs(&[false, true, true, false]).unwrap(),
            [false]
        );
    }

    #[test]
    fn full_point_cuts_and_observes() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, applied) = apply_plan(&c, &[TestPoint::full(g1)]).unwrap();
        let r = applied[0].aux_input.unwrap();
        let g2 = m.find_node("g2").unwrap();
        assert_eq!(m.fanins(g2)[0], r);
        assert!(m.is_output(g1));
        // Outputs: [g2, g1]. g2 now = r AND x2 regardless of x0,x1.
        assert_eq!(
            m.evaluate_outputs(&[false, false, true, true]).unwrap(),
            [true, false]
        );
    }

    #[test]
    fn control_point_on_output_line_rewires_po() {
        let c = and_chain();
        let g2 = c.find_node("g2").unwrap();
        let (m, applied) = apply_plan(&c, &[TestPoint::control_and(g2)]).unwrap();
        let cp = applied[0].cp_gate.unwrap();
        assert_eq!(m.outputs(), [cp]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn control_point_on_dangling_line_errors() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let dead = b.gate(GateKind::Not, vec![a], "dead").unwrap();
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        assert!(matches!(
            apply_plan(&c, &[TestPoint::control_and(dead)]),
            Err(NetlistError::InvalidTransform { .. })
        ));
        // But observing dead logic is fine.
        assert!(apply_plan(&c, &[TestPoint::observe(dead)]).is_ok());
    }

    #[test]
    fn stacking_points_at_same_node() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, applied) =
            apply_plan(&c, &[TestPoint::control_and(g1), TestPoint::observe(g1)]).unwrap();
        // The observe taps the original g1 line; the CP output feeds g2.
        assert!(m.is_output(g1));
        assert!(m.validate().is_ok());
        let _ = applied;
    }

    #[test]
    fn observe_then_control_leaves_op_on_modified_line() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, applied) =
            apply_plan(&c, &[TestPoint::observe(g1), TestPoint::control_and(g1)]).unwrap();
        let cp = applied[1].cp_gate.unwrap();
        // The PO tap moved to the CP output (rewire covers outputs).
        assert!(m.is_output(cp));
        assert!(!m.is_output(g1));
    }

    #[test]
    fn node_ids_stable_under_transforms() {
        let c = and_chain();
        let g1 = c.find_node("g1").unwrap();
        let (m, _) = apply_plan(&c, &[TestPoint::control_or(g1)]).unwrap();
        assert_eq!(m.node_name(g1), "g1");
        assert_eq!(m.kind(g1), GateKind::And);
    }

    #[test]
    fn out_of_range_node_rejected() {
        let c = and_chain();
        let bogus = NodeId::from_index(999);
        assert!(matches!(
            apply_plan(&c, &[TestPoint::observe(bogus)]),
            Err(NetlistError::NoSuchNode { .. })
        ));
    }

    #[test]
    fn transforms_preserve_topology_validity() {
        let c = and_chain();
        let plan: Vec<TestPoint> = c
            .node_ids()
            .filter(|&id| c.kind(id) != GateKind::Input)
            .map(TestPoint::control_and)
            .collect();
        let (m, _) = apply_plan(&c, &plan).unwrap();
        assert!(Topology::of(&m).is_ok());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn display_forms() {
        let tp = TestPoint::control_or(NodeId::from_index(3));
        assert_eq!(tp.to_string(), "cp-or@n3");
        assert_eq!(TestPointKind::Full.to_string(), "tp");
    }
}
