use crate::NetlistError;

/// The function computed by a netlist node.
///
/// `Input` marks a primary input (no fanins); `Const0`/`Const1` are tie
/// cells. All multi-input kinds accept arbitrary arity ≥ 1 (an `And` of one
/// signal behaves as a buffer), which keeps algebraic rewrites simple.
///
/// # Example
///
/// ```
/// use tpi_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval([true, true]), false);
/// assert_eq!(GateKind::Xor.eval([true, false, true]), false);
/// assert_eq!(GateKind::And.controlling_value(), Some(false));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Primary input.
    Input,
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Not,
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Parity (odd number of 1s).
    Xor,
    /// Complemented parity.
    Xnor,
}

impl GateKind {
    /// All gate kinds, in declaration order.
    pub const ALL: [GateKind; 11] = [
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Input,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Gate kinds that take fanins, usable as internal nodes of a circuit.
    pub const LOGIC: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Evaluate the gate over boolean fanin values.
    ///
    /// `Input` evaluates to `false` by convention (primary inputs are driven
    /// externally; simulators never call this for inputs).
    ///
    /// # Example
    ///
    /// ```
    /// use tpi_netlist::GateKind;
    /// assert!(GateKind::Or.eval([false, true]));
    /// assert!(!GateKind::Nor.eval([false, true]));
    /// ```
    pub fn eval<I: IntoIterator<Item = bool>>(self, fanins: I) -> bool {
        let mut it = fanins.into_iter();
        match self {
            GateKind::Const0 | GateKind::Input => false,
            GateKind::Const1 => true,
            GateKind::Buf => it.next().unwrap_or(false),
            GateKind::Not => !it.next().unwrap_or(false),
            GateKind::And => it.all(|v| v),
            GateKind::Nand => !it.all(|v| v),
            GateKind::Or => it.any(|v| v),
            GateKind::Nor => !it.any(|v| v),
            GateKind::Xor => it.fold(false, |acc, v| acc ^ v),
            GateKind::Xnor => !it.fold(false, |acc, v| acc ^ v),
        }
    }

    /// Evaluate the gate bit-parallel over 64 patterns packed into `u64`
    /// words (one word per fanin, one pattern per bit lane).
    ///
    /// This is the kernel used by the bit-parallel simulators in `tpi-sim`.
    pub fn eval_words(self, fanins: &[u64]) -> u64 {
        match self {
            GateKind::Const0 | GateKind::Input => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => fanins.first().copied().unwrap_or(0),
            GateKind::Not => !fanins.first().copied().unwrap_or(0),
            GateKind::And => fanins.iter().fold(u64::MAX, |acc, v| acc & v),
            GateKind::Nand => !fanins.iter().fold(u64::MAX, |acc, v| acc & v),
            GateKind::Or => fanins.iter().fold(0, |acc, v| acc | v),
            GateKind::Nor => !fanins.iter().fold(0, |acc, v| acc | v),
            GateKind::Xor => fanins.iter().fold(0, |acc, v| acc ^ v),
            GateKind::Xnor => !fanins.iter().fold(0, |acc, v| acc ^ v),
        }
    }

    /// The input value that forces the output regardless of other inputs,
    /// if the gate has one (`And`/`Nand`: 0, `Or`/`Nor`: 1).
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate complements on top of its monotone core
    /// (`Not`, `Nand`, `Nor`, `Xnor`).
    pub fn inverts_output(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// `true` for kinds with no fanins (`Input`, `Const0`, `Const1`).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Inclusive range of allowed fanin counts.
    pub fn arity_range(self) -> (usize, usize) {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            _ => (1, usize::MAX),
        }
    }

    /// Validate a fanin count against [`GateKind::arity_range`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArity`] when `n` is outside the
    /// allowed range.
    pub fn check_arity(self, n: usize) -> Result<(), NetlistError> {
        let (lo, hi) = self.arity_range();
        if n < lo || n > hi {
            Err(NetlistError::InvalidArity {
                kind: self.bench_name(),
                got: n,
            })
        } else {
            Ok(())
        }
    }

    /// Canonical upper-case name used in `.bench` files.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Input => "INPUT",
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parse a `.bench` gate keyword (case-insensitive; `BUF` and `BUFF`
    /// both accepted). Returns `None` for unknown keywords (including
    /// `DFF`, which the parser handles separately).
    pub fn from_bench_name(s: &str) -> Option<GateKind> {
        Some(match s.to_ascii_uppercase().as_str() {
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            "INPUT" => GateKind::Input,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            _ => return None,
        })
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.bench_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_input() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval([a, b]), e, "{kind} on ({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Buf.eval([true]));
        assert!(!GateKind::Buf.eval([false]));
        assert!(!GateKind::Not.eval([true]));
        assert!(GateKind::Not.eval([false]));
    }

    #[test]
    fn constants_and_input() {
        assert!(!GateKind::Const0.eval([]));
        assert!(GateKind::Const1.eval([]));
        assert!(!GateKind::Input.eval([]));
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        // Exhaust all 3-input patterns for every logic kind.
        for kind in GateKind::LOGIC {
            let (lo, _) = kind.arity_range();
            let arity = if lo == 1 && kind.arity_range().1 == 1 {
                1
            } else {
                3
            };
            let mut words = vec![0u64; arity];
            let n = 1usize << arity;
            for p in 0..n {
                for (i, w) in words.iter_mut().enumerate() {
                    if p & (1 << i) != 0 {
                        *w |= 1 << p;
                    }
                }
            }
            let out = kind.eval_words(&words);
            for p in 0..n {
                let bits: Vec<bool> = (0..arity).map(|i| p & (1 << i) != 0).collect();
                assert_eq!(
                    (out >> p) & 1 == 1,
                    kind.eval(bits.iter().copied()),
                    "{kind} pattern {p:03b}"
                );
            }
        }
    }

    #[test]
    fn xor_is_parity_for_wide_gates() {
        assert!(GateKind::Xor.eval([true, true, true]));
        assert!(!GateKind::Xnor.eval([true, true, true]));
        assert!(!GateKind::Xor.eval([true, true, true, true]));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_bench_name(kind.bench_name()), Some(kind));
            assert_eq!(
                GateKind::from_bench_name(&kind.bench_name().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_bench_name("DFF"), None);
        assert_eq!(GateKind::from_bench_name("bogus"), None);
    }

    #[test]
    fn arity_validation() {
        assert!(GateKind::Not.check_arity(1).is_ok());
        assert!(GateKind::Not.check_arity(2).is_err());
        assert!(GateKind::And.check_arity(1).is_ok());
        assert!(GateKind::And.check_arity(9).is_ok());
        assert!(GateKind::And.check_arity(0).is_err());
        assert!(GateKind::Input.check_arity(0).is_ok());
        assert!(GateKind::Input.check_arity(1).is_err());
    }

    #[test]
    fn single_input_and_or_behave_as_buffer() {
        assert!(GateKind::And.eval([true]));
        assert!(!GateKind::And.eval([false]));
        assert!(GateKind::Or.eval([true]));
        assert!(!GateKind::Nand.eval([true]));
    }
}
