//! Gate-level combinational netlists for design-for-test research.
//!
//! `tpi-netlist` is the structural substrate of the `krishnamurthy-tpi`
//! workspace. It provides:
//!
//! * a compact gate-level [`Circuit`] representation with named nets,
//!   primary inputs and primary outputs;
//! * a [`CircuitBuilder`] for programmatic construction;
//! * an ISCAS-85 **`.bench`** reader/writer ([`bench_format`]), including
//!   full-scan handling of `DFF` elements;
//! * structural analyses: levelisation and fanout tables ([`Topology`]),
//!   cones and statistics ([`analysis`]), fanout-free-region decomposition
//!   and reconvergence detection ([`ffr`]);
//! * **test-point transforms** ([`transform`]): observation points, AND/OR
//!   control points and full (cut) test points, applied as rewrites that
//!   keep the circuit well formed;
//! * Graphviz export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use tpi_netlist::{CircuitBuilder, GateKind, bench_format};
//!
//! # fn main() -> Result<(), tpi_netlist::NetlistError> {
//! let mut b = CircuitBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.gate(GateKind::Xor, vec![a, c], "sum")?;
//! let carry = b.gate(GateKind::And, vec![a, c], "carry")?;
//! b.output(sum);
//! b.output(carry);
//! let circuit = b.finish()?;
//!
//! assert_eq!(circuit.evaluate(&[true, true])?[sum.index()], false);
//! let text = bench_format::to_bench(&circuit);
//! let back = bench_format::parse_bench(&text)?;
//! assert_eq!(back.node_count(), circuit.node_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bench_format;
mod builder;
mod circuit;
pub mod dot;
mod error;
pub mod ffr;
mod gate;
mod level;
pub mod rewrite;
pub mod transform;
pub mod verilog;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Node, NodeId};
pub use error::NetlistError;
pub use gate::GateKind;
pub use level::{dangling_gates, Fanout, Topology};
pub use transform::{AppliedTestPoint, TestPoint, TestPointKind};
