//! Structural analyses: cones, reachability and summary statistics.

use crate::{Circuit, GateKind, NodeId, Topology};

/// Summary statistics of a circuit, as printed in benchmark tables.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Total node count.
    pub nodes: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Logic gates (non-source nodes).
    pub gates: usize,
    /// Circuit depth (maximum logic level).
    pub depth: u32,
    /// Number of fanout stems (signals consumed ≥ 2 times).
    pub stems: usize,
    /// Mean fanin over logic gates.
    pub avg_fanin: f64,
    /// Maximum fanout over all signals.
    pub max_fanout: usize,
}

/// Compute [`CircuitStats`].
///
/// # Example
///
/// ```
/// use tpi_netlist::{bench_format, analysis, Topology};
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = bench_format::parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")?;
/// let topo = Topology::of(&c)?;
/// let stats = analysis::stats(&c, &topo);
/// assert_eq!(stats.gates, 1);
/// assert_eq!(stats.depth, 1);
/// # Ok(())
/// # }
/// ```
pub fn stats(circuit: &Circuit, topo: &Topology) -> CircuitStats {
    let gates = circuit.gate_count();
    let fanin_sum: usize = circuit
        .node_ids()
        .filter(|&id| !circuit.kind(id).is_source())
        .map(|id| circuit.fanins(id).len())
        .sum();
    CircuitStats {
        nodes: circuit.node_count(),
        inputs: circuit.inputs().len(),
        outputs: circuit.outputs().len(),
        gates,
        depth: topo.max_level(),
        stems: circuit
            .node_ids()
            .filter(|&id| topo.is_stem(circuit, id))
            .count(),
        avg_fanin: if gates == 0 {
            0.0
        } else {
            fanin_sum as f64 / gates as f64
        },
        max_fanout: circuit
            .node_ids()
            .map(|id| topo.fanout_count(id) + usize::from(circuit.is_output(id)))
            .max()
            .unwrap_or(0),
    }
}

/// The transitive fanin cone of `root` (all nodes whose value can affect
/// `root`, including `root` itself), as a sorted id list.
pub fn fanin_cone(circuit: &Circuit, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; circuit.node_count()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        for &f in circuit.fanins(id) {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    collect_seen(&seen)
}

/// The transitive fanout cone of `root` (all nodes `root` can affect,
/// including `root` itself), as a sorted id list.
pub fn fanout_cone(circuit: &Circuit, topo: &Topology, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; circuit.node_count()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        for fo in topo.fanouts(id) {
            if !seen[fo.gate.index()] {
                seen[fo.gate.index()] = true;
                stack.push(fo.gate);
            }
        }
    }
    collect_seen(&seen)
}

/// The union of transitive fanout cones of `roots` (each root included),
/// as a node-indexed membership mask.
///
/// This is the "dirty cone" primitive for incremental re-evaluation: after
/// a structural edit, the nodes whose values can have changed are exactly
/// the forward closure of the edited lines.
pub fn fanout_cone_mask(circuit: &Circuit, topo: &Topology, roots: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; circuit.node_count()];
    let mut stack: Vec<NodeId> = Vec::with_capacity(roots.len());
    for &r in roots {
        if !seen[r.index()] {
            seen[r.index()] = true;
            stack.push(r);
        }
    }
    while let Some(id) = stack.pop() {
        for fo in topo.fanouts(id) {
            if !seen[fo.gate.index()] {
                seen[fo.gate.index()] = true;
                stack.push(fo.gate);
            }
        }
    }
    seen
}

/// Primary outputs reachable from `root`.
pub fn reachable_outputs(circuit: &Circuit, topo: &Topology, root: NodeId) -> Vec<NodeId> {
    let cone = fanout_cone(circuit, topo, root);
    circuit
        .outputs()
        .iter()
        .copied()
        .filter(|o| cone.binary_search(o).is_ok())
        .collect()
}

/// Whether every signal of the circuit can reach at least one primary
/// output (no dead logic).
pub fn fully_observable_structure(circuit: &Circuit, topo: &Topology) -> bool {
    // Reverse reachability from the outputs.
    let mut seen = vec![false; circuit.node_count()];
    let mut stack: Vec<NodeId> = circuit.outputs().to_vec();
    for &o in circuit.outputs() {
        seen[o.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in circuit.fanins(id) {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    let _ = topo;
    seen.iter().all(|&s| s)
}

fn collect_seen(seen: &[bool]) -> Vec<NodeId> {
    seen.iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// Count gates by kind, indexed by [`GateKind::ALL`] order.
pub fn kind_histogram(circuit: &Circuit) -> Vec<(GateKind, usize)> {
    GateKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                circuit
                    .node_ids()
                    .filter(|&id| circuit.kind(id) == k)
                    .count(),
            )
        })
        .filter(|&(_, n)| n > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let n1 = b.gate(GateKind::And, vec![a, c], "n1").unwrap();
        let n2 = b.gate(GateKind::Or, vec![a, n1], "n2").unwrap();
        let n3 = b.gate(GateKind::Not, vec![n1], "n3").unwrap();
        b.output(n2);
        b.output(n3);
        b.finish().unwrap()
    }

    #[test]
    fn stats_basics() {
        let c = sample();
        let t = Topology::of(&c).unwrap();
        let s = stats(&c, &t);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 2);
        assert_eq!(s.stems, 2); // a feeds two gates; n1 feeds two gates
        assert!((s.avg_fanin - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_fanout, 2);
    }

    #[test]
    fn cones() {
        let c = sample();
        let t = Topology::of(&c).unwrap();
        let n1 = c.find_node("n1").unwrap();
        let fic = fanin_cone(&c, n1);
        assert_eq!(fic.len(), 3); // a, b, n1
        let foc = fanout_cone(&c, &t, n1);
        assert_eq!(foc.len(), 3); // n1, n2, n3
        let outs = reachable_outputs(&c, &t, n1);
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn observability_structure() {
        let c = sample();
        let t = Topology::of(&c).unwrap();
        assert!(fully_observable_structure(&c, &t));

        let mut b = CircuitBuilder::new("dead");
        let a = b.input("a");
        let _dead = b.gate(GateKind::Not, vec![a], "dead").unwrap();
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c2 = b.finish().unwrap();
        let t2 = Topology::of(&c2).unwrap();
        assert!(!fully_observable_structure(&c2, &t2));
    }

    #[test]
    fn histogram() {
        let c = sample();
        let h = kind_histogram(&c);
        assert!(h.contains(&(GateKind::Input, 2)));
        assert!(h.contains(&(GateKind::And, 1)));
        assert!(!h.iter().any(|&(k, _)| k == GateKind::Xor));
    }

    #[test]
    fn fanin_cone_of_input_is_self() {
        let c = sample();
        let a = c.find_node("a").unwrap();
        assert_eq!(fanin_cone(&c, a), vec![a]);
    }
}
