use crate::{Circuit, GateKind, NetlistError, NodeId};

/// One consumer of a signal: the consuming gate and the pin index at which
/// the signal enters it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fanout {
    /// The consuming gate.
    pub gate: NodeId,
    /// Zero-based pin position within the consuming gate's fanin list.
    pub pin: u32,
}

/// Levelised view of a circuit: topological order, logic levels and fanout
/// tables.
///
/// `Topology` is a snapshot — recompute it after transforming the circuit.
///
/// # Example
///
/// ```
/// use tpi_netlist::{CircuitBuilder, GateKind, Topology};
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("c");
/// let a = b.input("a");
/// let n = b.gate(GateKind::Not, vec![a], "n")?;
/// let g = b.gate(GateKind::And, vec![a, n], "g")?;
/// b.output(g);
/// let c = b.finish()?;
/// let topo = Topology::of(&c)?;
/// assert_eq!(topo.level(g), 2);
/// assert_eq!(topo.fanout_count(a), 2); // feeds NOT and AND
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    order: Vec<NodeId>,
    level: Vec<u32>,
    fanouts: Vec<Vec<Fanout>>,
    max_level: u32,
}

impl Topology {
    /// Compute the topology of a circuit.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cycle`] if the circuit has a combinational cycle.
    pub fn of(circuit: &Circuit) -> Result<Topology, NetlistError> {
        let n = circuit.node_count();
        let mut fanouts: Vec<Vec<Fanout>> = vec![Vec::new(); n];
        let mut indeg: Vec<u32> = vec![0; n];
        for id in circuit.node_ids() {
            let fanins = circuit.fanins(id);
            indeg[id.index()] = fanins.len() as u32;
            for (pin, &src) in fanins.iter().enumerate() {
                fanouts[src.index()].push(Fanout {
                    gate: id,
                    pin: pin as u32,
                });
            }
        }

        let mut order = Vec::with_capacity(n);
        let mut level = vec![0u32; n];
        let mut ready: Vec<NodeId> = circuit
            .node_ids()
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut remaining = indeg.clone();
        while let Some(id) = ready.pop() {
            order.push(id);
            for fo in &fanouts[id.index()] {
                let gi = fo.gate.index();
                let lvl = level[id.index()] + 1;
                if lvl > level[gi] {
                    level[gi] = lvl;
                }
                remaining[gi] -= 1;
                if remaining[gi] == 0 {
                    ready.push(fo.gate);
                }
            }
        }
        if order.len() != n {
            let stuck = circuit
                .node_ids()
                .find(|id| remaining[id.index()] > 0)
                .expect("cycle implies a stuck node");
            return Err(NetlistError::Cycle {
                node: circuit.node_name(stuck).to_string(),
            });
        }
        // Make the order deterministic and level-monotone: sort by
        // (level, id). Kahn's stack order already respects dependencies,
        // but a canonical order helps reproducibility.
        order.sort_by_key(|id| (level[id.index()], id.index()));
        let max_level = level.iter().copied().max().unwrap_or(0);
        Ok(Topology {
            order,
            level,
            fanouts,
            max_level,
        })
    }

    /// Node ids in a valid topological order (sources first), sorted by
    /// (level, id) for determinism.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Logic level of a node: 0 for sources, 1 + max fanin level otherwise.
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Maximum level over all nodes (circuit depth).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Consumers of a node's signal, with pin positions.
    pub fn fanouts(&self, id: NodeId) -> &[Fanout] {
        &self.fanouts[id.index()]
    }

    /// Number of gate pins consuming the signal (primary-output taps not
    /// included; see [`Topology::is_stem`] for the combined view).
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.fanouts[id.index()].len()
    }

    /// Whether a node is a *fanout stem*: its signal is consumed at two or
    /// more places, counting a primary-output tap as one consumer.
    pub fn is_stem(&self, circuit: &Circuit, id: NodeId) -> bool {
        let po = usize::from(circuit.is_output(id));
        self.fanout_count(id) + po >= 2
    }

    /// Whether the signal drives nothing at all (dangling node).
    pub fn is_dangling(&self, circuit: &Circuit, id: NodeId) -> bool {
        self.fanout_count(id) == 0 && !circuit.is_output(id)
    }
}

/// Convenience: the number of dangling (unused) nodes, excluding inputs.
pub fn dangling_gates(circuit: &Circuit, topo: &Topology) -> usize {
    circuit
        .node_ids()
        .filter(|&id| circuit.kind(id) != GateKind::Input && topo.is_dangling(circuit, id))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn diamond() -> Circuit {
        // a -> n1, n2; n1,n2 -> y (reconvergent diamond)
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, vec![a], "n1").unwrap();
        let n2 = b.gate(GateKind::Buf, vec![a], "n2").unwrap();
        let y = b.gate(GateKind::And, vec![n1, n2], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn levels_and_order() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        let a = c.find_node("a").unwrap();
        let y = c.find_node("y").unwrap();
        assert_eq!(t.level(a), 0);
        assert_eq!(t.level(y), 2);
        assert_eq!(t.max_level(), 2);
        // Order respects dependencies.
        let pos: Vec<usize> = c
            .node_ids()
            .map(|id| t.order().iter().position(|&o| o == id).unwrap())
            .collect();
        for id in c.node_ids() {
            for &f in c.fanins(id) {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn fanout_tables() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        let a = c.find_node("a").unwrap();
        let y = c.find_node("y").unwrap();
        assert_eq!(t.fanout_count(a), 2);
        assert!(t.is_stem(&c, a));
        assert_eq!(t.fanout_count(y), 0);
        assert!(!t.is_dangling(&c, y)); // it is a PO
        let n1 = c.find_node("n1").unwrap();
        assert_eq!(t.fanouts(n1), [Fanout { gate: y, pin: 0 }]);
    }

    #[test]
    fn po_tap_counts_toward_stem() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, vec![a], "g").unwrap();
        let h = b.gate(GateKind::Not, vec![g], "h").unwrap();
        b.output(g); // g is observed AND feeds h
        b.output(h);
        let c = b.finish().unwrap();
        let t = Topology::of(&c).unwrap();
        assert!(t.is_stem(&c, c.find_node("g").unwrap()));
        assert!(!t.is_stem(&c, c.find_node("h").unwrap()));
    }

    #[test]
    fn detects_cycle() {
        // Build a cyclic circuit by rewiring.
        let mut c = diamond();
        let n1 = c.find_node("n1").unwrap();
        let y = c.find_node("y").unwrap();
        let a = c.find_node("a").unwrap();
        // n1's fanin a -> y creates cycle n1 -> y -> ... n1? y consumes n1,
        // rewiring a->y in gates gives n1 = NOT(y): cycle n1 <-> y.
        c.rewire(a, y, &[]);
        assert!(matches!(Topology::of(&c), Err(NetlistError::Cycle { .. })));
        let _ = n1;
    }

    #[test]
    fn dangling_detection() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let _unused = b.gate(GateKind::Not, vec![a], "dead").unwrap();
        let g = b.gate(GateKind::Buf, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let t = Topology::of(&c).unwrap();
        assert!(t.is_dangling(&c, c.find_node("dead").unwrap()));
        assert_eq!(dangling_gates(&c, &t), 1);
    }

    #[test]
    fn duplicate_pin_fanouts_recorded_separately() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Xor, vec![a, a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let t = Topology::of(&c).unwrap();
        assert_eq!(t.fanout_count(a), 2);
        assert_eq!(t.fanouts(a)[0].pin, 0);
        assert_eq!(t.fanouts(a)[1].pin, 1);
    }
}
