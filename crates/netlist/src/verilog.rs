//! Structural Verilog export.
//!
//! Emits a flat gate-level module using Verilog primitive gates
//! (`and`, `nand`, `or`, `nor`, `xor`, `xnor`, `not`, `buf`), suitable for
//! handing a modified (test-point-inserted) netlist to downstream
//! synthesis or equivalence-checking tools.

use crate::{Circuit, GateKind};

/// Render the circuit as a structural Verilog module.
///
/// Signal names are sanitised to Verilog identifiers (non-alphanumeric
/// characters become `_`; a leading digit gets an `n` prefix). Name
/// collisions after sanitisation are disambiguated with the node index.
///
/// # Example
///
/// ```
/// use tpi_netlist::{bench_format, verilog};
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = bench_format::parse_bench("INPUT(a)\nINPUT(b)\ny = NAND(a, b)\nOUTPUT(y)\n")?;
/// let v = verilog::to_verilog(&c);
/// assert!(v.contains("module bench"));
/// assert!(v.contains("nand"));
/// # Ok(())
/// # }
/// ```
pub fn to_verilog(circuit: &Circuit) -> String {
    let names = sanitised_names(circuit);
    let module = sanitise(circuit.name());
    let mut s = String::new();
    s.push_str(&format!("// generated from `{}`\n", circuit.name()));
    s.push_str(&format!("module {module} (\n"));
    let mut ports: Vec<String> = Vec::new();
    for &i in circuit.inputs() {
        ports.push(format!("  input  wire {}", names[i.index()]));
    }
    for (oi, &o) in circuit.outputs().iter().enumerate() {
        // An output may alias an internal net (or even an input); emit a
        // dedicated port wire driven by a buffer.
        ports.push(format!("  output wire po{oi}_{}", names[o.index()]));
    }
    s.push_str(&ports.join(",\n"));
    s.push_str("\n);\n\n");

    for id in circuit.node_ids() {
        if !circuit.kind(id).is_source() {
            s.push_str(&format!("  wire {};\n", names[id.index()]));
        }
    }
    for id in circuit.node_ids() {
        match circuit.kind(id) {
            GateKind::Const0 => {
                s.push_str(&format!("  wire {};\n", names[id.index()]));
                s.push_str(&format!("  assign {} = 1'b0;\n", names[id.index()]));
            }
            GateKind::Const1 => {
                s.push_str(&format!("  wire {};\n", names[id.index()]));
                s.push_str(&format!("  assign {} = 1'b1;\n", names[id.index()]));
            }
            _ => {}
        }
    }
    s.push('\n');
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        let prim = match node.kind() {
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            _ => continue,
        };
        let args: Vec<&str> = std::iter::once(names[id.index()].as_str())
            .chain(node.fanins().iter().map(|f| names[f.index()].as_str()))
            .collect();
        s.push_str(&format!(
            "  {prim} g{} ({});\n",
            id.index(),
            args.join(", ")
        ));
    }
    s.push('\n');
    for (oi, &o) in circuit.outputs().iter().enumerate() {
        s.push_str(&format!(
            "  buf po{oi}_drv (po{oi}_{}, {});\n",
            names[o.index()],
            names[o.index()]
        ));
    }
    s.push_str("endmodule\n");
    s
}

fn sanitise(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

fn sanitised_names(circuit: &Circuit) -> Vec<String> {
    let mut names: Vec<String> = circuit
        .node_ids()
        .map(|id| sanitise(circuit.node_name(id)))
        .collect();
    let mut seen = std::collections::HashSet::with_capacity(names.len());
    for (i, n) in names.iter_mut().enumerate() {
        if !seen.insert(n.clone()) {
            n.push_str(&format!("_{i}"));
            seen.insert(n.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, TestPoint};

    #[test]
    fn emits_all_gate_kinds() {
        let mut b = CircuitBuilder::new("kinds");
        let xs = b.inputs(2, "x");
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let g = b
                .gate(kind, vec![xs[0], xs[1]], format!("g_{kind}"))
                .unwrap();
            b.output(g);
        }
        let inv = b.gate(GateKind::Not, vec![xs[0]], "inv").unwrap();
        b.output(inv);
        let c = b.finish().unwrap();
        let v = to_verilog(&c);
        for prim in ["and", "nand", "or", "nor", "xor", "xnor", "not"] {
            assert!(v.contains(&format!("  {prim} ")), "{prim} missing:\n{v}");
        }
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn sanitises_iscas_numeric_names() {
        let c =
            crate::bench_format::parse_bench("INPUT(1)\nINPUT(2)\n10 = NAND(1, 2)\nOUTPUT(10)\n")
                .unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("n10"));
        assert!(!v.contains("wire 10;"));
    }

    #[test]
    fn constants_become_assigns() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![one, x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("assign one = 1'b1;"));
    }

    #[test]
    fn test_point_circuits_export() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let g = b.gate(GateKind::Not, vec![x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let (m, _) = crate::transform::apply_plan(&c, &[TestPoint::control_and(x)]).unwrap();
        let v = to_verilog(&m);
        assert!(v.contains("tp_r"));
        assert!(v.contains("tp_cp"));
    }

    #[test]
    fn duplicate_sanitised_names_disambiguated() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("sig.a");
        let d = b.input("sig_a");
        let g = b.gate(GateKind::And, vec![a, d], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let v = to_verilog(&c);
        // Both inputs appear as distinct identifiers.
        assert!(v.contains("sig_a"));
        assert!(v.contains("sig_a_1"));
    }
}
