//! Cleanup rewrites: constant propagation, buffer sweeping and dead-logic
//! removal.
//!
//! Generated and transformed netlists accumulate redundancies (constant
//! fanins, single-input AND/OR gates, unobserved cones). These passes
//! normalise a circuit before analysis, preserving the functional
//! behaviour at every primary output. Because node ids are *not* stable
//! under [`remove_dead_logic`], each pass returns a fresh circuit plus the
//! old→new id mapping.

use std::collections::HashMap;

use crate::{Circuit, GateKind, NetlistError, NodeId, Topology};

/// Result of a rewrite: the new circuit and the id remapping
/// (`map[old.index()] == Some(new)` when the node survived).
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The rewritten circuit.
    pub circuit: Circuit,
    /// Old node id → new node id (None if removed).
    pub map: Vec<Option<NodeId>>,
}

impl Rewritten {
    /// Translate an old node id.
    pub fn translate(&self, old: NodeId) -> Option<NodeId> {
        self.map[old.index()]
    }
}

/// Remove logic that cannot reach any primary output.
///
/// # Errors
///
/// [`NetlistError::Cycle`] on cyclic input.
pub fn remove_dead_logic(circuit: &Circuit) -> Result<Rewritten, NetlistError> {
    // Reverse reachability from the outputs; keep all primary inputs (the
    /* interface must not shrink). */
    let mut keep = vec![false; circuit.node_count()];
    let mut stack: Vec<NodeId> = circuit.outputs().to_vec();
    for &o in circuit.outputs() {
        keep[o.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in circuit.fanins(id) {
            if !keep[f.index()] {
                keep[f.index()] = true;
                stack.push(f);
            }
        }
    }
    for &i in circuit.inputs() {
        keep[i.index()] = true;
    }

    let topo = Topology::of(circuit)?;
    let mut out = Circuit::new(circuit.name());
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.node_count()];
    for &id in topo.order() {
        if !keep[id.index()] {
            continue;
        }
        let node = circuit.node(id);
        let fanins: Vec<NodeId> = node
            .fanins()
            .iter()
            .map(|f| map[f.index()].expect("kept nodes have kept fanins"))
            .collect();
        let new_id = out.add_node(node.kind(), fanins, circuit.node_name(id))?;
        map[id.index()] = Some(new_id);
    }
    for &o in circuit.outputs() {
        out.add_output(map[o.index()].expect("outputs are kept"))?;
    }
    out.validate()?;
    Ok(Rewritten { circuit: out, map })
}

/// Propagate constants and collapse degenerate gates, in place
/// (node ids stable; dead nodes are left dangling — follow with
/// [`remove_dead_logic`] to reclaim them).
///
/// Rules applied to fixpoint, in topological order:
/// * a gate with a controlling constant fanin becomes a constant;
/// * constants on non-controlling positions are dropped from the fanin
///   list; empty lists degenerate to the gate's identity constant;
/// * single-input AND/OR become buffers, single-input NAND/NOR inverters;
/// * `BUF(x)` consumers are rewired to `x` directly; `NOT(NOT(x))`
///   likewise.
///
/// Returns the number of nodes simplified.
///
/// # Errors
///
/// [`NetlistError::Cycle`] on cyclic input.
pub fn propagate_constants(circuit: &mut Circuit) -> Result<usize, NetlistError> {
    let topo = Topology::of(circuit)?;
    let mut simplified = 0usize;
    // Resolved constant value per node, when known.
    let mut constant: HashMap<NodeId, bool> = HashMap::new();
    // Forwarding: node -> equivalent earlier node (buffer chains).
    let mut forward: HashMap<NodeId, NodeId> = HashMap::new();

    let resolve = |forward: &HashMap<NodeId, NodeId>, mut id: NodeId| {
        while let Some(&next) = forward.get(&id) {
            id = next;
        }
        id
    };

    for &id in topo.order() {
        let kind = circuit.kind(id);
        match kind {
            GateKind::Const0 => {
                constant.insert(id, false);
                continue;
            }
            GateKind::Const1 => {
                constant.insert(id, true);
                continue;
            }
            GateKind::Input => continue,
            _ => {}
        }
        // Resolve fanins through forwarding.
        let fanins: Vec<NodeId> = circuit
            .fanins(id)
            .iter()
            .map(|&f| resolve(&forward, f))
            .collect();

        // Unary gates first: constant folding or forwarding.
        if matches!(kind, GateKind::Buf | GateKind::Not) {
            let f = fanins[0];
            match constant.get(&f).copied() {
                Some(v) => {
                    constant.insert(id, v ^ (kind == GateKind::Not));
                    simplified += 1;
                }
                None if kind == GateKind::Buf => {
                    forward.insert(id, f);
                    simplified += 1;
                }
                None => {
                    set_fanins(circuit, id, vec![f])?;
                }
            }
            continue;
        }

        let control = kind.controlling_value();
        let inverted = kind.inverts_output();
        let mut live: Vec<NodeId> = Vec::with_capacity(fanins.len());
        let mut forced: Option<bool> = None;
        let mut parity_flip = false;
        for f in fanins {
            match constant.get(&f).copied() {
                Some(v) => match kind {
                    GateKind::Xor | GateKind::Xnor => parity_flip ^= v,
                    _ => {
                        if Some(v) == control {
                            // A controlling constant fixes the output.
                            forced = Some(v ^ inverted);
                        }
                        // Non-controlling constants simply drop out.
                    }
                },
                None => live.push(f),
            }
        }
        if let Some(v) = forced {
            constant.insert(id, v);
            simplified += 1;
            continue;
        }
        match kind {
            GateKind::Xor | GateKind::Xnor => {
                if live.is_empty() {
                    constant.insert(id, parity_flip ^ (kind == GateKind::Xnor));
                    simplified += 1;
                    continue;
                }
                // Fold the accumulated constant parity into the gate kind.
                let new_kind = match (kind, parity_flip) {
                    (GateKind::Xor, true) => GateKind::Xnor,
                    (GateKind::Xnor, true) => GateKind::Xor,
                    (k, _) => k,
                };
                set_kind(circuit, id, new_kind)?;
                set_fanins(circuit, id, live)?;
            }
            _ => {
                if live.is_empty() {
                    // All fanins were non-controlling constants: the gate
                    // sits at its identity value, inversion applied.
                    let identity = matches!(kind, GateKind::And | GateKind::Nand);
                    constant.insert(id, identity ^ inverted);
                    simplified += 1;
                    continue;
                }
                set_fanins(circuit, id, live)?;
            }
        }
    }

    // Materialise resolved constants and forwarding by rewiring consumers.
    let const_ids: Vec<(NodeId, bool)> = constant
        .iter()
        .filter(|(id, _)| !circuit.kind(**id).is_source())
        .map(|(&id, &v)| (id, v))
        .collect();
    if !const_ids.is_empty() {
        // A shared pair of constant nodes.
        let zero = find_or_add_const(circuit, false)?;
        let one = find_or_add_const(circuit, true)?;
        for (id, v) in const_ids {
            let target = if v { one } else { zero };
            circuit.rewire(id, target, &[]);
        }
    }
    let forwards: Vec<(NodeId, NodeId)> = forward.iter().map(|(&a, &b)| (a, b)).collect();
    for (from, to) in forwards {
        let to = resolve(&forward, to);
        circuit.rewire(from, to, &[]);
    }
    circuit.validate()?;
    Ok(simplified)
}

fn set_fanins(circuit: &mut Circuit, id: NodeId, fanins: Vec<NodeId>) -> Result<(), NetlistError> {
    circuit.set_node(id, circuit.kind(id), fanins)
}

fn set_kind(circuit: &mut Circuit, id: NodeId, kind: GateKind) -> Result<(), NetlistError> {
    let fanins = circuit.fanins(id).to_vec();
    circuit.set_node(id, kind, fanins)
}

fn find_or_add_const(circuit: &mut Circuit, value: bool) -> Result<NodeId, NetlistError> {
    let kind = if value {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    if let Some(id) = circuit.node_ids().find(|&id| circuit.kind(id) == kind) {
        return Ok(id);
    }
    let name = if value { "const_one" } else { "const_zero" };
    let mut candidate = name.to_string();
    while circuit.find_node(&candidate).is_some() {
        candidate.push('_');
    }
    circuit.add_node(kind, vec![], candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn behaviour(circuit: &Circuit) -> Vec<Vec<bool>> {
        let n = circuit.inputs().len();
        (0..(1u32 << n))
            .map(|p| {
                let assignment: Vec<bool> = (0..n).map(|i| p & (1 << i) != 0).collect();
                circuit.evaluate_outputs(&assignment).unwrap()
            })
            .collect()
    }

    #[test]
    fn dead_logic_removed_behaviour_preserved() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.input("x");
        let _dead = b.gate(GateKind::Xor, vec![a, x], "dead").unwrap();
        let g = b.gate(GateKind::And, vec![a, x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let before = behaviour(&c);
        let rewritten = remove_dead_logic(&c).unwrap();
        assert_eq!(rewritten.circuit.node_count(), 3);
        assert_eq!(behaviour(&rewritten.circuit), before);
        assert!(rewritten.translate(c.find_node("dead").unwrap()).is_none());
        assert!(rewritten.translate(g).is_some());
    }

    #[test]
    fn inputs_survive_dead_logic_removal() {
        let mut b = CircuitBuilder::new("c");
        let _unused = b.input("unused");
        let x = b.input("x");
        let g = b.gate(GateKind::Buf, vec![x], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let rewritten = remove_dead_logic(&c).unwrap();
        assert_eq!(rewritten.circuit.inputs().len(), 2);
    }

    #[test]
    fn controlling_constant_forces_gate() {
        let mut b = CircuitBuilder::new("c");
        let zero = b.constant(false, "zero").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![zero, x], "g").unwrap();
        let y = b.gate(GateKind::Or, vec![g, x], "y").unwrap();
        b.output(y);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        let n = propagate_constants(&mut c).unwrap();
        assert!(n >= 1);
        assert_eq!(behaviour(&c), before);
        // g resolved to constant 0, which is non-controlling for the OR:
        // y degenerates to OR(x) and g dangles.
        let y = c.find_node("y").unwrap();
        assert_eq!(c.fanins(y), [x]);
        let topo = Topology::of(&c).unwrap();
        assert!(topo.is_dangling(&c, g));
    }

    #[test]
    fn nonconrolling_constants_drop_out() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let x = b.input("x");
        let yv = b.input("y");
        let g = b.gate(GateKind::And, vec![one, x, yv], "g").unwrap();
        b.output(g);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        propagate_constants(&mut c).unwrap();
        assert_eq!(behaviour(&c), before);
        let g = c.find_node("g").unwrap();
        assert_eq!(c.fanins(g).len(), 2);
    }

    #[test]
    fn buffers_forwarded() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let b1 = b.gate(GateKind::Buf, vec![x], "b1").unwrap();
        let b2 = b.gate(GateKind::Buf, vec![b1], "b2").unwrap();
        let g = b.gate(GateKind::Not, vec![b2], "g").unwrap();
        b.output(g);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        propagate_constants(&mut c).unwrap();
        assert_eq!(behaviour(&c), before);
        let g = c.find_node("g").unwrap();
        assert_eq!(c.fanins(g)[0], x, "NOT should read x directly");
    }

    #[test]
    fn xor_constant_parity_folds_into_kind() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let x = b.input("x");
        let yv = b.input("y");
        let g = b.gate(GateKind::Xor, vec![one, x, yv], "g").unwrap();
        b.output(g);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        propagate_constants(&mut c).unwrap();
        assert_eq!(behaviour(&c), before);
        let g = c.find_node("g").unwrap();
        assert_eq!(c.kind(g), GateKind::Xnor);
        assert_eq!(c.fanins(g).len(), 2);
    }

    #[test]
    fn all_constant_gate_resolves() {
        let mut b = CircuitBuilder::new("c");
        let one = b.constant(true, "one").unwrap();
        let zero = b.constant(false, "zero").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::Nor, vec![one, zero], "g").unwrap();
        let y = b.gate(GateKind::Or, vec![g, x], "y").unwrap();
        b.output(y);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        propagate_constants(&mut c).unwrap();
        assert_eq!(behaviour(&c), before);
    }

    #[test]
    fn pipeline_constant_then_dead() {
        // After constant propagation the forced gates dangle; dead-logic
        // removal reclaims them.
        let mut b = CircuitBuilder::new("c");
        let zero = b.constant(false, "zero").unwrap();
        let x = b.input("x");
        let g = b.gate(GateKind::And, vec![zero, x], "g").unwrap();
        let h = b.gate(GateKind::Or, vec![g, x], "h").unwrap();
        b.output(h);
        let mut c = b.finish().unwrap();
        let before = behaviour(&c);
        propagate_constants(&mut c).unwrap();
        let rewritten = remove_dead_logic(&c).unwrap();
        assert_eq!(behaviour(&rewritten.circuit), before);
        assert!(rewritten.circuit.node_count() < c.node_count());
    }
}
