use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError};

/// Index of a node (gate / input / constant) within a [`Circuit`].
///
/// Node ids are dense, stable for the lifetime of the circuit, and identify
/// both the node and the signal (net) it drives — every node drives exactly
/// one net.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Construct from a raw index.
    ///
    /// Out-of-range ids are caught when used against a circuit.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// The raw index, usable to address per-node side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a [`Circuit`]: a gate kind plus its fanin signals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
}

impl Node {
    /// The node's function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The node's fanin signals, in pin order.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }
}

/// A combinational gate-level circuit.
///
/// Invariants (enforced at construction and after every transform):
///
/// * every fanin references an existing node;
/// * fanin counts respect [`GateKind::arity_range`];
/// * the graph is acyclic (checked by [`Topology::of`](crate::Topology::of)
///   and [`Circuit::evaluate`]);
/// * signal names are unique.
///
/// Circuits are built with [`CircuitBuilder`](crate::CircuitBuilder), parsed
/// from `.bench` text ([`bench_format`](crate::bench_format)), or produced
/// by generators; they are then modified only through the transforms in
/// [`transform`](crate::transform).
#[derive(Clone, Debug)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) node_names: Vec<String>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    /// Structural edit counter: bumped by every mutation that can change
    /// behaviour (`add_node`, `add_output`, `set_node`, `rewire`).
    /// Derived-analysis caches key their validity on it.
    pub(crate) version: u64,
}

impl PartialEq for Circuit {
    /// Structural equality; the edit [`version`](Circuit::version) is
    /// deliberately ignored (two circuits with identical structure are
    /// equal regardless of their edit histories).
    fn eq(&self, other: &Circuit) -> bool {
        self.name == other.name
            && self.nodes == other.nodes
            && self.node_names == other.node_names
            && self.inputs == other.inputs
            && self.outputs == other.outputs
    }
}

impl Eq for Circuit {}

impl Circuit {
    /// Create an empty circuit with the given name.
    ///
    /// Prefer [`CircuitBuilder`](crate::CircuitBuilder), which validates as
    /// it goes; this constructor exists for incremental/transform use.
    pub fn new(name: impl Into<String>) -> Circuit {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            node_names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            version: 0,
        }
    }

    /// Structural edit counter: incremented by every mutating operation.
    ///
    /// Long-lived analyses (topology, COP, FFR decompositions, fault
    /// universes) can record the version they were computed at and treat a
    /// mismatch as "stale". Cloning preserves the counter; equal versions
    /// on the *same* lineage imply an unchanged structure, but versions of
    /// unrelated circuits are not comparable.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes (inputs + constants + gates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of logic gates (nodes that are not sources).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.kind.is_source()).count()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this circuit never are).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The gate kind of a node.
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.nodes[id.index()].kind
    }

    /// The fanins of a node, in pin order.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].fanins
    }

    /// The signal name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Find a node by signal name (linear scan; build your own map for
    /// bulk lookups).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId::from_index)
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Whether `id` is listed as a primary output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// Iterate over all node ids in index order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Append a node, returning its id.
    ///
    /// `Input` nodes are appended to the primary-input list automatically.
    /// If `name` is empty a unique `n<i>` name is generated.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidArity`] if the fanin count is illegal for
    /// `kind`; [`NetlistError::DanglingFanin`] if a fanin is out of range;
    /// [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_node(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        kind.check_arity(fanins.len())?;
        let idx = self.nodes.len();
        if fanins.iter().any(|f| f.index() >= idx) {
            // Fanins must already exist; self-loops are impossible by
            // construction, which also rules out cycles for append-only use.
            return Err(NetlistError::DanglingFanin { gate: idx });
        }
        let mut name = name.into();
        if name.is_empty() {
            name = format!("n{idx}");
            while self.find_node(&name).is_some() {
                name.push('_');
            }
        } else if self.find_node(&name).is_some() {
            return Err(NetlistError::DuplicateName { name });
        }
        let id = NodeId::from_index(idx);
        self.nodes.push(Node { kind, fanins });
        self.node_names.push(name);
        if kind == GateKind::Input {
            self.inputs.push(id);
        }
        self.version += 1;
        Ok(id)
    }

    /// Mark `id` as a primary output (idempotent).
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoSuchNode`] if `id` is out of range.
    pub fn add_output(&mut self, id: NodeId) -> Result<(), NetlistError> {
        if id.index() >= self.nodes.len() {
            return Err(NetlistError::NoSuchNode { index: id.index() });
        }
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
            self.version += 1;
        }
        Ok(())
    }

    /// Replace a node's kind and fanin list in place (used by the rewrite
    /// passes). Arity and bounds are checked immediately; acyclicity is
    /// re-validated by the calling pass.
    pub(crate) fn set_node(
        &mut self,
        id: NodeId,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<(), NetlistError> {
        kind.check_arity(fanins.len())?;
        if fanins.iter().any(|f| f.index() >= self.nodes.len()) {
            return Err(NetlistError::DanglingFanin { gate: id.index() });
        }
        self.nodes[id.index()] = Node { kind, fanins };
        self.version += 1;
        Ok(())
    }

    /// Replace every fanin reference to `from` with `to` across all gates,
    /// and every primary-output reference to `from` with `to`.
    ///
    /// Gates in `skip` are left untouched (used by control-point insertion,
    /// where the newly created gate must keep consuming the original line).
    ///
    /// Returns the number of pin/output references rewired.
    pub(crate) fn rewire(&mut self, from: NodeId, to: NodeId, skip: &[NodeId]) -> usize {
        let mut n = 0;
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            if skip.contains(&NodeId::from_index(idx)) {
                continue;
            }
            for pin in node.fanins.iter_mut() {
                if *pin == from {
                    *pin = to;
                    n += 1;
                }
            }
        }
        for out in self.outputs.iter_mut() {
            if *out == from {
                *out = to;
                n += 1;
            }
        }
        if n > 0 {
            self.version += 1;
        }
        n
    }

    /// Validate all structural invariants, including acyclicity.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            node.kind.check_arity(node.fanins.len())?;
            if node.fanins.iter().any(|f| f.index() >= self.nodes.len()) {
                return Err(NetlistError::DanglingFanin { gate: idx });
            }
        }
        for out in &self.outputs {
            if out.index() >= self.nodes.len() {
                return Err(NetlistError::NoSuchNode { index: out.index() });
            }
        }
        let mut seen: HashMap<&str, usize> = HashMap::with_capacity(self.node_names.len());
        for name in &self.node_names {
            if seen.insert(name.as_str(), 1).is_some() {
                return Err(NetlistError::DuplicateName { name: name.clone() });
            }
        }
        // Acyclicity via Kahn's algorithm.
        crate::Topology::of(self).map(|_| ())
    }

    /// Evaluate the circuit on one input assignment, returning the value of
    /// every node (indexed by [`NodeId::index`]).
    ///
    /// `values[i]` drives `self.inputs()[i]`. This is the slow reference
    /// evaluator used to cross-validate the bit-parallel simulator in
    /// `tpi-sim`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputCountMismatch`] on wrong arity;
    /// [`NetlistError::Cycle`] if the circuit is cyclic.
    pub fn evaluate(&self, values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if values.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                got: values.len(),
            });
        }
        let topo = crate::Topology::of(self)?;
        let mut out = vec![false; self.nodes.len()];
        for (&input, &v) in self.inputs.iter().zip(values) {
            out[input.index()] = v;
        }
        for &id in topo.order() {
            let node = &self.nodes[id.index()];
            if node.kind == GateKind::Input {
                continue;
            }
            out[id.index()] = node.kind.eval(node.fanins.iter().map(|f| out[f.index()]));
        }
        Ok(out)
    }

    /// Evaluate and return only the primary-output values, in output order.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::evaluate`].
    pub fn evaluate_outputs(&self, values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let all = self.evaluate(values)?;
        Ok(self.outputs.iter().map(|o| all[o.index()]).collect())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes ({} PIs, {} POs, {} gates)",
            self.name,
            self.node_count(),
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_of_ands() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_node(GateKind::Input, vec![], "a").unwrap();
        let b = c.add_node(GateKind::Input, vec![], "b").unwrap();
        let d = c.add_node(GateKind::Input, vec![], "d").unwrap();
        let g1 = c.add_node(GateKind::And, vec![a, b], "g1").unwrap();
        let g2 = c.add_node(GateKind::And, vec![b, d], "g2").unwrap();
        let y = c.add_node(GateKind::Xor, vec![g1, g2], "y").unwrap();
        c.add_output(y).unwrap();
        c
    }

    #[test]
    fn build_and_evaluate() {
        let c = xor_of_ands();
        assert_eq!(c.node_count(), 6);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.inputs().len(), 3);
        // a=1 b=1 d=0 -> g1=1 g2=0 -> y=1
        assert_eq!(c.evaluate_outputs(&[true, true, false]).unwrap(), [true]);
        // a=1 b=1 d=1 -> g1=1 g2=1 -> y=0
        assert_eq!(c.evaluate_outputs(&[true, true, true]).unwrap(), [false]);
    }

    #[test]
    fn evaluate_checks_input_count() {
        let c = xor_of_ands();
        assert!(matches!(
            c.evaluate(&[true]),
            Err(NetlistError::InputCountMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new("t");
        c.add_node(GateKind::Input, vec![], "a").unwrap();
        assert!(matches!(
            c.add_node(GateKind::Input, vec![], "a"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn auto_names_are_unique() {
        let mut c = Circuit::new("t");
        let a = c.add_node(GateKind::Input, vec![], "").unwrap();
        let b = c.add_node(GateKind::Input, vec![], "").unwrap();
        assert_ne!(c.node_name(a), c.node_name(b));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn forward_references_rejected() {
        let mut c = Circuit::new("t");
        let bogus = NodeId::from_index(5);
        assert!(matches!(
            c.add_node(GateKind::Buf, vec![bogus], "g"),
            Err(NetlistError::DanglingFanin { .. })
        ));
    }

    #[test]
    fn arity_enforced_on_add() {
        let mut c = Circuit::new("t");
        let a = c.add_node(GateKind::Input, vec![], "a").unwrap();
        let b = c.add_node(GateKind::Input, vec![], "b").unwrap();
        assert!(c.add_node(GateKind::Not, vec![a, b], "g").is_err());
    }

    #[test]
    fn rewire_replaces_pins_and_outputs() {
        let mut c = xor_of_ands();
        let b = c.find_node("b").unwrap();
        let a = c.find_node("a").unwrap();
        let n = c.rewire(b, a, &[]);
        assert_eq!(n, 2); // b fed g1 and g2
        let g1 = c.find_node("g1").unwrap();
        assert_eq!(c.fanins(g1), [a, a]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rewire_respects_skip_list() {
        let mut c = xor_of_ands();
        let b = c.find_node("b").unwrap();
        let a = c.find_node("a").unwrap();
        let g1 = c.find_node("g1").unwrap();
        let n = c.rewire(b, a, &[g1]);
        assert_eq!(n, 1);
        assert_eq!(c.fanins(g1), [a, b]);
    }

    #[test]
    fn find_node_and_names() {
        let c = xor_of_ands();
        let y = c.find_node("y").unwrap();
        assert_eq!(c.node_name(y), "y");
        assert!(c.is_output(y));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn output_idempotent() {
        let mut c = xor_of_ands();
        let y = c.find_node("y").unwrap();
        c.add_output(y).unwrap();
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn display_contains_counts() {
        let c = xor_of_ands();
        let s = c.to_string();
        assert!(s.contains("3 PIs"));
        assert!(s.contains("3 gates"));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(4).to_string(), "n4");
    }

    #[test]
    fn validate_ok_on_wellformed() {
        assert!(xor_of_ands().validate().is_ok());
    }
}
