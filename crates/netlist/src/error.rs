use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or transforming a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// The circuit contains a combinational cycle involving the named node.
    Cycle {
        /// Name of a node on the cycle.
        node: String,
    },
    /// A gate was declared with an arity its kind does not allow.
    InvalidArity {
        /// The offending gate kind (bench-style name).
        kind: &'static str,
        /// Number of fanins supplied.
        got: usize,
    },
    /// A fanin reference pointed at a node id that does not exist.
    DanglingFanin {
        /// Index of the gate holding the dangling reference.
        gate: usize,
    },
    /// A node id was out of range for the circuit it was used with.
    NoSuchNode {
        /// The out-of-range index.
        index: usize,
    },
    /// A signal name was redefined.
    DuplicateName {
        /// The redefined name.
        name: String,
    },
    /// `.bench` parse failure.
    Parse {
        /// 1-based source line of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// `.bench` text referenced a signal that is never defined.
    UndefinedSignal {
        /// The undefined signal name.
        name: String,
    },
    /// An evaluation or analysis was given the wrong number of input values.
    InputCountMismatch {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A transform precondition failed (e.g. test point on a constant).
    InvalidTransform {
        /// Human-readable description.
        message: String,
    },
    /// The netlist contains sequential elements that the requested operation
    /// cannot handle.
    Sequential {
        /// Name of the offending element.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Cycle { node } => {
                write!(f, "combinational cycle through node `{node}`")
            }
            NetlistError::InvalidArity { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fanins")
            }
            NetlistError::DanglingFanin { gate } => {
                write!(f, "gate #{gate} references a node that does not exist")
            }
            NetlistError::NoSuchNode { index } => {
                write!(f, "node index {index} is out of range")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "signal `{name}` is defined more than once")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::UndefinedSignal { name } => {
                write!(f, "signal `{name}` is used but never defined")
            }
            NetlistError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::InvalidTransform { message } => {
                write!(f, "invalid transform: {message}")
            }
            NetlistError::Sequential { name } => {
                write!(f, "sequential element `{name}` not supported here")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            NetlistError::Cycle { node: "g1".into() },
            NetlistError::InvalidArity {
                kind: "NOT",
                got: 3,
            },
            NetlistError::DanglingFanin { gate: 7 },
            NetlistError::NoSuchNode { index: 9 },
            NetlistError::DuplicateName { name: "x".into() },
            NetlistError::Parse {
                line: 2,
                message: "bad".into(),
            },
            NetlistError::UndefinedSignal { name: "y".into() },
            NetlistError::InputCountMismatch {
                expected: 2,
                got: 3,
            },
            NetlistError::InvalidTransform {
                message: "m".into(),
            },
            NetlistError::Sequential { name: "ff".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(NetlistError::NoSuchNode { index: 1 });
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
