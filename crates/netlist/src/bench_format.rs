//! ISCAS-85 / ISCAS-89 `.bench` reader and writer.
//!
//! The `.bench` dialect accepted here:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G11 = DFF(G10)        # sequential; handled per ScanMode
//! ```
//!
//! Gate keywords are case-insensitive. `DFF` elements are converted to
//! full-scan pseudo-ports by default ([`ScanMode::FullScan`]): the flip-flop
//! output becomes a pseudo primary input and its data pin a pseudo primary
//! output, which is the standard combinational view used by scan-BIST test
//! point insertion.

use std::collections::HashMap;

use crate::{Circuit, GateKind, NetlistError, NodeId};

/// How to treat `DFF` elements while parsing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Convert each `DFF` to a pseudo primary input (its output) and a
    /// pseudo primary output (its data input) — the full-scan view.
    #[default]
    FullScan,
    /// Reject netlists containing `DFF`s.
    Reject,
}

/// Parse `.bench` text with [`ScanMode::FullScan`] DFF handling.
///
/// # Errors
///
/// [`NetlistError::Parse`] on malformed lines,
/// [`NetlistError::UndefinedSignal`] / [`NetlistError::DuplicateName`] on
/// bad symbol usage, [`NetlistError::Cycle`] on cyclic combinational logic.
///
/// # Example
///
/// ```
/// use tpi_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nc = NAND(a, b)\nOUTPUT(c)\n")?;
/// assert_eq!(c.inputs().len(), 2);
/// assert_eq!(c.evaluate_outputs(&[true, true])?, [false]);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit, NetlistError> {
    parse_bench_with(text, "bench", ScanMode::FullScan)
}

/// Parse `.bench` text with an explicit circuit name and [`ScanMode`].
///
/// # Errors
///
/// See [`parse_bench`].
pub fn parse_bench_with(
    text: &str,
    name: &str,
    scan_mode: ScanMode,
) -> Result<Circuit, NetlistError> {
    enum Decl {
        Input,
        Gate(GateKind, Vec<String>),
        Dff(String),
    }
    let mut decls: Vec<(String, Decl)> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let parse_err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        if let Some(rest) = strip_keyword(line, "INPUT") {
            decls.push((parse_paren_arg(rest, lineno)?, Decl::Input));
        } else if let Some(rest) = strip_keyword(line, "OUTPUT") {
            output_names.push(parse_paren_arg(rest, lineno)?);
        } else if let Some(eq) = line.find('=') {
            // All slice indices come from `find`/`rfind`, so they sit on
            // char boundaries — but malformed input is exactly where
            // assumptions go to die, so slice fallibly and report a
            // parse error instead of ever panicking.
            let sliced = parse_err("malformed line (bad byte boundary)".into());
            let target = line.get(..eq).ok_or_else(|| sliced.clone())?.trim();
            if target.is_empty() {
                return Err(parse_err("missing target name before `=`".into()));
            }
            let rhs = line.get(eq + 1..).ok_or_else(|| sliced.clone())?.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| parse_err(format!("expected GATE(...) after `=`, got `{rhs}`")))?;
            let close = rhs
                .rfind(')')
                .ok_or_else(|| parse_err("missing closing `)`".into()))?;
            if close < open {
                return Err(parse_err("mismatched parentheses".into()));
            }
            let keyword = rhs.get(..open).ok_or_else(|| sliced.clone())?.trim();
            let args: Vec<String> = rhs
                .get(open + 1..close)
                .ok_or_else(|| sliced.clone())?
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if keyword.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    return Err(parse_err(format!(
                        "DFF takes 1 argument, got {}",
                        args.len()
                    )));
                }
                match scan_mode {
                    ScanMode::FullScan => {
                        decls.push((target.to_string(), Decl::Dff(args[0].clone())));
                    }
                    ScanMode::Reject => {
                        return Err(NetlistError::Sequential {
                            name: target.to_string(),
                        })
                    }
                }
            } else {
                let kind = GateKind::from_bench_name(keyword)
                    .ok_or_else(|| parse_err(format!("unknown gate keyword `{keyword}`")))?;
                kind.check_arity(args.len())?;
                decls.push((target.to_string(), Decl::Gate(kind, args)));
            }
        } else {
            return Err(parse_err(format!("unrecognised line `{line}`")));
        }
    }

    // First pass: create all nodes (inputs and DFF outputs first so gate
    // fanins resolve; gate nodes are created in dependency order below).
    let mut circuit = Circuit::new(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pending: Vec<(String, GateKind, Vec<String>)> = Vec::new();
    let mut scan_outputs: Vec<String> = Vec::new();

    for (target, decl) in decls {
        match decl {
            Decl::Input => {
                let id = circuit.add_node(GateKind::Input, vec![], target.clone())?;
                ids.insert(target, id);
            }
            Decl::Dff(data_in) => {
                // Full scan: FF output is a pseudo-PI, its data input a
                // pseudo-PO.
                let id = circuit.add_node(GateKind::Input, vec![], target.clone())?;
                ids.insert(target, id);
                scan_outputs.push(data_in);
            }
            Decl::Gate(kind, args) => pending.push((target, kind, args)),
        }
    }

    // Resolve gates iteratively (a worklist tolerates out-of-order decls).
    let mut progress = true;
    while progress && !pending.is_empty() {
        progress = false;
        let mut next = Vec::with_capacity(pending.len());
        for (target, kind, args) in pending {
            if args.iter().all(|a| ids.contains_key(a)) {
                let fanins = args.iter().map(|a| ids[a]).collect();
                let id = circuit.add_node(kind, fanins, target.clone())?;
                ids.insert(target, id);
                progress = true;
            } else {
                next.push((target, kind, args));
            }
        }
        pending = next;
    }
    if let Some((target, _, args)) = pending.first() {
        // Either an undefined signal or a combinational cycle.
        let missing = args.iter().find(|a| !ids.contains_key(*a));
        return Err(match missing {
            Some(m) if !pending.iter().any(|(t, _, _)| t == m) => {
                NetlistError::UndefinedSignal { name: m.clone() }
            }
            _ => NetlistError::Cycle {
                node: target.clone(),
            },
        });
    }

    for name in output_names.iter().chain(scan_outputs.iter()) {
        let id = *ids
            .get(name)
            .ok_or_else(|| NetlistError::UndefinedSignal { name: name.clone() })?;
        circuit.add_output(id)?;
    }
    circuit.validate()?;
    Ok(circuit)
}

fn strip_keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let trimmed = line.trim_start();
    // Fallible slicing: `kw.len()` may land inside a multi-byte UTF-8
    // sequence of malformed input, where `trimmed[..kw.len()]` would
    // panic the whole process.
    let head = trimmed.get(..kw.len())?;
    if head.eq_ignore_ascii_case(kw) {
        let rest = trimmed.get(kw.len()..)?;
        rest.trim_start().starts_with('(').then_some(rest)
    } else {
        None
    }
}

fn parse_paren_arg(rest: &str, line: usize) -> Result<String, NetlistError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| NetlistError::Parse {
            line,
            message: "expected `(name)`".into(),
        })?
        .trim();
    if inner.is_empty() || inner.contains(|c: char| c.is_whitespace() || c == ',') {
        return Err(NetlistError::Parse {
            line,
            message: format!("bad signal name `{inner}`"),
        });
    }
    Ok(inner.to_string())
}

/// Serialise a circuit to `.bench` text.
///
/// Constants are emitted as `CONST0()` / `CONST1()` pseudo-gates (a common
/// extension); everything else is standard ISCAS-85 syntax. The output
/// round-trips through [`parse_bench`].
pub fn to_bench(circuit: &Circuit) -> String {
    let mut s = String::new();
    s.push_str(&format!("# {}\n", circuit.name()));
    for &i in circuit.inputs() {
        s.push_str(&format!("INPUT({})\n", circuit.node_name(i)));
    }
    for &o in circuit.outputs() {
        s.push_str(&format!("OUTPUT({})\n", circuit.node_name(o)));
    }
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let args: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| circuit.node_name(f))
            .collect();
        s.push_str(&format!(
            "{} = {}({})\n",
            circuit.node_name(id),
            node.kind().bench_name(),
            args.join(", ")
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse_bench(C17).unwrap();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.gate_count(), 6);
        // All-ones: 10 = NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
        // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
        assert_eq!(c.evaluate_outputs(&[true; 5]).unwrap(), [true, false]);
    }

    #[test]
    fn round_trip() {
        let c = parse_bench(C17).unwrap();
        let text = to_bench(&c);
        let c2 = parse_bench(&text).unwrap();
        assert_eq!(c2.node_count(), c.node_count());
        assert_eq!(c2.inputs().len(), c.inputs().len());
        assert_eq!(c2.outputs().len(), c.outputs().len());
        // Behavioural equivalence on a few vectors.
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| p & (1 << i) != 0).collect();
            assert_eq!(
                c.evaluate_outputs(&v).unwrap(),
                c2.evaluate_outputs(&v).unwrap(),
                "pattern {p}"
            );
        }
    }

    #[test]
    fn out_of_order_definitions_ok() {
        let text = "OUTPUT(y)\ny = AND(a, b)\nINPUT(a)\nINPUT(b)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# header\n\nINPUT(a) # trailing\n  \ny = NOT(a)\nOUTPUT(y)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.node_count(), 2);
    }

    #[test]
    fn dff_full_scan_conversion() {
        let text = "\
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
y = NOT(q)
";
        let c = parse_bench(text).unwrap();
        // q becomes a pseudo-PI; d becomes a pseudo-PO.
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 2);
        let q = c.find_node("q").unwrap();
        assert_eq!(c.kind(q), GateKind::Input);
        let d = c.find_node("d").unwrap();
        assert!(c.is_output(d));
    }

    #[test]
    fn dff_rejected_in_reject_mode() {
        let text = "INPUT(a)\nq = DFF(a)\nOUTPUT(q)\n";
        assert!(matches!(
            parse_bench_with(text, "t", ScanMode::Reject),
            Err(NetlistError::Sequential { .. })
        ));
    }

    #[test]
    fn undefined_signal() {
        let text = "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n";
        assert!(matches!(
            parse_bench(text),
            Err(NetlistError::UndefinedSignal { name }) if name == "ghost"
        ));
    }

    #[test]
    fn combinational_cycle_detected() {
        let text = "INPUT(a)\nx = AND(a, y)\ny = NOT(x)\nOUTPUT(y)\n";
        assert!(matches!(parse_bench(text), Err(NetlistError::Cycle { .. })));
    }

    #[test]
    fn bad_syntax_reports_line() {
        let text = "INPUT(a)\nwhat is this\n";
        match parse_bench(text) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_keyword() {
        let text = "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
        assert!(matches!(parse_bench(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn bad_arity_in_text() {
        let text = "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)\n";
        assert!(matches!(
            parse_bench(text),
            Err(NetlistError::InvalidArity { .. })
        ));
    }

    #[test]
    fn constants_round_trip() {
        let text = "INPUT(a)\none = CONST1()\ny = AND(a, one)\nOUTPUT(y)\n";
        let c = parse_bench(text).unwrap();
        let c2 = parse_bench(&to_bench(&c)).unwrap();
        assert_eq!(c2.evaluate_outputs(&[true]).unwrap(), [true]);
    }

    #[test]
    fn output_of_undefined_signal() {
        let text = "INPUT(a)\nOUTPUT(nope)\n";
        assert!(matches!(
            parse_bench(text),
            Err(NetlistError::UndefinedSignal { .. })
        ));
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Every line here used to (or plausibly could) trip a byte-slice
        // panic or unchecked assumption; each must come back as a clean
        // error — a batch/serve front end feeds the parser untrusted
        // files and must never die on one.
        let nasty = [
            "ééé(a)\n",                  // byte 5 of "ééé" splits a UTF-8 char
            "é\n",                       // shorter than any keyword
            "ÍNPUT(a)\n",                // non-ASCII near-keyword
            "ñ = AND(a)\n",              // non-ASCII target
            "y = ÑAND(a, b)\n",          // non-ASCII gate keyword
            "y = (a, b)\n",              // empty keyword
            "= AND(a, b)\n",             // empty target
            "y = AND)a, b(\n",           // reversed parens
            "y = AND(a, b\n",            // missing close
            "INPUT()\n",                 // empty name
            "INPUT(a b)\n",              // whitespace in name
            "INPUT\n",                   // keyword without parens
            "OUTPUT(\n",                 // unclosed OUTPUT
            "y = DFF(a, b)\n",           // DFF arity
            "\u{0}\u{0}=\u{0}(\u{0})\n", // control characters
        ];
        for text in nasty {
            match parse_bench(text) {
                Ok(_) => {}
                Err(e) => {
                    let _ = e.to_string(); // Display must not panic either
                }
            }
        }
        // And the reported line number survives the hardening.
        match parse_bench("INPUT(a)\nééé(a)\n") {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        let text = "input(a)\ny = nand(a, a)\noutput(y)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.evaluate_outputs(&[true]).unwrap(), [false]);
    }
}
