//! Graphviz (DOT) export for visual debugging of small circuits.

use crate::{Circuit, GateKind};

/// Render the circuit as a Graphviz digraph.
///
/// Inputs are drawn as triangles, outputs get a double border, and test-
/// point auxiliary nodes (names starting with `tp_`) are highlighted.
///
/// # Example
///
/// ```
/// use tpi_netlist::{bench_format, dot};
///
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let c = bench_format::parse_bench("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n")?;
/// let g = dot::to_dot(&c);
/// assert!(g.starts_with("digraph"));
/// assert!(g.contains("\"y\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(circuit: &Circuit) -> String {
    let mut s = String::new();
    s.push_str(&format!("digraph \"{}\" {{\n", escape(circuit.name())));
    s.push_str("  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    for id in circuit.node_ids() {
        let name = circuit.node_name(id);
        let kind = circuit.kind(id);
        let mut attrs = vec![format!("label=\"{}\\n{}\"", escape(name), kind)];
        match kind {
            GateKind::Input => attrs.push("shape=triangle, orientation=270".to_string()),
            GateKind::Const0 | GateKind::Const1 => attrs.push("shape=plaintext".to_string()),
            _ => attrs.push("shape=box".to_string()),
        }
        if circuit.is_output(id) {
            attrs.push("peripheries=2".to_string());
        }
        if name.starts_with("tp_") {
            attrs.push("style=filled, fillcolor=lightgoldenrod".to_string());
        }
        s.push_str(&format!("  \"{}\" [{}];\n", escape(name), attrs.join(", ")));
    }
    for id in circuit.node_ids() {
        for &f in circuit.fanins(id) {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                escape(circuit.node_name(f)),
                escape(circuit.node_name(id))
            ));
        }
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{transform, CircuitBuilder, TestPoint};

    #[test]
    fn emits_all_nodes_and_edges() {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let g = b.gate(GateKind::Nand, vec![a, a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let dot = to_dot(&c);
        assert!(dot.contains("\"a\" ["));
        assert!(dot.contains("\"g\" ["));
        assert!(dot.contains("peripheries=2"));
        assert_eq!(dot.matches("\"a\" -> \"g\"").count(), 2);
    }

    #[test]
    fn highlights_test_point_aux_nodes() {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, vec![a], "g").unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        let (m, _) = transform::apply_plan(&c, &[TestPoint::control_and(a)]).unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("lightgoldenrod"));
    }

    #[test]
    fn escapes_quotes() {
        let c = Circuit::new("a\"b");
        let dot = to_dot(&c);
        assert!(dot.contains("a\\\"b"));
    }

    use crate::Circuit;
}
