//! Fanout-free regions and reconvergence analysis.
//!
//! A **fanout-free region** (FFR) is a maximal tree-shaped cone: every
//! internal signal feeds exactly one consumer, and the region is rooted at
//! a *stem* (a signal with ≥ 2 consumers) or at a primary output. FFRs are
//! the unit at which the Krishnamurthy tree DP applies exactly inside a
//! general circuit, so this decomposition is load-bearing for
//! `tpi_core::general`.
//!
//! **Reconvergence** — two fanout branches of a stem meeting again
//! downstream — is the structure that makes optimal test point insertion
//! NP-hard; [`reconvergent_stems`] detects it.

use crate::{Circuit, NodeId, Topology};

/// The fanout-free-region decomposition of a circuit.
///
/// Every node belongs to exactly one region; region roots are stems,
/// primary outputs and dangling nodes.
#[derive(Clone, Debug)]
pub struct FfrDecomposition {
    root_of: Vec<NodeId>,
    roots: Vec<NodeId>,
}

impl FfrDecomposition {
    /// Decompose a circuit into fanout-free regions.
    pub fn of(circuit: &Circuit, topo: &Topology) -> FfrDecomposition {
        let n = circuit.node_count();
        let mut root_of: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        // Process in reverse topological order so that a node's unique
        // consumer already knows its root.
        for &id in topo.order().iter().rev() {
            let fanouts = topo.fanouts(id);
            let is_root =
                circuit.is_output(id) || fanouts.len() != 1 || topo.is_dangling(circuit, id);
            if is_root {
                root_of[id.index()] = id;
            } else {
                let consumer = fanouts[0].gate;
                root_of[id.index()] = root_of[consumer.index()];
            }
        }
        let mut roots: Vec<NodeId> = circuit
            .node_ids()
            .filter(|&id| root_of[id.index()] == id)
            .collect();
        roots.sort();
        FfrDecomposition { root_of, roots }
    }

    /// The root of the region containing `id`.
    pub fn root_of(&self, id: NodeId) -> NodeId {
        self.root_of[id.index()]
    }

    /// All region roots, sorted by id.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The members of the region rooted at `root` (sorted by id; empty if
    /// `root` is not a root).
    pub fn members(&self, root: NodeId) -> Vec<NodeId> {
        if self.root_of[root.index()] != root {
            return Vec::new();
        }
        self.root_of
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == root)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.roots.len()
    }
}

/// Whether the circuit is fanout-free: no signal is consumed more than once
/// (a primary-output tap counts as a consumer).
///
/// Fanout-free circuits are exactly the class on which the DAC'87 dynamic
/// program is optimal.
pub fn is_fanout_free(circuit: &Circuit, topo: &Topology) -> bool {
    circuit.node_ids().all(|id| !topo.is_stem(circuit, id))
}

/// If the circuit is a *single-rooted tree* — fanout-free with exactly one
/// primary output whose cone covers every node — return the root.
pub fn tree_root(circuit: &Circuit, topo: &Topology) -> Option<NodeId> {
    if !is_fanout_free(circuit, topo) || circuit.outputs().len() != 1 {
        return None;
    }
    let root = circuit.outputs()[0];
    let cone = crate::analysis::fanin_cone(circuit, root);
    (cone.len() == circuit.node_count()).then_some(root)
}

/// Stems whose fanout branches reconverge downstream.
///
/// A stem `s` is reconvergent when some node is reachable from two distinct
/// fanout branches of `s`. The check runs one forward reachability sweep
/// per stem and is `O(stems × edges)`.
pub fn reconvergent_stems(circuit: &Circuit, topo: &Topology) -> Vec<NodeId> {
    let n = circuit.node_count();
    let mut result = Vec::new();
    // branch_mark[v] = small bitmask of which branches of the current stem
    // reach v (saturating at 16 branches via the `many` bit).
    let mut branch_mark: Vec<u32> = vec![0; n];
    for id in circuit.node_ids() {
        let fanouts = topo.fanouts(id);
        if fanouts.len() < 2 {
            continue;
        }
        for m in branch_mark.iter_mut() {
            *m = 0;
        }
        let mut reconverges = false;
        'branches: for (bi, fo) in fanouts.iter().enumerate() {
            let bit = 1u32 << (bi % 31);
            let mut stack = vec![fo.gate];
            while let Some(v) = stack.pop() {
                let seen = branch_mark[v.index()];
                if seen & bit != 0 {
                    continue;
                }
                if seen != 0 {
                    reconverges = true;
                    break 'branches;
                }
                branch_mark[v.index()] = seen | bit;
                for next in topo.fanouts(v) {
                    stack.push(next.gate);
                }
            }
        }
        if reconverges {
            result.push(id);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn diamond() -> Circuit {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, vec![a], "n1").unwrap();
        let n2 = b.gate(GateKind::Buf, vec![a], "n2").unwrap();
        let y = b.gate(GateKind::And, vec![n1, n2], "y").unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    fn chain_tree() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let xs = b.inputs(4, "x");
        let root = b.balanced_tree(GateKind::And, &xs, "g").unwrap();
        b.output(root);
        b.finish().unwrap()
    }

    #[test]
    fn tree_is_fanout_free_and_rooted() {
        let c = chain_tree();
        let t = Topology::of(&c).unwrap();
        assert!(is_fanout_free(&c, &t));
        assert_eq!(tree_root(&c, &t), Some(c.outputs()[0]));
        let ffr = FfrDecomposition::of(&c, &t);
        assert_eq!(ffr.region_count(), 1);
        assert_eq!(ffr.members(c.outputs()[0]).len(), c.node_count());
    }

    #[test]
    fn diamond_is_not_fanout_free() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        assert!(!is_fanout_free(&c, &t));
        assert_eq!(tree_root(&c, &t), None);
    }

    #[test]
    fn diamond_reconverges_at_stem_a() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        let a = c.find_node("a").unwrap();
        assert_eq!(reconvergent_stems(&c, &t), vec![a]);
    }

    #[test]
    fn nonreconvergent_stem() {
        // a fans out to two separate outputs: a stem, but no reconvergence.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, vec![a], "g1").unwrap();
        let g2 = b.gate(GateKind::Buf, vec![a], "g2").unwrap();
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let t = Topology::of(&c).unwrap();
        assert!(reconvergent_stems(&c, &t).is_empty());
        assert!(!is_fanout_free(&c, &t));
    }

    #[test]
    fn ffr_regions_of_diamond() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        let ffr = FfrDecomposition::of(&c, &t);
        let a = c.find_node("a").unwrap();
        let y = c.find_node("y").unwrap();
        // Regions: {a} (stem root), {n1, n2, y} rooted at y.
        assert_eq!(ffr.root_of(a), a);
        assert_eq!(ffr.root_of(c.find_node("n1").unwrap()), y);
        assert_eq!(ffr.root_of(c.find_node("n2").unwrap()), y);
        assert_eq!(ffr.region_count(), 2);
        assert_eq!(ffr.members(y).len(), 3);
        assert!(ffr.members(c.find_node("n1").unwrap()).is_empty());
    }

    #[test]
    fn every_node_in_exactly_one_region() {
        let c = diamond();
        let t = Topology::of(&c).unwrap();
        let ffr = FfrDecomposition::of(&c, &t);
        let total: usize = ffr.roots().iter().map(|&r| ffr.members(r).len()).sum();
        assert_eq!(total, c.node_count());
    }

    #[test]
    fn po_tap_plus_fanout_makes_stem_its_own_root() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, vec![a], "g").unwrap();
        let h = b.gate(GateKind::Not, vec![g], "h").unwrap();
        b.output(g);
        b.output(h);
        let c = b.finish().unwrap();
        let t = Topology::of(&c).unwrap();
        let ffr = FfrDecomposition::of(&c, &t);
        let g = c.find_node("g").unwrap();
        assert_eq!(ffr.root_of(g), g);
    }
}
