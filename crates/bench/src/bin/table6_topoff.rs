//! **Table 6 — the full flow: random patterns + TPI + deterministic
//! top-off.**
//!
//! For each resistant circuit: baseline coverage, coverage after DP (or
//! constructive) insertion, and the number of deterministic cubes / merged
//! seeds PODEM needs for the last mile to 100% of testable faults —
//! the reseeding trade-off the period literature closes its flows with.

use tpi_atpg::{redundancy, topoff, PodemConfig};
use tpi_bench::{header, pct, STANDARD_PATTERNS};
use tpi_core::general::{ConstructiveConfig, ConstructiveOptimizer};
use tpi_core::{DpOptimizer, Threshold, TpiProblem};
use tpi_netlist::transform::apply_plan;
use tpi_netlist::{ffr, Topology};
use tpi_sim::{FaultSimulator, FaultUniverse, RandomPatterns};

fn main() {
    let threshold = Threshold::from_test_length(STANDARD_PATTERNS, tpi_bench::STANDARD_CONFIDENCE)
        .expect("valid threshold");
    println!("# Table 6: random + TPI + ATPG top-off to 100% of testable faults\n");
    header(&[
        "circuit",
        "faults",
        "redundant",
        "FC_base",
        "points",
        "FC_tpi",
        "leftover",
        "cubes",
        "seeds",
    ]);
    for entry in tpi_gen::suite::standard_suite().expect("suite builds") {
        let c = &entry.circuit;
        let universe = FaultUniverse::collapsed(c).expect("collapsible");

        // Phase 0: redundancy sweep — untestable faults leave the
        // denominator for good.
        let sweep =
            redundancy::sweep(c, universe.faults(), PodemConfig::default()).expect("atpg runs");
        let targets = sweep.targets();

        // Phase 1: baseline.
        let mut sim = FaultSimulator::new(c).expect("acyclic");
        let mut src = RandomPatterns::new(c.inputs().len(), 1);
        let base = sim
            .run(&mut src, STANDARD_PATTERNS, &targets)
            .expect("runs");

        // Phase 2: insertion (DP on trees, constructive elsewhere).
        let topo = Topology::of(c).expect("acyclic");
        let modified = if ffr::is_fanout_free(c, &topo) {
            let problem = TpiProblem::min_cost(c, threshold).expect("acyclic");
            match DpOptimizer::default().solve(&problem) {
                Ok(plan) => apply_plan(c, plan.test_points()).expect("applies").0,
                Err(_) => c.clone(),
            }
        } else {
            ConstructiveOptimizer::new(ConstructiveConfig {
                patterns_per_round: 8_192,
                max_rounds: 20,
                ..ConstructiveConfig::default()
            })
            .solve(c, threshold)
            .expect("constructive runs")
            .modified
        };
        let points = modified.inputs().len() - c.inputs().len()
            + (modified.outputs().len() - c.outputs().len());

        let mut sim = FaultSimulator::new(&modified).expect("acyclic");
        let mut src = RandomPatterns::new(modified.inputs().len(), 1);
        let tpi = sim
            .run(&mut src, STANDARD_PATTERNS, &targets)
            .expect("runs");

        // Phase 3: deterministic top-off on the modified circuit.
        let leftovers: Vec<_> = tpi
            .undetected_indices()
            .into_iter()
            .map(|i| targets[i])
            .collect();
        let top =
            topoff::generate(&modified, &leftovers, PodemConfig::default(), 7).expect("atpg runs");

        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            entry.name,
            targets.len(),
            sweep.redundant.len(),
            pct(base.coverage()),
            points,
            pct(tpi.coverage()),
            leftovers.len(),
            top.cubes.len(),
            top.seed_count(),
        );
    }
}
