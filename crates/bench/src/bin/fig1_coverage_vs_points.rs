//! **Figure 1 — fault coverage vs number of test points.**
//!
//! The constructive curve: after each committed test point, measured fault
//! coverage at the standard budget, per method. Prints one series per
//! (circuit, method) suitable for line plotting.

use tpi_bench::{measure_coverage, pct, STANDARD_PATTERNS};
use tpi_core::{GreedyConfig, GreedyOptimizer, RandomOptimizer, Threshold, TpiProblem};
use tpi_gen::rpr;
use tpi_netlist::transform::apply_plan;
use tpi_netlist::{Circuit, TestPoint};
use tpi_sim::FaultUniverse;

fn main() {
    let threshold = Threshold::from_test_length(STANDARD_PATTERNS, tpi_bench::STANDARD_CONFIDENCE)
        .expect("valid threshold");
    println!("# Figure 1: coverage@32k vs #test points (prefix of each method's plan)");
    println!("circuit\tmethod\tpoints\tcoverage%");
    for circuit in [
        rpr::and_tree(20, 4).expect("builds"),
        rpr::comparator(16).expect("builds"),
        rpr::parity_gated_cone(6, 18).expect("builds"),
    ] {
        let problem = TpiProblem::min_cost(&circuit, threshold).expect("acyclic");
        let dp_or_greedy: Vec<TestPoint> = match tpi_core::DpOptimizer::default().solve(&problem) {
            Ok(plan) => plan.test_points().to_vec(),
            // Reconvergent members fall back to greedy for the DP series.
            Err(_) => GreedyOptimizer::default()
                .solve(&problem)
                .expect("greedy runs")
                .test_points()
                .to_vec(),
        };
        let greedy = GreedyOptimizer::new(GreedyConfig {
            max_points: 16,
            ..GreedyConfig::default()
        })
        .solve(&problem)
        .expect("greedy runs");
        let random = RandomOptimizer::new(5, 16)
            .solve(&problem)
            .expect("random runs");

        series(&circuit, "dp", &dp_or_greedy);
        series(&circuit, "greedy", greedy.test_points());
        series(&circuit, "random", random.test_points());
    }
}

/// Print the coverage after applying each prefix of `plan`.
fn series(circuit: &Circuit, method: &str, plan: &[TestPoint]) {
    let universe = FaultUniverse::collapsed(circuit).expect("collapsible");
    for k in 0..=plan.len() {
        let (modified, _) = apply_plan(circuit, &plan[..k]).expect("applies");
        let coverage = measure_coverage(&modified, &universe, STANDARD_PATTERNS, 3).coverage();
        println!("{}\t{}\t{}\t{}", circuit.name(), method, k, pct(coverage));
    }
}
