//! **Table 1 — benchmark characterisation.**
//!
//! For every circuit of the standard suite: structure, collapsed fault
//! counts, COP-predicted hardness, and *measured* fault coverage under 1k
//! and 32k random patterns (average/max of 5 trials). This is the
//! "original circuit" baseline column every later experiment improves on.

use tpi_bench::{coverage_trials, header, pct, STANDARD_PATTERNS};
use tpi_netlist::{analysis, Topology};
use tpi_sim::FaultUniverse;
use tpi_testability::profile::TestabilityReport;

fn main() {
    println!("# Table 1: the benchmark suite, unmodified");
    println!("# (coverage = average/max of 5 fault-simulation trials)\n");
    header(&[
        "circuit",
        "nodes",
        "PIs",
        "POs",
        "depth",
        "stems",
        "faults",
        "min_pdet",
        "resistant",
        "FC@1k avg",
        "FC@1k max",
        "FC@32k avg",
        "FC@32k max",
    ]);
    for entry in tpi_gen::suite::standard_suite().expect("suite builds") {
        let c = &entry.circuit;
        let topo = Topology::of(c).expect("suite circuits are acyclic");
        let stats = analysis::stats(c, &topo);
        let report = TestabilityReport::analyse(c, 1.0 / STANDARD_PATTERNS as f64)
            .expect("analysis succeeds");
        let universe = FaultUniverse::collapsed(c).expect("collapsible");
        let (avg1k, max1k) = coverage_trials(c, &universe, 1_000, 5);
        let (avg32k, max32k) = coverage_trials(c, &universe, STANDARD_PATTERNS, 5);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1e}\t{}\t{}\t{}\t{}\t{}",
            entry.name,
            stats.nodes,
            stats.inputs,
            stats.outputs,
            stats.depth,
            stats.stems,
            report.faults,
            report.min_detection_probability,
            report.resistant_faults,
            pct(avg1k),
            pct(max1k),
            pct(avg32k),
            pct(max32k),
        );
    }
}
