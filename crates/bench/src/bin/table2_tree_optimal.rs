//! **Table 2 — the DP is optimal on fanout-free circuits.**
//!
//! Part A (certified): on random small trees the exact-mode DP's cost is
//! certified optimal by exhaustive branch-and-bound seeded with the DP
//! plan as incumbent. Part B (scaled): on larger trees the bucketed DP is
//! compared against the greedy baseline — the DP never costs more, and
//! the table shows by how much greedy overpays.

use tpi_bench::{header, ms, timed};
use tpi_core::evaluate::PlanEvaluator;
use tpi_core::{DpConfig, DpOptimizer, ExactOptimizer, GreedyOptimizer, Threshold, TpiProblem};
use tpi_gen::trees::{random_tree, RandomTreeConfig};

fn main() {
    println!("# Table 2a: DP vs certified exhaustive optimum (small random trees, δ = 2^-4)\n");
    header(&[
        "leaves",
        "seed",
        "nodes",
        "dp_cost",
        "optimal_cost",
        "certified",
        "b&b_visits",
    ]);
    let mut certified = 0;
    let mut total = 0;
    for leaves in [3usize, 4, 5] {
        for seed in 0..4u64 {
            let circuit = random_tree(&RandomTreeConfig::with_leaves(leaves, seed).and_or_only())
                .expect("tree builds");
            if circuit.node_count() > 9 {
                continue;
            }
            let problem =
                TpiProblem::min_cost(&circuit, Threshold::from_log2(-4.0)).expect("acyclic");
            let Ok(dp) = DpOptimizer::new(DpConfig::exact()).solve(&problem) else {
                continue;
            };
            let (optimal, stats) = ExactOptimizer::with_max_nodes(10)
                .solve_with_incumbent(&problem, Some(&dp))
                .expect("bounded search succeeds");
            let ok = (dp.cost() - optimal.cost()).abs() < 1e-9;
            total += 1;
            certified += usize::from(ok);
            println!(
                "{leaves}\t{seed}\t{}\t{:.1}\t{:.1}\t{}\t{}",
                circuit.node_count(),
                dp.cost(),
                optimal.cost(),
                if ok { "yes" } else { "NO" },
                stats.nodes_visited,
            );
        }
    }
    println!("\ncertified optimal: {certified}/{total}\n");

    println!("# Table 2b: DP vs greedy on larger trees (δ = 2^-8)\n");
    header(&[
        "leaves",
        "seed",
        "nodes",
        "dp_cost",
        "dp_ms",
        "greedy_cost",
        "greedy_ms",
        "overpay%",
    ]);
    for leaves in [32usize, 64, 128] {
        for seed in 0..3u64 {
            let circuit =
                random_tree(&RandomTreeConfig::with_leaves(leaves, 100 + seed).and_or_only())
                    .expect("tree builds");
            let problem =
                TpiProblem::min_cost(&circuit, Threshold::from_log2(-8.0)).expect("acyclic");
            let (dp, dp_time) = timed(|| DpOptimizer::default().solve(&problem));
            let Ok(dp) = dp else { continue };
            let (greedy, greedy_time) = timed(|| GreedyOptimizer::default().solve(&problem));
            let greedy = greedy.expect("greedy runs");
            let evaluator = PlanEvaluator::new(&problem).expect("evaluator");
            assert!(evaluator.evaluate(dp.test_points()).expect("eval").feasible);
            let overpay = if greedy.is_feasible() && dp.cost() > 0.0 {
                format!("{:.0}", (greedy.cost() / dp.cost() - 1.0) * 100.0)
            } else if greedy.is_feasible() {
                "0".to_string()
            } else {
                "stuck".to_string()
            };
            println!(
                "{leaves}\t{seed}\t{}\t{:.1}\t{}\t{:.1}\t{}\t{}",
                circuit.node_count(),
                dp.cost(),
                ms(dp_time),
                greedy.cost(),
                ms(greedy_time),
                overpay,
            );
        }
    }
}
