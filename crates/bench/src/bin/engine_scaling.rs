//! **Engine scaling — incremental session vs from-scratch constructive loop.**
//!
//! Both drivers run the same measure → decompose → DP → commit loop with
//! identical budgets; the only difference is the machinery underneath:
//!
//! * `baseline` — [`ConstructiveOptimizer`], which re-derives topology,
//!   COP and FFRs and re-simulates *every* fault from pattern zero after
//!   each commit;
//! * `engine` — [`TpiEngine`], which caches the derived analyses, memoizes
//!   per-region DP solves, and re-simulates only the dirty cone of each
//!   inserted point.
//!
//! The instance family is a bank of independent random-pattern-resistant
//! AND cones: each commit touches one cone, so the fraction of the circuit
//! the engine must revisit shrinks as the bank grows. The acceptance bar
//! for the engine is a ≥ 2× end-to-end speedup at the larger sizes.

use tpi_bench::{ms, timed};
use tpi_core::general::{ConstructiveConfig, ConstructiveOptimizer};
use tpi_core::Threshold;
use tpi_engine::{EngineConfig, OptimizeConfig, TpiEngine};
use tpi_netlist::{Circuit, CircuitBuilder, GateKind};

const PATTERNS: u64 = 4096;
const SEED: u64 = 0xDAC_1987;
const MAX_ROUNDS: usize = 12;
const THRESHOLD_LOG2: f64 = -10.0;

fn main() {
    let threshold = Threshold::from_log2(THRESHOLD_LOG2);
    println!("# Engine scaling: constructive loop, engine vs from-scratch baseline");
    println!(
        "# {PATTERNS} patterns/round, {MAX_ROUNDS} rounds max, \u{3b4} = 2^{THRESHOLD_LOG2}, \
         banks of 12-input AND cones"
    );
    println!(
        "cones\tnodes\tfaults\tbase_ms\tengine_ms\tspeedup\tbase_cov%\teng_cov%\t\
         resim\tskipped\tmemo_hits"
    );
    for &cones in &[4usize, 8, 16, 32] {
        let circuit = cone_bank(cones, 12);

        let baseline = ConstructiveOptimizer::new(ConstructiveConfig {
            patterns_per_round: PATTERNS,
            max_rounds: MAX_ROUNDS,
            seed: SEED,
            ..ConstructiveConfig::default()
        });
        let (base_out, base_t) = timed(|| baseline.solve(&circuit, threshold));
        let base_out = base_out.expect("baseline loop runs");

        let (engine_result, engine_t) = timed(|| {
            let mut engine = TpiEngine::new(
                circuit.clone(),
                EngineConfig {
                    patterns: PATTERNS,
                    seed: SEED,
                    verify_incremental: false,
                    ..EngineConfig::default()
                },
            )
            .expect("engine builds");
            let outcome = engine
                .optimize(
                    threshold,
                    &OptimizeConfig {
                        max_rounds: MAX_ROUNDS,
                        ..OptimizeConfig::default()
                    },
                )
                .expect("engine loop runs");
            (outcome, engine.stats())
        });
        let (eng_out, stats) = engine_result;

        let base_ms = base_t.as_secs_f64() * 1e3;
        let engine_ms = engine_t.as_secs_f64() * 1e3;
        println!(
            "{cones}\t{}\t{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{}\t{}\t{}",
            circuit.node_count(),
            fault_count(&circuit),
            ms(base_t),
            ms(engine_t),
            base_ms / engine_ms,
            100.0 * base_out.final_coverage,
            100.0 * eng_out.final_coverage,
            stats.faults_resimulated,
            stats.faults_skipped,
            stats.memo_hits,
        );
    }
}

/// A bank of `cones` independent `width`-input AND cones — every cone is
/// its own FFR, so commits are local and the dirty fraction is `1/cones`.
fn cone_bank(cones: usize, width: usize) -> Circuit {
    let mut b = CircuitBuilder::new(format!("cone_bank_{cones}x{width}"));
    for c in 0..cones {
        let xs = b.inputs(width, &format!("x{c}_"));
        let root = b
            .balanced_tree(GateKind::And, &xs, &format!("g{c}_"))
            .expect("builds");
        b.output(root);
    }
    b.finish().expect("valid")
}

fn fault_count(circuit: &Circuit) -> usize {
    tpi_sim::FaultUniverse::collapsed(circuit)
        .expect("collapsible")
        .len()
}
