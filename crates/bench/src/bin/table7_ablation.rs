//! **Table 7 — decision-vocabulary ablation.**
//!
//! What does each class of test point buy? The DP is re-run with parts of
//! its local decision vocabulary disabled:
//!
//! * `full`   — everything (the reference);
//! * `no-tp`  — control + observation points only (no cut points);
//! * `op-only`— observation points only (the Hayes/Friedman setting);
//!
//! on the random-pattern-resistant tree suite. Expected shape:
//! observation-only fails entirely on excitation-starved cones (SA0 of an
//! AND cone cannot be excited by observing), control+observe matches the
//! full vocabulary within a small factor, and cut points buy compactness.

use tpi_bench::header;
use tpi_core::{DpConfig, DpOptimizer, Threshold, TpiProblem};
use tpi_gen::rpr;

fn main() {
    println!("# Table 7: DP cost by available test-point vocabulary (δ = 2^-8)\n");
    header(&["circuit", "full_vocab", "no_cut_points", "observe_only"]);
    let circuits = [
        rpr::and_tree(16, 2).expect("builds"),
        rpr::and_tree(24, 4).expect("builds"),
        rpr::comparator(12).expect("builds"),
        rpr::parity_gated_cone(6, 14).expect("builds"),
    ];
    let threshold = Threshold::from_log2(-8.0);
    for circuit in &circuits {
        let problem = TpiProblem::min_cost(circuit, threshold).expect("acyclic");
        let run = |enable_control: bool, enable_full: bool| {
            let config = DpConfig {
                enable_control,
                enable_full,
                ..DpConfig::default()
            };
            match DpOptimizer::new(config).solve(&problem) {
                Ok(plan) => format!("{:.1} ({} pts)", plan.cost(), plan.len()),
                Err(_) => "infeasible".to_string(),
            }
        };
        println!(
            "{}\t{}\t{}\t{}",
            circuit.name(),
            run(true, true),
            run(true, false),
            run(false, false),
        );
    }
}
