//! **Table 4 — threshold sensitivity.**
//!
//! How the DP's minimum cost and test-point mix respond as the detection
//! threshold δ tightens (equivalently, as the test-length budget shrinks).
//! The expected shape: cost grows monotonically as δ rises, observation
//! points give way to control/full points once excitation (not just
//! observability) becomes the bottleneck.

use tpi_bench::header;
use tpi_core::{DpOptimizer, Threshold, TpiProblem};
use tpi_gen::rpr;

fn main() {
    println!("# Table 4: DP cost and point mix vs threshold\n");
    header(&[
        "circuit", "delta", "cost", "op", "cp_and", "cp_or", "full", "points",
    ]);
    let circuits = [
        rpr::and_tree(16, 2).expect("builds"),
        rpr::and_tree(24, 4).expect("builds"),
        rpr::comparator(12).expect("builds"),
        rpr::parity_gated_cone(6, 14).expect("builds"),
    ];
    for circuit in &circuits {
        for exp in [-14.0, -12.0, -10.0, -8.0, -6.0, -4.0] {
            let threshold = Threshold::from_log2(exp);
            let problem = TpiProblem::min_cost(circuit, threshold).expect("acyclic");
            match DpOptimizer::default().solve(&problem) {
                Ok(plan) => {
                    let (op, cpa, cpo, full) = plan.kind_counts();
                    println!(
                        "{}\t2^{}\t{:.1}\t{}\t{}\t{}\t{}\t{}",
                        circuit.name(),
                        exp,
                        plan.cost(),
                        op,
                        cpa,
                        cpo,
                        full,
                        plan.len(),
                    );
                }
                Err(e) => {
                    println!(
                        "{}\t2^{}\tinfeasible ({e})\t-\t-\t-\t-\t-",
                        circuit.name(),
                        exp
                    );
                }
            }
        }
    }
}
