//! **Table 3 — general (reconvergent) circuits.**
//!
//! The NP-hard case: the constructive FFR+DP driver vs the greedy and
//! random baselines on the suite's non-tree circuits, all measured by the
//! same independent fault simulation at 32k patterns. Points are capped so
//! the comparison is at (approximately) equal hardware budget.

use tpi_atpg::{redundancy, PodemConfig};
use tpi_bench::{header, measure_coverage, pct, STANDARD_PATTERNS};
use tpi_core::general::{ConstructiveConfig, ConstructiveOptimizer};
use tpi_core::{GreedyConfig, GreedyOptimizer, RandomOptimizer, Threshold, TpiProblem};
use tpi_netlist::transform::apply_plan;
use tpi_sim::FaultUniverse;

fn main() {
    let threshold = Threshold::from_test_length(STANDARD_PATTERNS, tpi_bench::STANDARD_CONFIDENCE)
        .expect("valid threshold");
    let budget = 16.0f64; // shared hardware budget, in cost units
    println!("# Table 3: fault coverage @32k after insertion (cost budget {budget} per method)");
    println!("# coverage over PODEM-certified testable faults (redundant faults removed)\n");
    header(&[
        "circuit",
        "faults",
        "FC_base",
        "FC_constr",
        "cost_c",
        "FC_greedy",
        "cost_g",
        "FC_random",
        "cost_r",
    ]);

    for entry in tpi_gen::suite::standard_suite().expect("suite builds") {
        if entry.is_tree {
            continue; // Table 2 territory
        }
        let c = &entry.circuit;
        let collapsed = FaultUniverse::collapsed(c).expect("collapsible");
        let sweep =
            redundancy::sweep(c, collapsed.faults(), PodemConfig::default()).expect("atpg runs");
        let universe = FaultUniverse::from_faults(sweep.targets());
        let base = measure_coverage(c, &universe, STANDARD_PATTERNS, 1).coverage();

        // Constructive (FFR + DP, fault-sim guided).
        let outcome = ConstructiveOptimizer::new(ConstructiveConfig {
            patterns_per_round: 8_192,
            max_rounds: 30,
            target_coverage: 1.0,
            max_cost: budget,
            ..ConstructiveConfig::default()
        })
        .solve(c, threshold)
        .expect("constructive runs");
        let fc_constructive =
            measure_coverage(&outcome.modified, &universe, STANDARD_PATTERNS, 1).coverage();

        // Greedy (analytic scoring).
        let greedy = GreedyOptimizer::new(GreedyConfig {
            max_points: 64,
            max_cost: budget,
            ..GreedyConfig::default()
        })
        .solve(&TpiProblem::min_cost(c, threshold).expect("acyclic"))
        .expect("greedy runs");
        let (greedy_circuit, _) = apply_plan(c, greedy.test_points()).expect("applies");
        let fc_greedy =
            measure_coverage(&greedy_circuit, &universe, STANDARD_PATTERNS, 1).coverage();

        // Random placement.
        // Random kinds average ~1 cost unit per point.
        let random = RandomOptimizer::new(11, budget as usize)
            .solve(&TpiProblem::min_cost(c, threshold).expect("acyclic"))
            .expect("random runs");
        let (random_circuit, _) = apply_plan(c, random.test_points()).expect("applies");
        let fc_random =
            measure_coverage(&random_circuit, &universe, STANDARD_PATTERNS, 1).coverage();

        println!(
            "{}\t{}\t{}\t{}\t{:.1}\t{}\t{:.1}\t{}\t{:.1}",
            entry.name,
            universe.len(),
            pct(base),
            pct(fc_constructive),
            outcome.plan.cost(),
            pct(fc_greedy),
            greedy.cost(),
            pct(fc_random),
            random.cost(),
        );
    }
}
