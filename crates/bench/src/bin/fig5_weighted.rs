//! **Figure 5 — circuit modification vs input-distribution modification.**
//!
//! The period's main alternative to test point insertion was *weighted
//! random testing*: bias the input 1-probabilities instead of touching the
//! circuit. This sweep measures fault coverage on mixed-polarity
//! resistant circuits for a range of uniform input weights, against the
//! unmodified-fair baseline and the DP-inserted circuit.
//!
//! Expected shape: each weight helps one polarity of cone and hurts the
//! other, so no single weight fixes a mixed circuit — while a handful of
//! test points does. (Wunderlich's answer was *multiple* distributions;
//! that generalisation is out of scope here.)

use tpi_bench::{measure_coverage, pct};
use tpi_core::{DpOptimizer, Threshold, TpiProblem};
use tpi_netlist::transform::apply_plan;
use tpi_netlist::{Circuit, CircuitBuilder, GateKind};
use tpi_sim::{FaultSimulator, FaultUniverse, WeightedPatterns};

/// An AND cone and a NOR cone sharing the output OR: weights that help
/// one side hurt the other.
fn mixed_polarity(width: usize) -> Circuit {
    let mut b = CircuitBuilder::new(format!("mixed{width}"));
    let xs = b.inputs(width, "x");
    let ys = b.inputs(width, "y");
    let and_cone = b.balanced_tree(GateKind::And, &xs, "a").expect("builds");
    let or_cone = b.balanced_tree(GateKind::Or, &ys, "o").expect("builds");
    let nor_side = b.gate(GateKind::Not, vec![or_cone], "no").expect("builds");
    let out = b
        .gate(GateKind::Xor, vec![and_cone, nor_side], "out")
        .expect("builds");
    b.output(out);
    b.finish().expect("valid")
}

fn main() {
    let patterns = 8_000u64;
    println!("# Figure 5: coverage@8k vs input weight, vs TPI (mixed-polarity circuit)");
    println!("circuit\tvariant\tcoverage%");
    for width in [12usize, 16] {
        let circuit = mixed_polarity(width);
        let universe = FaultUniverse::collapsed(&circuit).expect("collapsible");

        for weight in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let mut sim = FaultSimulator::new(&circuit).expect("acyclic");
            let mut src =
                WeightedPatterns::uniform(circuit.inputs().len(), weight, 7).expect("valid");
            let result = sim
                .run(&mut src, patterns, universe.faults())
                .expect("runs");
            println!(
                "{}\tweight_{weight}\t{}",
                circuit.name(),
                pct(result.coverage())
            );
        }

        let threshold = Threshold::from_test_length(patterns, 0.95).expect("valid");
        let problem = TpiProblem::min_cost(&circuit, threshold).expect("acyclic");
        let plan = DpOptimizer::default()
            .solve(&problem)
            .expect("tree is solvable");
        let (modified, _) = apply_plan(&circuit, plan.test_points()).expect("applies");
        let after = measure_coverage(&modified, &universe, patterns, 7);
        println!(
            "{}\ttpi_{}pts\t{}",
            circuit.name(),
            plan.len(),
            pct(after.coverage())
        );
    }
}
