//! **Table 5 — the hardness reduction, round-tripped.**
//!
//! For random set-cover instances: the brute-force minimum cover equals
//! the brute-force minimum number of observation points on the reduction
//! circuit — the machine-checkable core of the NP-completeness argument.
//! The greedy covering heuristic's gap is reported alongside.

use tpi_bench::header;
use tpi_core::cover::set_cover_exact;
use tpi_core::reduction::{reduce, SetCoverInstance};

fn main() {
    println!("# Table 5: Set-Cover ⟺ observation-point TPI\n");
    header(&[
        "elements",
        "sets",
        "density",
        "seed",
        "min_cover",
        "min_ops",
        "match",
        "greedy_cover",
    ]);
    let mut matches = 0;
    let mut total = 0;
    for &(elements, sets, density) in &[
        (4usize, 3usize, 0.5f64),
        (5, 4, 0.4),
        (6, 5, 0.35),
        (7, 5, 0.3),
        (8, 6, 0.3),
    ] {
        for seed in 0..4u64 {
            let instance = SetCoverInstance::random(elements, sets, density, seed);
            let reduction = reduce(&instance).expect("reduction builds");
            let cover = instance
                .min_cover_size()
                .expect("coverable by construction");
            let ops = reduction
                .min_observation_points()
                .expect("evaluation runs")
                .expect("reduction preserves coverability");
            // Greedy set cover for the gap column.
            let greedy = greedy_cover(elements, &instance.sets);
            let ok = cover == ops;
            total += 1;
            matches += usize::from(ok);
            println!(
                "{elements}\t{sets}\t{density}\t{seed}\t{cover}\t{ops}\t{}\t{greedy}",
                if ok { "yes" } else { "NO" }
            );
        }
    }
    println!("\noptimum matched: {matches}/{total}");
    // Consistency check of the exact set-cover solver itself.
    assert!(set_cover_exact(2, &[vec![0], vec![1]]).is_some());
}

fn greedy_cover(elements: usize, sets: &[Vec<usize>]) -> usize {
    let mut covered = vec![false; elements];
    let mut picked = 0;
    while covered.iter().any(|&c| !c) {
        let best = sets
            .iter()
            .max_by_key(|s| s.iter().filter(|&&e| !covered[e]).count())
            .expect("non-empty");
        if best.iter().all(|&e| covered[e]) {
            break;
        }
        for &e in best {
            covered[e] = true;
        }
        picked += 1;
    }
    picked
}
