//! **Figure 2 — the complexity separation.**
//!
//! Series A: DP wall-time and state counts on growing random trees —
//! polynomial (near-linear at fixed resolutions). Series B: exhaustive
//! branch-and-bound visits on the same instances — exponential. This is
//! the empirical face of "NP-hard in general, polynomial DP on trees".

use tpi_bench::{ms, timed};
use tpi_core::{DpConfig, DpOptimizer, ExactOptimizer, Threshold, TpiProblem};
use tpi_gen::trees::{random_tree, RandomTreeConfig};

fn main() {
    println!("# Figure 2a: DP scaling on trees (bucketed, δ = 2^-8, mean of 3 seeds)");
    println!("leaves\tnodes\tdp_ms\tstates_created\tmax_frontier");
    for &leaves in &[16usize, 32, 64, 128, 256, 512, 1024] {
        let mut time_sum = 0.0;
        let mut states = 0usize;
        let mut frontier = 0usize;
        let mut nodes = 0usize;
        for seed in 0..3u64 {
            let circuit = random_tree(
                &RandomTreeConfig::with_leaves(leaves, 7 * leaves as u64 + seed).and_or_only(),
            )
            .expect("tree builds");
            nodes = circuit.node_count();
            let problem =
                TpiProblem::min_cost(&circuit, Threshold::from_log2(-8.0)).expect("acyclic");
            let (result, t) = timed(|| DpOptimizer::default().solve_with_stats(&problem));
            let (_, stats) = result.expect("solvable at 2^-8");
            time_sum += t.as_secs_f64() * 1e3;
            states += stats.states_created;
            frontier = frontier.max(stats.max_frontier);
        }
        println!(
            "{leaves}\t{nodes}\t{:.3}\t{}\t{frontier}",
            time_sum / 3.0,
            states / 3
        );
    }

    println!("\n# Figure 2b: exhaustive search wall (AND cones, δ = 2^-2 — optimum cost");
    println!("# grows with size, so the search space below it explodes exponentially)");
    println!("width\tnodes\toptimal_cost\tb&b_visits\tb&b_ms\tdp_exact_ms");
    for &width in &[2usize, 3, 4, 5, 6] {
        let circuit = and_cone(width);
        let problem = TpiProblem::min_cost(&circuit, Threshold::from_log2(-2.0)).expect("acyclic");
        let (dp, dp_t) = timed(|| DpOptimizer::new(DpConfig::exact()).solve(&problem));
        let Ok(dp) = dp else { continue };
        let (res, bb_t) = timed(|| ExactOptimizer::with_max_nodes(20).solve(&problem));
        let (plan, stats) = res.expect("search completes");
        assert!(
            (plan.cost() - dp.cost()).abs() < 1e-9,
            "DP must stay optimal"
        );
        println!(
            "{width}\t{}\t{:.1}\t{}\t{}\t{}",
            circuit.node_count(),
            plan.cost(),
            stats.nodes_visited,
            ms(bb_t),
            ms(dp_t),
        );
    }
}

fn and_cone(width: usize) -> tpi_netlist::Circuit {
    let mut b = tpi_netlist::CircuitBuilder::new(format!("and{width}"));
    let xs = b.inputs(width, "x");
    let root = b
        .balanced_tree(tpi_netlist::GateKind::And, &xs, "g")
        .expect("builds");
    b.output(root);
    b.finish().expect("valid")
}
