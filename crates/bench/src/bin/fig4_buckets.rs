//! **Figure 4 — discretisation ablation.**
//!
//! The DP buckets `c1` and `demand` for pruning; this sweep shows solution
//! cost and runtime as both resolutions grow. Expected shape: cost
//! saturates at the optimum well before the resolutions get expensive —
//! the knob trades nothing once past the knee.

use tpi_bench::timed;
use tpi_core::{DpConfig, DpOptimizer, Threshold, TpiProblem};
use tpi_gen::trees::{random_tree, RandomTreeConfig};

fn main() {
    println!("# Figure 4: DP cost/time vs bucket resolutions (δ = 2^-8, 3 tree instances)");
    println!("c1_buckets\tdemand_res\tmean_cost\tmean_ms\tmean_states");
    let circuits: Vec<_> = (0..3u64)
        .map(|seed| {
            random_tree(&RandomTreeConfig::with_leaves(96, 400 + seed).and_or_only())
                .expect("tree builds")
        })
        .collect();
    let problems: Vec<_> = circuits
        .iter()
        .map(|c| TpiProblem::min_cost(c, Threshold::from_log2(-8.0)).expect("acyclic"))
        .collect();

    for &(c1_res, d_res) in &[
        (4u32, 1u32),
        (8, 1),
        (16, 2),
        (32, 2),
        (64, 4),
        (128, 4),
        (256, 8),
        (1024, 8),
        (4096, 16),
        (16384, 32),
    ] {
        let mut cost_sum = 0.0;
        let mut time_sum = 0.0;
        let mut state_sum = 0usize;
        for problem in &problems {
            let dp = DpOptimizer::new(DpConfig::with_resolution(c1_res, d_res));
            let (result, t) = timed(|| dp.solve_with_stats(problem));
            let (plan, stats) = result.expect("feasible at 2^-8");
            cost_sum += plan.cost();
            time_sum += t.as_secs_f64() * 1e3;
            state_sum += stats.states_created;
        }
        println!(
            "{c1_res}\t{d_res}\t{:.2}\t{:.3}\t{}",
            cost_sum / problems.len() as f64,
            time_sum / problems.len() as f64,
            state_sum / problems.len(),
        );
    }
}
