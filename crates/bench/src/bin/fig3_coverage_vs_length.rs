//! **Figure 3 — coverage vs test length, before and after insertion.**
//!
//! The motivating curve of every test-point paper: without insertion the
//! coverage curve flattens far below 100% (random-pattern-resistant
//! faults); with the DP plan applied the curve reaches the top orders of
//! magnitude sooner.

use tpi_bench::{pct, STANDARD_PATTERNS};
use tpi_core::{DpOptimizer, GreedyOptimizer, Threshold, TpiProblem};
use tpi_netlist::transform::apply_plan;
use tpi_sim::{FaultSimulator, FaultUniverse, RandomPatterns};

fn main() {
    let threshold = Threshold::from_test_length(STANDARD_PATTERNS, tpi_bench::STANDARD_CONFIDENCE)
        .expect("valid threshold");
    println!("# Figure 3: fault coverage vs #patterns (checkpoints every 2k)");
    println!("circuit\tvariant\tpatterns\tcoverage%");
    for circuit in [
        tpi_gen::rpr::and_tree(20, 4).expect("builds"),
        tpi_gen::rpr::comparator(14).expect("builds"),
        tpi_gen::benchmarks::c17().expect("builds"),
    ] {
        let problem = TpiProblem::min_cost(&circuit, threshold).expect("acyclic");
        let plan = DpOptimizer::default()
            .solve(&problem)
            .or_else(|_| GreedyOptimizer::default().solve(&problem))
            .expect("some plan exists");
        let (modified, _) = apply_plan(&circuit, plan.test_points()).expect("applies");

        for (variant, c) in [("original", &circuit), ("with_tpi", &modified)] {
            let universe = FaultUniverse::collapsed(&circuit).expect("collapsible");
            let mut sim = FaultSimulator::new(c).expect("acyclic");
            let mut src = RandomPatterns::new(c.inputs().len(), 21);
            let result = sim
                .run(&mut src, STANDARD_PATTERNS, universe.faults())
                .expect("runs");
            for point in result.coverage_curve(2_000) {
                println!(
                    "{}\t{}\t{}\t{}",
                    circuit.name(),
                    variant,
                    point.patterns,
                    pct(point.coverage)
                );
            }
        }
    }
}
