//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the reconstructed evaluation (see `DESIGN.md` §5
//! and `EXPERIMENTS.md`).
//!
//! Each binary prints a self-contained, tab-separated table to stdout;
//! `cargo run --release -p tpi-bench --bin <experiment>` reproduces the
//! corresponding artefact.

use std::time::{Duration, Instant};

use tpi_netlist::Circuit;
use tpi_sim::{FaultSimResult, FaultSimulator, FaultUniverse, PatternSource, RandomPatterns};

/// The standard random-pattern budget of the experiment suite (32 000, the
/// classic scan-BIST figure used throughout the period literature).
pub const STANDARD_PATTERNS: u64 = 32_000;

/// Default per-fault confidence used to derive detection thresholds.
pub const STANDARD_CONFIDENCE: f64 = 0.98;

/// Run a closure and return its result with the wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Fault-simulate `circuit` against `universe` with `patterns` seeded
/// random patterns.
///
/// # Panics
///
/// Panics on cyclic circuits (the suite contains none).
pub fn measure_coverage(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: u64,
    seed: u64,
) -> FaultSimResult {
    let mut sim = FaultSimulator::new(circuit).expect("suite circuits are acyclic");
    let mut src = RandomPatterns::new(circuit.inputs().len(), seed);
    sim.run(&mut src, patterns, universe.faults())
        .expect("fault simulation is infallible on valid circuits")
}

/// Mean and max of per-seed coverages, mirroring the "average / max FC of
/// N trials" presentation used in the period literature.
pub fn coverage_trials(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: u64,
    trials: u64,
) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    for seed in 0..trials {
        let cov = measure_coverage(circuit, universe, patterns, 0x5eed + seed).coverage();
        sum += cov;
        max = max.max(cov);
    }
    (sum / trials as f64, max)
}

/// Exhaust a pattern source through a buffer for signature-style runs;
/// returns the number of patterns actually produced.
pub fn drain_patterns(source: &mut dyn PatternSource, words: &mut [u64], mut budget: u64) -> u64 {
    let mut applied = 0;
    while budget > 0 {
        let n = source.fill(words) as u64;
        if n == 0 {
            break;
        }
        let take = n.min(budget);
        applied += take;
        budget -= take;
    }
    applied
}

/// Print a table header followed by an underline, e.g.
/// `header(&["circuit", "nodes"])`.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
    println!("{}", vec!["---"; columns.len()].join("\t"));
}

/// Format a coverage fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_sim::ExhaustivePatterns;

    #[test]
    fn coverage_helpers_run() {
        let c = tpi_gen::benchmarks::c17().unwrap();
        let u = FaultUniverse::collapsed(&c).unwrap();
        let r = measure_coverage(&c, &u, 512, 1);
        assert!(r.coverage() > 0.9);
        let (avg, max) = coverage_trials(&c, &u, 256, 3);
        assert!(avg <= max + 1e-12);
    }

    #[test]
    fn drain_respects_budget_and_exhaustion() {
        let mut src = ExhaustivePatterns::new(3);
        let mut words = vec![0u64; 3];
        assert_eq!(drain_patterns(&mut src, &mut words, 100), 8);
        let mut src = ExhaustivePatterns::new(6);
        let mut words6 = [0u64; 6];
        assert_eq!(drain_patterns(&mut src, &mut words6, 10), 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.98765), "98.77");
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
    }
}
